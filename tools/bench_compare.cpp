// bench_compare — regression gate over google-benchmark JSON output.
//
// Compares a fresh bench_solvers run (--candidate) against the committed
// baseline (--baseline, BENCH_solvers.json by default), row by row, and
// exits nonzero when any row regressed beyond the tolerances:
//
//   * real_time may grow by at most --time-tolerance (relative, e.g. 0.5
//     allows a 50% slowdown — CI machines differ from the baseline host,
//     so the default gate is deliberately generous; tighten it for
//     same-machine A/B comparisons),
//   * achieved_gbps (the kernel-sweep bandwidth counter) may shrink by at
//     most --gbps-tolerance,
//   * every baseline row must exist in the candidate — a silently dropped
//     benchmark is itself a regression.
//
// Candidate-only rows are reported but do not fail the gate (new benches
// land before their baseline refresh). Only run_type == "iteration" rows
// participate; aggregate rows (mean/median/stddev) are skipped on both
// sides.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "serve/json.hpp"
#include "support/options.hpp"

namespace {

struct Row {
  double real_time = 0.0;
  std::string time_unit;
  double achieved_gbps = 0.0;  ///< 0 = counter absent.
  double sweep_p50_ms = 0.0;   ///< Per-sweep wall-time p50; 0 = absent.
  double sweep_p99_ms = 0.0;   ///< Per-sweep wall-time p99; 0 = absent.
};

std::map<std::string, Row> load_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw support::InvalidArgument("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  const serve::Json root = serve::Json::parse(text.str());
  const serve::Json* benchmarks = root.find("benchmarks");
  if (benchmarks == nullptr) {
    throw support::InvalidArgument(path + " has no \"benchmarks\" array");
  }
  std::map<std::string, Row> rows;
  for (const serve::Json& entry : benchmarks->as_array()) {
    const serve::Json* run_type = entry.find("run_type");
    if (run_type != nullptr && run_type->as_string() != "iteration") {
      continue;  // skip mean/median/stddev aggregates
    }
    Row row;
    row.real_time = entry.find("real_time")->as_number();
    if (const serve::Json* unit = entry.find("time_unit")) {
      row.time_unit = unit->as_string();
    }
    if (const serve::Json* gbps = entry.find("achieved_gbps")) {
      row.achieved_gbps = gbps->as_number();
    }
    if (const serve::Json* p50 = entry.find("sweep_p50_ms")) {
      row.sweep_p50_ms = p50->as_number();
    }
    if (const serve::Json* p99 = entry.find("sweep_p99_ms")) {
      row.sweep_p99_ms = p99->as_number();
    }
    rows.emplace(entry.find("name")->as_string(), row);
  }
  return rows;
}

/// Relative change of `candidate` versus `baseline` (positive = larger).
double relative_delta(double baseline, double candidate) {
  if (baseline == 0.0) return 0.0;
  return (candidate - baseline) / baseline;
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options;
  options.declare("help", "false", "show this tool's options");
  options.declare("baseline", "BENCH_solvers.json",
                  "committed google-benchmark JSON to compare against");
  options.declare("candidate", "",
                  "fresh google-benchmark JSON from this build (required)");
  options.declare("time-tolerance", "0.5",
                  "max allowed relative real_time growth per row");
  options.declare("gbps-tolerance", "0.5",
                  "max allowed relative achieved_gbps shrinkage per row");
  try {
    options.parse(argc, argv);
    if (options.get_bool("help")) {
      std::fputs(options.usage("bench_compare").c_str(), stderr);
      return 0;
    }
    const std::string candidate_path = options.get_string("candidate");
    if (candidate_path.empty()) {
      std::fputs("bench_compare: --candidate is required\n", stderr);
      return 2;
    }
    const double time_tolerance = options.get_double("time-tolerance");
    const double gbps_tolerance = options.get_double("gbps-tolerance");

    const auto baseline = load_rows(options.get_string("baseline"));
    const auto candidate = load_rows(candidate_path);

    int regressions = 0;
    for (const auto& [name, base] : baseline) {
      const auto found = candidate.find(name);
      if (found == candidate.end()) {
        std::printf("MISSING  %-55s (row absent from candidate)\n",
                    name.c_str());
        ++regressions;
        continue;
      }
      const Row& cand = found->second;
      const double time_delta = relative_delta(base.real_time, cand.real_time);
      const double gbps_delta =
          base.achieved_gbps > 0.0 && cand.achieved_gbps > 0.0
              ? relative_delta(base.achieved_gbps, cand.achieved_gbps)
              : 0.0;
      const bool time_bad =
          std::isfinite(time_delta) && time_delta > time_tolerance;
      const bool gbps_bad =
          std::isfinite(gbps_delta) && -gbps_delta > gbps_tolerance;
      const char* verdict = time_bad || gbps_bad ? "REGRESS" : "ok";
      std::printf("%-8s %-55s %10.4f -> %10.4f %-2s (%+6.1f%%)",
                  verdict, name.c_str(), base.real_time, cand.real_time,
                  base.time_unit.c_str(), 100.0 * time_delta);
      if (base.achieved_gbps > 0.0) {
        std::printf("  gbps %7.2f -> %7.2f (%+6.1f%%)", base.achieved_gbps,
                    cand.achieved_gbps, 100.0 * gbps_delta);
      }
      // Informational (never gated): the per-sweep wall-time spread from
      // the candidate row, when the bench exported it.
      if (cand.sweep_p50_ms > 0.0) {
        std::printf("  sweep p50 %.3fms p99 %.3fms", cand.sweep_p50_ms,
                    cand.sweep_p99_ms);
      }
      std::printf("\n");
      if (time_bad || gbps_bad) ++regressions;
    }
    for (const auto& [name, row] : candidate) {
      (void)row;
      if (baseline.find(name) == baseline.end()) {
        std::printf("NEW      %-55s (no baseline row; not gated)\n",
                    name.c_str());
      }
    }

    if (regressions > 0) {
      std::printf("bench_compare: %d row(s) regressed beyond "
                  "time>%g%% / gbps<-%g%%\n",
                  regressions, 100.0 * time_tolerance,
                  100.0 * gbps_tolerance);
      return 1;
    }
    std::printf("bench_compare: all %zu baseline rows within tolerance\n",
                baseline.size());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_compare: %s\n", error.what());
    return 2;
  }
}
