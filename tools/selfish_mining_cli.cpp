// selfish-mining — unified command-line front end to the library.
//
//   selfish-mining analyze   --p=0.3 --gamma=0.5 --d=2 --f=2
//   selfish-mining sweep     --gamma=0.5 --d=2 --f=2 --pmax=0.3 --step=0.05
//   selfish-mining threshold --gamma=0.5 --d=2 --f=2
//   selfish-mining simulate  --p=0.3 --gamma=0.5 --d=2 --f=2 --steps=500000
//   selfish-mining network   --scenario=single-optimal --runs=8 --threads=0
//   selfish-mining export    --p=0.3 --gamma=0.5 --d=2 --f=1 --prefix=out
//   selfish-mining baselines --p=0.3 --gamma=0.5
//
// Every subcommand accepts --help. Options may also come from the
// SELFISH_* environment (see support::Options).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/algorithm1.hpp"
#include "analysis/policy_stats.hpp"
#include "analysis/strategy_io.hpp"
#include "analysis/sweep.hpp"
#include "analysis/threshold.hpp"
#include "analysis/upper_bound.hpp"
#include "baselines/eyal_sirer.hpp"
#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "engine/engine.hpp"
#include "mdp/export.hpp"
#include "net/batch.hpp"
#include "net/scenario.hpp"
#include "selfish/build.hpp"
#include "selfish/cache.hpp"
#include "sim/strategies.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

void declare_model_options(support::Options& options) {
  options.declare("help", "false", "show this command's options");
  options.declare("p", "0.3", "adversary's relative resource in [0,1]");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "1", "forks per public block");
  options.declare("l", "4", "maximal private fork length");
  options.declare("burn-lost-races", "false",
                  "fork-choice variant: discard forks that lose tie races");
  options.declare("epsilon", "0.001", "Algorithm 1 precision");
  options.declare("solver", "vi", "mean-payoff solver: vi | gs | pi | dense");
  options.declare("cache", "",
                  "binary model cache file: reused when valid, written "
                  "after a fresh build (worthwhile for d >= 3)");
}

/// Parses argv and handles --help; returns true when the command should
/// proceed (false = help was printed).
bool parse_or_help(support::Options& options, int argc,
                   const char* const* argv) {
  options.parse(argc, argv);
  if (options.get_bool("help")) {
    std::fputs(options.usage(std::string("selfish-mining ") + argv[0]).c_str(),
               stderr);
    return false;
  }
  return true;
}

selfish::AttackParams params_from(const support::Options& options) {
  return selfish::AttackParams{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = options.get_int("l"),
      .burn_lost_races = options.get_bool("burn-lost-races"),
  };
}

/// Builds the model, via the on-disk cache when --cache is set.
selfish::SelfishModel model_from(const support::Options& options) {
  const auto params = params_from(options);
  const std::string cache = options.get_string("cache");
  return cache.empty() ? selfish::build_model(params)
                       : selfish::build_or_load_model(params, cache);
}

/// Declares --threads for commands whose solves run one at a time (the
/// kernel fans each Bellman sweep over the workers; sweep's --threads
/// means engine chains instead, and its per-solve threads stay at 1).
void declare_solver_threads(support::Options& options) {
  options.declare("threads", "0",
                  "Bellman-sweep worker threads per mean-payoff solve "
                  "(0 = all cores); results are bit-identical at any count");
}

analysis::AnalysisOptions analysis_from(const support::Options& options,
                                        int solver_threads = 1) {
  analysis::AnalysisOptions out;
  out.epsilon = options.get_double("epsilon");
  out.solver.method = mdp::parse_solver_method(options.get_string("solver"));
  out.solver.threads = solver_threads;
  return out;
}

int cmd_analyze(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("save-strategy", "",
                  "write the computed strategy to this file");
  options.declare("stats", "true", "print aggregate strategy statistics");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto params = params_from(options);
  const auto model = model_from(options);
  const auto result = analysis::analyze(
      model, analysis_from(options, options.get_int("threads")));

  std::printf("model %s: %u states, %zu transitions\n",
              params.to_string().c_str(), model.mdp.num_states(),
              model.mdp.num_transitions());
  std::printf("ERRev* in [%.6f, %.6f]; strategy achieves %.6f "
              "(honest share: %.4f)\n",
              result.beta_lo, result.beta_hi, result.errev_of_policy,
              params.p);
  std::printf("%d binary-search steps, %ld solver iterations, %.3f s\n",
              result.search_iterations, result.solver_iterations,
              result.seconds);
  if (options.get_bool("stats")) {
    const auto stats =
        analysis::compute_policy_stats(model, result.policy);
    std::printf("%s", stats.to_string().c_str());
  }
  const std::string path = options.get_string("save-strategy");
  if (!path.empty()) {
    std::ofstream out(path);
    SM_REQUIRE(out.good(), "cannot open ", path);
    analysis::save_strategy(model, result.policy, out);
    std::printf("strategy saved to %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("pmin", "0", "smallest resource");
  options.declare("pmax", "0.3", "largest resource");
  options.declare("step", "0.05", "resource grid step");
  options.declare("threads", "1",
                  "engine worker threads (0 = all cores); independent "
                  "warm-start chains run in parallel");
  options.declare("cache-dir", "",
                  "experiment-engine result store: a killed sweep resumes "
                  "from its completed grid points, reruns are served from "
                  "cache, and the CSV is byte-identical either way");
  options.declare("store-values", "true",
                  "persist final value vectors (warm starts) in the result "
                  "store; turn off to shrink caches for huge models — "
                  "resumed points after a value-less hit are re-solved");
  if (!parse_or_help(options, argc, argv)) return 0;

  selfish::AttackParams base = params_from(options);
  const auto grid = analysis::linspace_grid(options.get_double("pmin"),
                                            options.get_double("pmax"),
                                            options.get_double("step"));

  engine::EngineOptions engine_options;
  engine_options.cache_dir = options.get_string("cache-dir");
  engine_options.threads = options.get_int("threads");
  engine_options.store_values = options.get_bool("store-values");
  engine::Engine engine(engine_options);

  const support::Timer timer;
  const auto sweep =
      analysis::sweep_p(base, grid, analysis_from(options), engine);
  analysis::write_sweep_csv(sweep, std::cout);

  // The CSV on stdout is the deterministic artifact; volatile run stats
  // go to stderr.
  std::size_t cached = 0;
  double solve_seconds = 0.0;
  for (const auto& point : sweep.points) {
    cached += point.cached ? 1 : 0;
    solve_seconds += point.seconds;
  }
  std::fprintf(stderr,
               "sweep: %zu points (%zu from cache), %.3f s solve time, "
               "%.3f s wall\n",
               sweep.points.size(), cached, solve_seconds, timer.seconds());
  return 0;
}

int cmd_threshold(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("margin", "0.005", "excess revenue that counts as unfair");
  options.declare("ptol", "0.005", "p bracket width");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  analysis::ThresholdOptions threshold_options;
  threshold_options.analysis =
      analysis_from(options, options.get_int("threads"));
  threshold_options.unfairness_margin = options.get_double("margin");
  threshold_options.p_tolerance = options.get_double("ptol");
  const auto result =
      analysis::fairness_threshold(params_from(options), threshold_options);

  if (result.always_fair) {
    std::printf("fair for all p <= %.3f (attack never beats honest mining "
                "by more than %.3f)\n",
                threshold_options.p_max, threshold_options.unfairness_margin);
  } else {
    std::printf("attack becomes profitable at p ~= %.4f "
                "(bracket [%.4f, %.4f], %zu probes)\n",
                result.p_threshold, result.p_lo, result.p_hi,
                result.probes.size());
  }
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("steps", "500000", "mining steps");
  options.declare("seed", "42", "simulation seed");
  options.declare("strategy", "optimal",
                  "optimal | honest | never-release, or a strategy file "
                  "saved by `analyze --save-strategy`");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto params = params_from(options);
  const auto model = model_from(options);

  mdp::Policy policy;
  std::unique_ptr<sim::Strategy> strategy;
  const std::string which = options.get_string("strategy");
  if (which == "optimal") {
    policy = analysis::analyze(
                 model, analysis_from(options, options.get_int("threads")))
                 .policy;
    strategy = std::make_unique<sim::MdpPolicyStrategy>(model, policy);
  } else if (which == "honest" || which == "never-release") {
    strategy = sim::make_builtin_strategy(which);
  } else {
    policy = analysis::load_strategy_file(model, which);
    strategy = std::make_unique<sim::MdpPolicyStrategy>(model, policy);
  }

  sim::SimulationOptions sim_options;
  sim_options.steps = static_cast<std::uint64_t>(options.get_int("steps"));
  sim_options.warmup_steps = sim_options.steps / 20;
  sim_options.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  const auto result = sim::simulate(params, *strategy, sim_options);

  std::printf("empirical ERRev = %.5f over %llu finalized blocks "
              "(chain quality %.5f)\n",
              result.errev,
              static_cast<unsigned long long>(result.revenue.total()),
              result.revenue.chain_quality());
  std::printf("events: %llu releases, %llu overrides, races won/lost "
              "%llu/%llu, %llu wasted blocks\n",
              static_cast<unsigned long long>(result.releases),
              static_cast<unsigned long long>(result.overrides),
              static_cast<unsigned long long>(result.races_won),
              static_cast<unsigned long long>(result.races_lost),
              static_cast<unsigned long long>(result.adversary_blocks_wasted));
  for (const std::size_t window : {20u, 100u}) {
    const auto quality = chain::window_quality(result.final_owners, window);
    std::printf("(mu, l=%zu)-chain quality: worst %.3f, average %.3f\n",
                window, quality.worst, quality.average);
  }
  return 0;
}

int cmd_network(int argc, const char* const* argv) {
  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("scenario", "single-optimal",
                  "scenario family to run; see --help for the registry");
  options.declare("p", "0.3", "attacker hashrate share");
  options.declare("gamma", "0.5", "tie-race parameter");
  options.declare("delay", "0", "one-way propagation delay (seconds)");
  options.declare("interval", "600", "mean block interval (seconds)");
  options.declare("blocks", "100000", "mining events per run");
  options.declare("honest", "3", "honest miners sharing the honest power");
  options.declare("d", "2", "attack depth (strategy attackers)");
  options.declare("f", "1", "forks per public block (strategy attackers)");
  options.declare("l", "4", "maximal fork length (strategy attackers)");
  options.declare("strategy", "optimal",
                  "strategy of kStrategy attackers: optimal | honest | "
                  "never-release | file:<path>");
  options.declare("propagation", "direct",
                  "block propagation: direct (origin-to-all) | gossip "
                  "(store-and-forward along topology links)");
  options.declare("partition-start", "0.25",
                  "partition-attack: split start as a fraction of the "
                  "expected run duration");
  options.declare("partition-stop", "0.45",
                  "partition-attack: heal time as a fraction of the "
                  "expected run duration");
  options.declare("partition-frac", "0.5",
                  "partition-attack: fraction of the honest miners "
                  "isolated from the attacker's side");
  options.declare("asymmetry", "4",
                  "asymmetric-star: honest up-spoke delay multiplier "
                  "(announce at asymmetry*delay, listen at delay)");
  options.declare("epsilon", "0.001", "Algorithm 1 precision");
  options.declare("runs", "8", "seeds per scenario point");
  options.declare("threads", "0", "worker threads (0 = all cores)");
  options.declare("seed", "24141", "base seed of the batch");
  options.declare("csv", "false", "emit CSV instead of a table");
  options.declare("cache-dir", "",
                  "experiment-engine result store for the per-point "
                  "Algorithm 1 preparations (reruns skip re-analysis)");
  options.declare("resample-clock", "false",
                  "restore the legacy resample-mining-clock-after-every-"
                  "event loop (default reschedules only on lane changes)");
  if (!parse_or_help(options, argc, argv)) {
    std::fputs(("\nscenario families:\n" + net::scenario_help()).c_str(),
               stderr);
    return 0;
  }

  const int blocks = options.get_int("blocks");
  SM_REQUIRE(blocks > 0, "--blocks must be positive, got ", blocks);

  net::ScenarioOptions scenario_options;
  scenario_options.p = options.get_double("p");
  scenario_options.gamma = options.get_double("gamma");
  scenario_options.delay = options.get_double("delay");
  scenario_options.block_interval = options.get_double("interval");
  scenario_options.blocks = static_cast<std::uint64_t>(blocks);
  scenario_options.honest_miners = options.get_int("honest");
  scenario_options.d = options.get_int("d");
  scenario_options.f = options.get_int("f");
  scenario_options.l = options.get_int("l");
  scenario_options.strategy = options.get_string("strategy");
  scenario_options.propagation =
      net::propagation_from_string(options.get_string("propagation"));
  scenario_options.partition_start = options.get_double("partition-start");
  scenario_options.partition_stop = options.get_double("partition-stop");
  scenario_options.partition_fraction = options.get_double("partition-frac");
  scenario_options.asymmetry = options.get_double("asymmetry");

  net::BatchOptions batch_options;
  batch_options.runs_per_scenario = options.get_int("runs");
  batch_options.threads = options.get_int("threads");
  batch_options.base_seed = static_cast<std::uint64_t>(options.get_int("seed"));
  batch_options.epsilon = options.get_double("epsilon");
  batch_options.cache_dir = options.get_string("cache-dir");

  auto grid =
      net::make_scenarios(options.get_string("scenario"), scenario_options);
  if (options.get_bool("resample-clock")) {
    for (net::Scenario& scenario : grid) {
      scenario.lazy_clock_reschedule = false;
    }
  }
  const auto aggregates = net::run_batch(grid, batch_options);

  if (options.get_bool("csv")) {
    net::write_batch_csv(aggregates, std::cout);
    return 0;
  }
  support::Table table({"scenario", "variant", "attacker share", "ci95",
                        "stale rate", "eff. gamma", "predicted ERRev",
                        "races", "worst prop", "relays", "syncs", "cut"});
  for (const auto& agg : aggregates) {
    table.add_row(
        {agg.name, agg.variant,
         support::format_double(agg.attacker_share.mean(), 5),
         support::format_double(agg.attacker_share.ci95_halfwidth(), 5),
         support::format_double(agg.stale_rate.mean(), 4),
         agg.effective_gamma.count() == 0
             ? "-"
             : support::format_double(agg.effective_gamma.mean(), 4),
         agg.predicted_errev == agg.predicted_errev
             ? support::format_double(agg.predicted_errev, 5)
             : "-",
         std::to_string(agg.total_races),
         support::format_double(agg.worst_propagation.mean(), 2),
         std::to_string(agg.total_relays),
         std::to_string(agg.total_syncs),
         std::to_string(agg.total_cut_sends)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("prefix", "selfish_model", "output file prefix");
  options.declare("beta", "-1",
                  "beta for the reward file; -1 = computed ERRev bound");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto model = model_from(options);
  double beta = options.get_double("beta");
  if (beta < 0.0) {
    auto analysis_options =
        analysis_from(options, options.get_int("threads"));
    analysis_options.evaluate_exact_errev = false;
    beta = analysis::analyze(model, analysis_options).errev_lower_bound;
  }
  const std::string prefix = options.get_string("prefix");
  const auto write = [&](const char* suffix, auto&& writer) {
    std::ofstream out(prefix + suffix);
    SM_REQUIRE(out.good(), "cannot open ", prefix, suffix);
    writer(out);
  };
  write(".tra", [&](std::ostream& o) { mdp::export_tra(model.mdp, o); });
  write(".lab", [&](std::ostream& o) { mdp::export_lab(model.mdp, o); });
  write(".rew",
        [&](std::ostream& o) { mdp::export_rew(model.mdp, beta, o); });
  std::printf("wrote %s.tra/.lab/.rew (beta = %.6f, %u states)\n",
              prefix.c_str(), beta, model.mdp.num_states());
  return 0;
}

int cmd_upper_bound(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("lmin", "2", "smallest fork cap to analyze");
  options.declare("lmax", "5", "largest fork cap to analyze");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  analysis::UpperBoundOptions ub_options;
  ub_options.l_min = options.get_int("lmin");
  ub_options.l_max = options.get_int("lmax");
  ub_options.analysis = analysis_from(options, options.get_int("threads"));
  const auto result =
      analysis::bound_errev_in_l(params_from(options), ub_options);

  support::Table table({"l", "states", "ERRev lower bound",
                        "in-model upper bound"});
  for (const auto& point : result.points) {
    table.add_row({std::to_string(point.l), std::to_string(point.num_states),
                   support::format_double(point.errev_lb, 6),
                   support::format_double(point.beta_hi, 6)});
  }
  table.print(std::cout);
  std::printf("certified ERRev*(l=%d) <= %.6f\n", ub_options.l_max,
              result.certified_at_lmax);
  std::printf("heuristic l->inf estimate: %.6f (tail %.2e, %s)\n",
              result.extrapolated_limit, result.extrapolation_tail,
              result.geometric ? "geometric fit" : "fallback");
  return 0;
}

int cmd_baselines(int argc, const char* const* argv) {
  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  if (!parse_or_help(options, argc, argv)) return 0;
  const double p = options.get_double("p");
  const double gamma = options.get_double("gamma");

  support::Table table({"baseline", "ERRev"});
  table.add_row({"honest mining",
                 support::format_double(baselines::honest_errev(p), 6)});
  table.add_row(
      {"single-tree NaS (l=4, f=5)",
       support::format_double(
           baselines::analyze_single_tree(
               baselines::SingleTreeParams{.p = p, .gamma = gamma,
                                           .max_depth = 4, .max_width = 5})
               .errev,
           6)});
  if (p < 0.5) {
    table.add_row({"Eyal-Sirer PoW selfish mining",
                   support::format_double(
                       baselines::eyal_sirer_revenue({p, gamma}), 6)});
  }
  table.print(std::cout);
  return 0;
}

void print_usage() {
  std::fprintf(
      stderr,
      "selfish-mining — automated selfish mining analysis "
      "(PODC'24 reproduction)\n\n"
      "usage: selfish-mining <command> [--option=value ...]\n\n"
      "commands:\n"
      "  analyze    run Algorithm 1 for one attack configuration\n"
      "  sweep      ERRev over a resource grid — parallel, cached, "
      "resumable (CSV)\n"
      "  threshold  locate the profitability frontier in p\n"
      "  simulate   execute a strategy in the Monte-Carlo simulator\n"
      "  network    discrete-event multi-miner network simulation "
      "(scenario x seed batches)\n"
      "  export     write the MDP in Storm explicit format\n"
      "  upper-bound certified and extrapolated bounds across fork caps\n"
      "  baselines  baseline revenues for (p, gamma)\n\n"
      "run a command with --help for its options.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so subcommands parse their own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "analyze") return cmd_analyze(sub_argc, sub_argv);
    if (command == "sweep") return cmd_sweep(sub_argc, sub_argv);
    if (command == "threshold") return cmd_threshold(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "network") return cmd_network(sub_argc, sub_argv);
    if (command == "export") return cmd_export(sub_argc, sub_argv);
    if (command == "upper-bound") return cmd_upper_bound(sub_argc, sub_argv);
    if (command == "baselines") return cmd_baselines(sub_argc, sub_argv);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    print_usage();
    return 1;
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
