// selfish-mining — unified command-line front end to the library.
//
//   selfish-mining analyze   --p=0.3 --gamma=0.5 --d=2 --f=2
//   selfish-mining sweep     --gamma=0.5 --d=2 --f=2 --pmax=0.3 --step=0.05
//   selfish-mining threshold --gamma=0.5 --d=2 --f=2
//   selfish-mining simulate  --p=0.3 --gamma=0.5 --d=2 --f=2 --steps=500000
//   selfish-mining network   --scenario=single-optimal --runs=8 --threads=0
//   selfish-mining export    --p=0.3 --gamma=0.5 --d=2 --f=1 --prefix=out
//   selfish-mining baselines --p=0.3 --gamma=0.5
//   selfish-mining serve     --port=7077 --threads=0 --cache-dir=cache
//   selfish-mining query     --port=7077 --kind=threshold --gamma=0.5 --d=2
//   selfish-mining query     '{"kind":"metrics"}'
//
// Every subcommand accepts --help. Options may also come from the
// SELFISH_* environment (see support::Options).
#include <atomic>
#include <chrono>
#include <thread>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/algorithm1.hpp"
#include "analysis/policy_stats.hpp"
#include "analysis/render.hpp"
#include "analysis/strategy_io.hpp"
#include "analysis/sweep.hpp"
#include "analysis/threshold.hpp"
#include "analysis/upper_bound.hpp"
#include "baselines/eyal_sirer.hpp"
#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "engine/engine.hpp"
#include "fleet/auth.hpp"
#include "fleet/router.hpp"
#include "mdp/export.hpp"
#include "net/batch.hpp"
#include "net/scenario.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "selfish/build.hpp"
#include "selfish/cache.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "sim/strategies.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

/// Every subcommand accepts the observability flags. --trace-out: obs
/// spans (solves, engine jobs, simulator runs, served requests) append
/// NDJSON records to the file for the lifetime of the process (the
/// in-memory flight recorder runs regardless). --log-level / --log-out:
/// structured NDJSON logging (stderr by default). All observe-only — the
/// command's stdout artifact is byte-identical with or without them.
void declare_trace_option(support::Options& options) {
  options.declare("trace-out", "",
                  "write obs trace spans (NDJSON, one per span) to this "
                  "file; empty = tracing off (the in-memory flight "
                  "recorder stays on)");
  options.declare("log-level", "info",
                  "structured log threshold: off | error | warn | info | "
                  "debug");
  options.declare("log-out", "",
                  "write structured NDJSON log lines to this file; "
                  "empty = stderr");
}

void apply_trace_option(const support::Options& options) {
  const std::string path = options.get_string("trace-out");
  if (!path.empty()) obs::open_trace(path);
  obs::set_log_level(obs::parse_log_level(options.get_string("log-level")));
  const std::string log_path = options.get_string("log-out");
  if (!log_path.empty()) obs::open_log(log_path);
}

void declare_model_options(support::Options& options) {
  options.declare("help", "false", "show this command's options");
  options.declare("p", "0.3", "adversary's relative resource in [0,1]");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "1", "forks per public block");
  options.declare("l", "4", "maximal private fork length");
  options.declare("burn-lost-races", "false",
                  "fork-choice variant: discard forks that lose tie races");
  options.declare("epsilon", "0.001", "Algorithm 1 precision");
  options.declare("solver", "vi", "mean-payoff solver: vi | gs | pi | dense");
  options.declare("sweep-mode", "ordered",
                  "gs iterate path: ordered (serial sweeps, certified "
                  "reference) | redblack (parallel two-phase colored "
                  "sweeps; distinct certified path, keyed into job ids)");
  options.declare("cache", "",
                  "binary model cache file: reused when valid, written "
                  "after a fresh build (worthwhile for d >= 3)");
  declare_trace_option(options);
}

/// Parses argv and handles --help; returns true when the command should
/// proceed (false = help was printed). Opens the trace sink when the
/// command declared --trace-out and the user set it.
bool parse_or_help(support::Options& options, int argc,
                   const char* const* argv) {
  options.parse(argc, argv);
  if (options.get_bool("help")) {
    std::fputs(options.usage(std::string("selfish-mining ") + argv[0]).c_str(),
               stderr);
    return false;
  }
  if (options.knows("trace-out")) apply_trace_option(options);
  return true;
}

selfish::AttackParams params_from(const support::Options& options) {
  return selfish::AttackParams{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = options.get_int("l"),
      .burn_lost_races = options.get_bool("burn-lost-races"),
  };
}

/// Builds the model, via the on-disk cache when --cache is set.
selfish::SelfishModel model_from(const support::Options& options) {
  const auto params = params_from(options);
  const std::string cache = options.get_string("cache");
  return cache.empty() ? selfish::build_model(params)
                       : selfish::build_or_load_model(params, cache);
}

/// Declares --threads for commands whose solves run one at a time (the
/// kernel fans each Bellman sweep over the workers; sweep's --threads
/// means engine chains instead, and its per-solve threads stay at 1).
void declare_solver_threads(support::Options& options) {
  options.declare("threads", "0",
                  "Bellman-sweep worker threads per mean-payoff solve "
                  "(0 = all cores); results are bit-identical at any count");
  options.declare("gather", "auto",
                  "v[target] gather path: auto | scalar | avx2 | avx512 "
                  "(auto calibrates scalar vs the widest ISA the CPU "
                  "supports; every mode is byte-identical)");
  options.declare("prefetch-distance",
                  std::to_string(mdp::kDefaultPrefetchDistance),
                  "software-prefetch lookahead in transitions for scalar "
                  "sweeps (0 = off); pure speed knob");
}

analysis::AnalysisOptions analysis_from(const support::Options& options,
                                        int solver_threads = 1) {
  analysis::AnalysisOptions out;
  out.epsilon = options.get_double("epsilon");
  out.solver.method = mdp::parse_solver_method(options.get_string("solver"));
  out.solver.threads = solver_threads;
  // --sweep-mode rides with the model/solver options (it is
  // result-affecting and flows into job keys); the gather/prefetch speed
  // knobs are declared only by commands that run solves directly.
  out.solver.tuning.sweep_mode =
      mdp::parse_sweep_mode(options.get_string("sweep-mode"));
  if (options.knows("gather")) {
    out.solver.tuning.gather =
        mdp::parse_gather_mode(options.get_string("gather"));
    out.solver.tuning.prefetch_distance =
        options.get_int("prefetch-distance");
  }
  return out;
}

int cmd_analyze(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("save-strategy", "",
                  "write the computed strategy to this file");
  options.declare("stats", "true", "print aggregate strategy statistics");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto params = params_from(options);
  const auto model = model_from(options);
  const auto result = analysis::analyze(
      model, analysis_from(options, options.get_int("threads")));

  // Shared renderer: `query --kind=point` replies reuse it, which is what
  // makes served responses byte-identical to this output.
  std::fputs(analysis::render_analysis_report(params, model, result,
                                              options.get_bool("stats"))
                 .c_str(),
             stdout);
  const std::string path = options.get_string("save-strategy");
  if (!path.empty()) {
    std::ofstream out(path);
    SM_REQUIRE(out.good(), "cannot open ", path);
    analysis::save_strategy(model, result.policy, out);
    std::printf("strategy saved to %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("pmin", "0", "smallest resource");
  options.declare("pmax", "0.3", "largest resource");
  options.declare("step", "0.05", "resource grid step");
  options.declare("threads", "1",
                  "engine worker threads (0 = all cores); independent "
                  "warm-start chains run in parallel");
  options.declare("cache-dir", "",
                  "experiment-engine result store: a killed sweep resumes "
                  "from its completed grid points, reruns are served from "
                  "cache, and the CSV is byte-identical either way");
  options.declare("store-values", "true",
                  "persist final value vectors (warm starts) in the result "
                  "store; turn off to shrink caches for huge models — "
                  "resumed points after a value-less hit are re-solved");
  if (!parse_or_help(options, argc, argv)) return 0;

  selfish::AttackParams base = params_from(options);
  const auto grid = analysis::linspace_grid(options.get_double("pmin"),
                                            options.get_double("pmax"),
                                            options.get_double("step"));

  engine::EngineOptions engine_options;
  engine_options.cache_dir = options.get_string("cache-dir");
  engine_options.threads = options.get_int("threads");
  engine_options.store_values = options.get_bool("store-values");
  engine::Engine engine(engine_options);

  const support::Timer timer;
  const auto sweep =
      analysis::sweep_p(base, grid, analysis_from(options), engine);
  analysis::write_sweep_csv(sweep, std::cout);

  // The CSV on stdout is the deterministic artifact; volatile run stats
  // go to stderr.
  std::size_t cached = 0;
  double solve_seconds = 0.0;
  for (const auto& point : sweep.points) {
    cached += point.cached ? 1 : 0;
    solve_seconds += point.seconds;
  }
  std::fprintf(stderr,
               "sweep: %zu points (%zu from cache), %.3f s solve time, "
               "%.3f s wall\n",
               sweep.points.size(), cached, solve_seconds, timer.seconds());
  return 0;
}

int cmd_threshold(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("margin", "0.005", "excess revenue that counts as unfair");
  options.declare("ptol", "0.005", "p bracket width");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  analysis::ThresholdOptions threshold_options;
  threshold_options.analysis =
      analysis_from(options, options.get_int("threads"));
  threshold_options.unfairness_margin = options.get_double("margin");
  threshold_options.p_tolerance = options.get_double("ptol");
  const auto result =
      analysis::fairness_threshold(params_from(options), threshold_options);
  std::fputs(analysis::render_threshold_report(threshold_options, result)
                 .c_str(),
             stdout);
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("steps", "500000", "mining steps");
  options.declare("seed", "42", "simulation seed");
  options.declare("strategy", "optimal",
                  "optimal | honest | never-release, or a strategy file "
                  "saved by `analyze --save-strategy`");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto params = params_from(options);
  const auto model = model_from(options);

  mdp::Policy policy;
  std::unique_ptr<sim::Strategy> strategy;
  const std::string which = options.get_string("strategy");
  if (which == "optimal") {
    policy = analysis::analyze(
                 model, analysis_from(options, options.get_int("threads")))
                 .policy;
    strategy = std::make_unique<sim::MdpPolicyStrategy>(model, policy);
  } else if (which == "honest" || which == "never-release") {
    strategy = sim::make_builtin_strategy(which);
  } else {
    policy = analysis::load_strategy_file(model, which);
    strategy = std::make_unique<sim::MdpPolicyStrategy>(model, policy);
  }

  sim::SimulationOptions sim_options;
  sim_options.steps = static_cast<std::uint64_t>(options.get_int("steps"));
  sim_options.warmup_steps = sim_options.steps / 20;
  sim_options.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  const auto result = sim::simulate(params, *strategy, sim_options);

  std::printf("empirical ERRev = %.5f over %llu finalized blocks "
              "(chain quality %.5f)\n",
              result.errev,
              static_cast<unsigned long long>(result.revenue.total()),
              result.revenue.chain_quality());
  std::printf("events: %llu releases, %llu overrides, races won/lost "
              "%llu/%llu, %llu wasted blocks\n",
              static_cast<unsigned long long>(result.releases),
              static_cast<unsigned long long>(result.overrides),
              static_cast<unsigned long long>(result.races_won),
              static_cast<unsigned long long>(result.races_lost),
              static_cast<unsigned long long>(result.adversary_blocks_wasted));
  for (const std::size_t window : {20u, 100u}) {
    const auto quality = chain::window_quality(result.final_owners, window);
    std::printf("(mu, l=%zu)-chain quality: worst %.3f, average %.3f\n",
                window, quality.worst, quality.average);
  }
  return 0;
}

int cmd_network(int argc, const char* const* argv) {
  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("scenario", "single-optimal",
                  "scenario family to run; see --help for the registry");
  options.declare("p", "0.3", "attacker hashrate share");
  options.declare("gamma", "0.5", "tie-race parameter");
  options.declare("delay", "0", "one-way propagation delay (seconds)");
  options.declare("interval", "600", "mean block interval (seconds)");
  options.declare("blocks", "100000", "mining events per run");
  options.declare("honest", "3", "honest miners sharing the honest power");
  options.declare("d", "2", "attack depth (strategy attackers)");
  options.declare("f", "1", "forks per public block (strategy attackers)");
  options.declare("l", "4", "maximal fork length (strategy attackers)");
  options.declare("strategy", "optimal",
                  "strategy of kStrategy attackers: optimal | honest | "
                  "never-release | file:<path>");
  options.declare("propagation", "direct",
                  "block propagation: direct (origin-to-all) | gossip "
                  "(store-and-forward along topology links)");
  options.declare("partition-start", "0.25",
                  "partition-attack: split start as a fraction of the "
                  "expected run duration");
  options.declare("partition-stop", "0.45",
                  "partition-attack: heal time as a fraction of the "
                  "expected run duration");
  options.declare("partition-frac", "0.5",
                  "partition-attack: fraction of the honest miners "
                  "isolated from the attacker's side");
  options.declare("asymmetry", "4",
                  "asymmetric-star: honest up-spoke delay multiplier "
                  "(announce at asymmetry*delay, listen at delay)");
  options.declare("epsilon", "0.001", "Algorithm 1 precision");
  options.declare("runs", "8", "seeds per scenario point");
  options.declare("threads", "0", "worker threads (0 = all cores)");
  options.declare("seed", "24141", "base seed of the batch");
  options.declare("csv", "false", "emit CSV instead of a table");
  options.declare("cache-dir", "",
                  "experiment-engine result store for the per-point "
                  "Algorithm 1 preparations (reruns skip re-analysis)");
  options.declare("resample-clock", "false",
                  "restore the legacy resample-mining-clock-after-every-"
                  "event loop (default reschedules only on lane changes)");
  declare_trace_option(options);
  if (!parse_or_help(options, argc, argv)) {
    std::fputs(("\nscenario families:\n" + net::scenario_help()).c_str(),
               stderr);
    return 0;
  }

  const int blocks = options.get_int("blocks");
  SM_REQUIRE(blocks > 0, "--blocks must be positive, got ", blocks);

  net::ScenarioOptions scenario_options;
  scenario_options.p = options.get_double("p");
  scenario_options.gamma = options.get_double("gamma");
  scenario_options.delay = options.get_double("delay");
  scenario_options.block_interval = options.get_double("interval");
  scenario_options.blocks = static_cast<std::uint64_t>(blocks);
  scenario_options.honest_miners = options.get_int("honest");
  scenario_options.d = options.get_int("d");
  scenario_options.f = options.get_int("f");
  scenario_options.l = options.get_int("l");
  scenario_options.strategy = options.get_string("strategy");
  scenario_options.propagation =
      net::propagation_from_string(options.get_string("propagation"));
  scenario_options.partition_start = options.get_double("partition-start");
  scenario_options.partition_stop = options.get_double("partition-stop");
  scenario_options.partition_fraction = options.get_double("partition-frac");
  scenario_options.asymmetry = options.get_double("asymmetry");

  net::BatchOptions batch_options;
  batch_options.runs_per_scenario = options.get_int("runs");
  batch_options.threads = options.get_int("threads");
  batch_options.base_seed = static_cast<std::uint64_t>(options.get_int("seed"));
  batch_options.epsilon = options.get_double("epsilon");
  batch_options.cache_dir = options.get_string("cache-dir");

  auto grid =
      net::make_scenarios(options.get_string("scenario"), scenario_options);
  if (options.get_bool("resample-clock")) {
    for (net::Scenario& scenario : grid) {
      scenario.lazy_clock_reschedule = false;
    }
  }
  const auto aggregates = net::run_batch(grid, batch_options);

  if (options.get_bool("csv")) {
    net::write_batch_csv(aggregates, std::cout);
    return 0;
  }
  support::Table table({"scenario", "variant", "attacker share", "ci95",
                        "stale rate", "eff. gamma", "predicted ERRev",
                        "races", "worst prop", "relays", "syncs", "cut"});
  for (const auto& agg : aggregates) {
    table.add_row(
        {agg.name, agg.variant,
         support::format_double(agg.attacker_share.mean(), 5),
         support::format_double(agg.attacker_share.ci95_halfwidth(), 5),
         support::format_double(agg.stale_rate.mean(), 4),
         agg.effective_gamma.count() == 0
             ? "-"
             : support::format_double(agg.effective_gamma.mean(), 4),
         agg.predicted_errev == agg.predicted_errev
             ? support::format_double(agg.predicted_errev, 5)
             : "-",
         std::to_string(agg.total_races),
         support::format_double(agg.worst_propagation.mean(), 2),
         std::to_string(agg.total_relays),
         std::to_string(agg.total_syncs),
         std::to_string(agg.total_cut_sends)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("prefix", "selfish_model", "output file prefix");
  options.declare("beta", "-1",
                  "beta for the reward file; -1 = computed ERRev bound");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const auto model = model_from(options);
  double beta = options.get_double("beta");
  if (beta < 0.0) {
    auto analysis_options =
        analysis_from(options, options.get_int("threads"));
    analysis_options.evaluate_exact_errev = false;
    beta = analysis::analyze(model, analysis_options).errev_lower_bound;
  }
  const std::string prefix = options.get_string("prefix");
  const auto write = [&](const char* suffix, auto&& writer) {
    std::ofstream out(prefix + suffix);
    SM_REQUIRE(out.good(), "cannot open ", prefix, suffix);
    writer(out);
  };
  write(".tra", [&](std::ostream& o) { mdp::export_tra(model.mdp, o); });
  write(".lab", [&](std::ostream& o) { mdp::export_lab(model.mdp, o); });
  write(".rew",
        [&](std::ostream& o) { mdp::export_rew(model.mdp, beta, o); });
  std::printf("wrote %s.tra/.lab/.rew (beta = %.6f, %u states)\n",
              prefix.c_str(), beta, model.mdp.num_states());
  return 0;
}

int cmd_upper_bound(int argc, const char* const* argv) {
  support::Options options;
  declare_model_options(options);
  options.declare("lmin", "2", "smallest fork cap to analyze");
  options.declare("lmax", "5", "largest fork cap to analyze");
  declare_solver_threads(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  analysis::UpperBoundOptions ub_options;
  ub_options.l_min = options.get_int("lmin");
  ub_options.l_max = options.get_int("lmax");
  ub_options.analysis = analysis_from(options, options.get_int("threads"));
  const auto result =
      analysis::bound_errev_in_l(params_from(options), ub_options);
  std::fputs(analysis::render_upper_bound_report(ub_options, result).c_str(),
             stdout);
  return 0;
}

int cmd_baselines(int argc, const char* const* argv) {
  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  if (!parse_or_help(options, argc, argv)) return 0;
  const double p = options.get_double("p");
  const double gamma = options.get_double("gamma");

  support::Table table({"baseline", "ERRev"});
  table.add_row({"honest mining",
                 support::format_double(baselines::honest_errev(p), 6)});
  table.add_row(
      {"single-tree NaS (l=4, f=5)",
       support::format_double(
           baselines::analyze_single_tree(
               baselines::SingleTreeParams{.p = p, .gamma = gamma,
                                           .max_depth = 4, .max_width = 5})
               .errev,
           6)});
  if (p < 0.5) {
    table.add_row({"Eyal-Sirer PoW selfish mining",
                   support::format_double(
                       baselines::eyal_sirer_revenue({p, gamma}), 6)});
  }
  table.print(std::cout);
  return 0;
}

std::atomic<serve::Server*> g_server{nullptr};

/// SIGINT/SIGTERM: leave the accept loop. request_stop only touches an
/// atomic and calls shutdown(2) — async-signal-safe. The handlers are
/// deregistered before Server::stop() closes the listening fd, so the
/// handler can never shut down a recycled descriptor.
void handle_stop_signal(int) {
  serve::Server* server = g_server.load();
  if (server != nullptr) server->request_stop();
}

std::atomic<bool> g_flight_dump_requested{false};

/// SIGUSR1: dump the flight recorder. The handler only sets a flag
/// (async-signal-safe — the dump allocates); a watcher thread in
/// cmd_serve performs the actual NDJSON write to stderr.
void handle_dump_signal(int) { g_flight_dump_requested.store(true); }

int cmd_serve(int argc, const char* const* argv) {
  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("host", "127.0.0.1",
                  "bind address (loopback by default; pair a non-loopback "
                  "bind with --auth-secret-file)");
  options.declare("port", "7077", "TCP port (0 = ephemeral)");
  options.declare("threads", "0",
                  "concurrent jobs (0 = all cores); bounds simultaneous "
                  "solves regardless of connection count");
  options.declare("job-threads", "1",
                  "worker threads inside each job (total CPU ~ threads x "
                  "job-threads; raise for few-client, latency-sensitive "
                  "use)");
  options.declare("cache-dir", "",
                  "content-addressed result store shared with the batch "
                  "commands; a restarted server answers warm from it");
  options.declare("lru-mb", "64",
                  "in-memory artifact cache budget in MiB (0 disables)");
  options.declare("workers", "0",
                  "protocol worker threads between the reactor and the "
                  "job pool (0 = all cores); bounds concurrent request "
                  "handling no matter how many connections are open");
  options.declare("max-inflight", "256",
                  "global cap on dispatched-but-unanswered requests; "
                  "excess lines get an immediate `busy` reply (0 = off)");
  options.declare("max-inflight-per-conn", "32",
                  "the same cap per connection, so one pipelining client "
                  "cannot monopolize the pool (0 = off)");
  options.declare("idle-timeout", "0",
                  "seconds after which a connection with no traffic and "
                  "nothing in flight is closed (0 = never)");
  options.declare("auth-secret-file", "",
                  "shared-secret file; when set, every non-ping request "
                  "must first pass the HMAC-SHA256 ping challenge and "
                  "HTTP /metrics is refused (/healthz stays open)");
  declare_trace_option(options);
  if (!parse_or_help(options, argc, argv)) return 0;

  const int lru_mb = options.get_int("lru-mb");
  SM_REQUIRE(lru_mb >= 0, "--lru-mb must be non-negative, got ", lru_mb);
  const double idle_timeout = options.get_double("idle-timeout");
  SM_REQUIRE(idle_timeout >= 0, "--idle-timeout must be non-negative, got ",
             idle_timeout);

  serve::ServerOptions server_options;
  server_options.host = options.get_string("host");
  server_options.port = options.get_int("port");
  server_options.workers = options.get_int("workers");
  server_options.max_inflight = options.get_int("max-inflight");
  server_options.max_inflight_per_connection =
      options.get_int("max-inflight-per-conn");
  server_options.idle_timeout_seconds = idle_timeout;
  server_options.auth_secret_file = options.get_string("auth-secret-file");
  server_options.service.cache_dir = options.get_string("cache-dir");
  server_options.service.threads = options.get_int("threads");
  server_options.service.job_threads = options.get_int("job-threads");
  server_options.service.lru_bytes =
      static_cast<std::size_t>(lru_mb) << 20;

  serve::Server server(server_options);
  g_server.store(&server);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGUSR1, handle_dump_signal);
  // SIGUSR1 watcher: polls the handler's flag and dumps the flight
  // recorder to stderr (the handler itself must not allocate).
  std::atomic<bool> watcher_stop{false};
  std::thread dump_watcher([&watcher_stop] {
    while (!watcher_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (g_flight_dump_requested.exchange(false)) {
        const std::string dump = obs::flight_dump_ndjson();
        std::fwrite(dump.data(), 1, dump.size(), stderr);
        std::fflush(stderr);
      }
    }
  });

  // The one stdout line is the readiness handshake scripts wait for.
  std::printf("serving on %s:%d\n", server_options.host.c_str(),
              server.port());
  std::fflush(stdout);
  server.serve_forever();
  // Restore default signal disposition before stop() closes descriptors:
  // a second SIGTERM during the drain then terminates the process (the
  // conventional force-quit) instead of racing shutdown(2) against fd
  // reuse.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGUSR1, SIG_DFL);
  g_server.store(nullptr);
  watcher_stop.store(true);
  dump_watcher.join();
  server.stop();

  const serve::ServiceStats stats = server.service().stats();
  std::fprintf(stderr,
               "serve: %llu requests — %llu lru, %llu store, %llu solved, "
               "%llu coalesced, %llu errors, %llu rejected\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.lru_hits),
               static_cast<unsigned long long>(stats.store_hits),
               static_cast<unsigned long long>(stats.solves),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.rejected));
  const serve::TransportStats& transport = server.transport_stats();
  std::fprintf(stderr,
               "serve: transport — %llu connections accepted, %llu busy "
               "refusals, %llu idle closes\n",
               static_cast<unsigned long long>(transport.accepted.load()),
               static_cast<unsigned long long>(transport.busy.load()),
               static_cast<unsigned long long>(transport.idle_closed.load()));
  return 0;
}

int cmd_query(int argc, const char* const* argv) {
  // One positional argument starting with '{' is a raw JSON request line
  // sent verbatim — `selfish-mining query '{"kind":"metrics"}'` — which
  // sidesteps the typed flags entirely. (`{` cannot collide with option
  // values: every `--name value` pair parses before this scan removes the
  // positional, and no declared option takes a JSON object.)
  std::string raw_request;
  std::vector<const char*> flag_argv;
  flag_argv.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && argv[i][0] == '{') {
      SM_REQUIRE(raw_request.empty(),
                 "query takes at most one positional JSON request");
      raw_request = argv[i];
    } else {
      flag_argv.push_back(argv[i]);
    }
  }

  support::Options options;
  options.declare("help", "false", "show this command's options");
  options.declare("host", "127.0.0.1", "server address");
  options.declare("port", "7077", "server TCP port");
  options.declare("fleet", "",
                  "comma-separated host:port replica list; the request is "
                  "routed to the replica owning its job key (rendezvous "
                  "hashing) with failover past unreachable replicas — "
                  "overrides --host/--port");
  options.declare("auth-secret-file", "",
                  "shared-secret file matching the server's "
                  "--auth-secret-file; the client answers the ping "
                  "challenge before sending the request");
  options.declare("kind", "point",
                  "query kind: point | sweep | threshold | upper-bound | "
                  "net-batch | ping | stats | metrics | trace-dump | "
                  "shutdown "
                  "(ignored when a positional JSON request is given)");
  options.declare("raw", "false",
                  "print the raw JSON response line instead of the body");
  options.declare("trace-id", "",
                  "1-16 hex digits attached to the request; the server "
                  "tags its spans with it and echoes it in the reply");
  // Every analysis-kind option, typed. Only options the user explicitly
  // set travel in the request: the server applies the same defaults as
  // the direct CLI subcommands, so an empty query equals the subcommand's
  // default invocation. The presets below (and the subcommands' declare()
  // defaults) must stay in sync with serve/protocol.cpp's fallbacks —
  // test_serve's DefaultsMatchTheCliSubcommands pins the protocol side.
  struct Field {
    const char* name;
    char type;  // d = double, i = integer, b = bool, s = string
    const char* preset;
    const char* help;
  };
  static constexpr Field kFields[] = {
      {"p", 'd', "0.3", "adversary's relative resource in [0,1]"},
      {"gamma", 'd', "0.5", "tie-race switching probability"},
      {"d", 'i', "2", "attack depth"},
      {"f", 'i', "1", "forks per public block"},
      {"l", 'i', "4", "maximal private fork length"},
      {"burn-lost-races", 'b', "false", "fork-choice ablation variant"},
      {"epsilon", 'd', "0.001", "Algorithm 1 precision"},
      {"solver", 's', "vi", "mean-payoff solver: vi | gs | pi | dense"},
      {"stats", 'b', "true", "point: include strategy statistics"},
      {"pmin", 'd', "0", "sweep: smallest resource"},
      {"pmax", 'd', "0.3", "sweep: largest resource"},
      {"step", 'd', "0.05", "sweep: resource grid step"},
      {"margin", 'd', "0.005", "threshold: excess that counts as unfair"},
      {"ptol", 'd', "0.005", "threshold: p bracket width"},
      {"lmin", 'i', "2", "upper-bound: smallest fork cap"},
      {"lmax", 'i', "5", "upper-bound: largest fork cap"},
      {"scenario", 's', "single-optimal", "net-batch: scenario family"},
      {"delay", 'd', "0", "net-batch: one-way propagation delay"},
      {"interval", 'd', "600", "net-batch: mean block interval"},
      {"blocks", 'i', "100000", "net-batch: mining events per run"},
      {"honest", 'i', "3", "net-batch: honest miner count"},
      {"strategy", 's', "optimal", "net-batch: attacker strategy"},
      {"propagation", 's', "direct", "net-batch: direct | gossip"},
      {"partition-start", 'd', "0.25", "net-batch: split start fraction"},
      {"partition-stop", 'd', "0.45", "net-batch: heal time fraction"},
      {"partition-frac", 'd', "0.5", "net-batch: isolated honest fraction"},
      {"asymmetry", 'd', "4", "net-batch: up-spoke delay multiplier"},
      {"runs", 'i', "8", "net-batch: seeds per scenario point"},
      {"seed", 'i', "24141", "net-batch: base seed of the batch"},
  };
  for (const Field& field : kFields) {
    options.declare(field.name, field.preset, field.help);
  }
  if (!parse_or_help(options, static_cast<int>(flag_argv.size()),
                     flag_argv.data())) {
    return 0;
  }

  std::string request = raw_request;
  if (request.empty()) {
    serve::JsonMembers members;
    members.emplace_back("kind", serve::Json(options.get_string("kind")));
    if (options.was_set("trace-id")) {
      members.emplace_back("trace_id",
                           serve::Json(options.get_string("trace-id")));
    }
    for (const Field& field : kFields) {
      if (!options.was_set(field.name)) continue;
      switch (field.type) {
        case 'd':
          members.emplace_back(field.name,
                               serve::Json(options.get_double(field.name)));
          break;
        case 'i':
          members.emplace_back(
              field.name,
              serve::Json(static_cast<double>(options.get_int(field.name))));
          break;
        case 'b':
          members.emplace_back(field.name,
                               serve::Json(options.get_bool(field.name)));
          break;
        default:
          members.emplace_back(field.name,
                               serve::Json(options.get_string(field.name)));
      }
    }
    request = serve::Json::object(std::move(members)).dump();
  }

  serve::ClientOptions client_options;
  if (options.was_set("auth-secret-file")) {
    client_options.auth_secret =
        fleet::load_secret_file(options.get_string("auth-secret-file"));
  }

  // --fleet routes through the rendezvous-hashing router; otherwise one
  // direct session. Both paths produce byte-identical bodies.
  std::unique_ptr<fleet::Router> router;
  std::unique_ptr<serve::Client> client;
  if (options.was_set("fleet")) {
    fleet::RouterOptions router_options;
    router_options.client = client_options;
    router = std::make_unique<fleet::Router>(
        fleet::parse_endpoints(options.get_string("fleet")), router_options);
  } else {
    client = std::make_unique<serve::Client>(options.get_string("host"),
                                             options.get_int("port"),
                                             client_options);
  }

  if (options.get_bool("raw")) {
    const std::string raw = router != nullptr ? router->request_raw(request)
                                              : client->request_raw(request);
    std::printf("%s\n", raw.c_str());
    return 0;
  }
  const serve::Reply reply = router != nullptr ? router->request(request)
                                               : client->request(request);
  if (!reply.ok) {
    std::fprintf(stderr, "query error: %s\n", reply.error.c_str());
    return 1;
  }
  // The body is the byte-exact artifact; metadata goes to stderr so the
  // stdout stream can be diffed against the direct subcommand.
  std::fputs(reply.body.c_str(), stdout);
  std::fprintf(stderr, "query: kind=%s cached=%d source=%s seconds=%.3f",
               reply.kind.c_str(), reply.cached ? 1 : 0,
               reply.source.c_str(), reply.seconds);
  if (!reply.trace_id.empty()) {
    std::fprintf(stderr, " trace_id=%s", reply.trace_id.c_str());
  }
  std::fputc('\n', stderr);
  return 0;
}

void print_usage() {
  std::fprintf(
      stderr,
      "selfish-mining — automated selfish mining analysis "
      "(PODC'24 reproduction)\n\n"
      "usage: selfish-mining <command> [--option=value ...]\n\n"
      "commands:\n"
      "  analyze    run Algorithm 1 for one attack configuration\n"
      "  sweep      ERRev over a resource grid — parallel, cached, "
      "resumable (CSV)\n"
      "  threshold  locate the profitability frontier in p\n"
      "  simulate   execute a strategy in the Monte-Carlo simulator\n"
      "  network    discrete-event multi-miner network simulation "
      "(scenario x seed batches)\n"
      "  export     write the MDP in Storm explicit format\n"
      "  upper-bound certified and extrapolated bounds across fork caps\n"
      "  baselines  baseline revenues for (p, gamma)\n"
      "  serve      long-running analysis service (NDJSON over TCP; LRU + "
      "single-flight\n"
      "             over the content-addressed store)\n"
      "  query      send one request to a running server; the body printed "
      "on stdout is\n"
      "             byte-identical to the equivalent direct subcommand "
      "(--fleet routes\n"
      "             across replicas, --auth-secret-file authenticates)\n\n"
      "run a command with --help for its options.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so subcommands parse their own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "analyze") return cmd_analyze(sub_argc, sub_argv);
    if (command == "sweep") return cmd_sweep(sub_argc, sub_argv);
    if (command == "threshold") return cmd_threshold(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "network") return cmd_network(sub_argc, sub_argv);
    if (command == "export") return cmd_export(sub_argc, sub_argv);
    if (command == "upper-bound") return cmd_upper_bound(sub_argc, sub_argv);
    if (command == "baselines") return cmd_baselines(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "query") return cmd_query(sub_argc, sub_argv);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
    print_usage();
    return 1;
  } catch (const support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
