// Network-simulation demo: how propagation delay turns into effective
// gamma, and how the zero-delay network converges to the MDP analysis.
//
//   ./network_race                 # quick demo grid
//   ./network_race --runs=16 --threads=4 --blocks=200000
//
// Four mini-experiments:
//   1. honest-uniform    — sanity: canonical share tracks hashrate.
//   2. sm1-delay-sweep   — effective gamma and attacker revenue vs delay.
//   3. single-optimal    — zero-delay network vs the MDP-predicted ERRev.
//   4. gossip-delay +
//      partition-attack  — store-and-forward relay along a line of
//                          miners, and a timed network split that heals
//                          mid-run (watch the stale rate jump).
#include <cstdio>
#include <iostream>

#include "net/batch.hpp"
#include "net/scenario.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("help", "false", "show options");
  options.declare("p", "0.3", "attacker hashrate share");
  options.declare("gamma", "0.5", "tie-race parameter");
  options.declare("blocks", "60000", "mining events per run");
  options.declare("runs", "8", "seeds per scenario point");
  options.declare("threads", "0", "worker threads (0 = all cores)");
  int blocks = 0;
  try {
    options.parse(argc, argv);
    blocks = options.get_int("blocks");
    SM_REQUIRE(blocks > 0, "--blocks must be positive, got ", blocks);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("network_race").c_str());
    return 1;
  }
  if (options.get_bool("help")) {
    std::fputs(options.usage("network_race").c_str(), stderr);
    return 0;
  }

  net::ScenarioOptions scenario_options;
  scenario_options.p = options.get_double("p");
  scenario_options.gamma = options.get_double("gamma");
  scenario_options.blocks = static_cast<std::uint64_t>(blocks);

  net::BatchOptions batch_options;
  batch_options.runs_per_scenario = options.get_int("runs");
  batch_options.threads = options.get_int("threads");

  std::vector<net::Scenario> grid;
  for (const char* family :
       {"honest-uniform", "sm1-delay-sweep", "single-optimal"}) {
    for (net::Scenario& s :
         net::make_scenarios(family, scenario_options)) {
      grid.push_back(std::move(s));
    }
  }
  // The network-realism families: per-hop gossip relay (take the 1% hop
  // point of the sweep) and a mid-run partition that heals.
  net::ScenarioOptions realism = scenario_options;
  realism.delay = 0.01 * realism.block_interval;
  grid.push_back(net::make_scenarios("gossip-delay", realism)[2]);
  for (net::Scenario& s :
       net::make_scenarios("partition-attack", realism)) {
    grid.push_back(std::move(s));
  }

  std::printf("running %zu scenario points x %d seeds...\n\n", grid.size(),
              batch_options.runs_per_scenario);
  const auto aggregates = net::run_batch(grid, batch_options);

  support::Table table({"scenario", "variant", "attacker share", "ci95",
                        "stale", "eff. gamma", "predicted ERRev"});
  for (const auto& agg : aggregates) {
    table.add_row(
        {agg.name, agg.variant,
         support::format_double(agg.attacker_share.mean(), 4),
         support::format_double(agg.attacker_share.ci95_halfwidth(), 4),
         support::format_double(agg.stale_rate.mean(), 4),
         agg.effective_gamma.count() == 0
             ? "-"
             : support::format_double(agg.effective_gamma.mean(), 3),
         agg.predicted_errev == agg.predicted_errev  // not NaN
             ? support::format_double(agg.predicted_errev, 4)
             : "-"});
  }
  table.print(std::cout);
  std::printf(
      "\nReading the table: honest-uniform's attacker share is 0 by\n"
      "construction; the delay sweep shows effective gamma sliding as the\n"
      "honest block wins the propagation race more often; single-optimal\n"
      "at delay=0 should match the predicted ERRev within Monte-Carlo\n"
      "noise (tests/test_net_validation.cpp pins this to 1%%);\n"
      "gossip-delay pays the per-hop delay along the whole line of\n"
      "miners; partition-attack's stale rate jumps because the isolated\n"
      "side mines a doomed branch until the split heals.\n");
  return 0;
}
