// End-to-end demonstration: compute the optimal strategy, then *execute*
// it in the Monte-Carlo blockchain simulator and watch the empirical chain
// quality converge to the MDP's prediction.
//
//   ./simulate_attack [--p=0.3] [--gamma=0.5] [--d=2] [--f=2]
//                     [--steps=1000000] [--seed=42]
#include <cstdio>

#include "analysis/algorithm1.hpp"
#include "selfish/build.hpp"
#include "sim/strategies.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "2", "forks per public block");
  options.declare("steps", "1000000", "mining steps to simulate");
  options.declare("seed", "42", "simulation seed");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("simulate_attack").c_str());
    return 1;
  }

  const selfish::AttackParams params{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = 4,
  };

  std::printf("1) computing the optimal strategy for %s …\n",
              params.to_string().c_str());
  const auto model = selfish::build_model(params);
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = 1e-4;
  const auto result = analysis::analyze(model, analysis_options);
  std::printf("   predicted ERRev = %.5f (honest share would be %.5f)\n\n",
              result.errev_of_policy, params.p);

  std::printf("2) executing the strategy against concrete blocks …\n");
  sim::MdpPolicyStrategy strategy(model, result.policy);
  sim::SimulationOptions sim_options;
  sim_options.steps =
      static_cast<std::uint64_t>(options.get_int("steps"));
  sim_options.warmup_steps = sim_options.steps / 20;
  sim_options.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  const auto sim_result = sim::simulate(params, strategy, sim_options);

  std::printf("   empirical ERRev  = %.5f   (prediction %.5f, diff %+.5f)\n",
              sim_result.errev, result.errev_of_policy,
              sim_result.errev - result.errev_of_policy);
  std::printf("   chain quality    = %.5f\n",
              sim_result.revenue.chain_quality());
  for (const std::size_t window : {20u, 100u}) {
    const auto quality =
        chain::window_quality(sim_result.final_owners, window);
    std::printf("   (mu, l=%zu)-chain quality: worst window mu = %.3f, "
                "average %.3f over %zu windows\n",
                window, quality.worst, quality.average, quality.windows);
  }
  std::printf("\n   event log: %llu adversary blocks mined (%llu wasted at "
              "the fork cap),\n   %llu honest blocks, %llu releases "
              "(%llu overrides, races won/lost %llu/%llu)\n",
              static_cast<unsigned long long>(sim_result.adversary_blocks_mined),
              static_cast<unsigned long long>(sim_result.adversary_blocks_wasted),
              static_cast<unsigned long long>(sim_result.honest_blocks_mined),
              static_cast<unsigned long long>(sim_result.releases),
              static_cast<unsigned long long>(sim_result.overrides),
              static_cast<unsigned long long>(sim_result.races_won),
              static_cast<unsigned long long>(sim_result.races_lost));
  return 0;
}
