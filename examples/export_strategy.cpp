// Compute an optimal strategy once, save it to disk, reload it and replay
// it in the simulator — the workflow for shipping a precomputed attack
// (useful when the analysis itself is expensive, e.g. d=4, f=2).
//
//   ./export_strategy [--p=0.3] [--gamma=0.5] [--d=2] [--f=2]
//                     [--out=strategy.txt]
#include <cstdio>
#include <fstream>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "analysis/strategy_io.hpp"
#include "selfish/build.hpp"
#include "sim/strategies.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "2", "forks per public block");
  options.declare("out", "strategy.txt", "output strategy file");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("export_strategy").c_str());
    return 1;
  }

  const selfish::AttackParams params{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = 4,
  };
  const std::string path = options.get_string("out");

  const auto model = selfish::build_model(params);
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = 1e-4;
  const auto result = analysis::analyze(model, analysis_options);
  std::printf("computed strategy for %s: ERRev = %.5f\n",
              params.to_string().c_str(), result.errev_of_policy);

  {
    std::ofstream out(path);
    SM_REQUIRE(out.good(), "cannot open output file: ", path);
    analysis::save_strategy(model, result.policy, out);
  }
  std::printf("saved to %s\n", path.c_str());

  // Round trip: reload and verify it reproduces the same revenue.
  std::ifstream in(path);
  SM_REQUIRE(in.good(), "cannot reopen strategy file: ", path);
  const mdp::Policy loaded = analysis::load_strategy(model, in);
  const double errev_loaded = analysis::exact_errev(model, loaded);
  std::printf("reloaded: ERRev = %.5f (match: %s)\n", errev_loaded,
              errev_loaded == result.errev_of_policy ? "exact" : "NO");

  sim::MdpPolicyStrategy strategy(model, loaded);
  sim::SimulationOptions sim_options;
  sim_options.steps = 300'000;
  sim_options.warmup_steps = 15'000;
  const auto simulated = sim::simulate(params, strategy, sim_options);
  std::printf("replayed in the simulator: empirical ERRev = %.5f\n",
              simulated.errev);
  return 0;
}
