// Chain-quality report for a PoST-style deployment (the paper's motivating
// scenario, e.g. a Chia-like chain): given a broadcast assumption γ, how
// much chain quality survives as adversarial resource grows, and where
// does the (μ, ℓ)-chain-quality guarantee break relative to honest mining?
//
//   ./chain_quality_report [--gamma=0.5] [--d=2] [--f=2] [--pmax=0.4]
#include <cstdio>
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "2", "forks per public block");
  options.declare("pmax", "0.4", "largest adversarial resource to report");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("chain_quality_report").c_str());
    return 1;
  }
  const double gamma = options.get_double("gamma");
  const int d = options.get_int("d");
  const int f = options.get_int("f");

  std::printf("Chain quality under optimal selfish mining "
              "(gamma=%.2f, d=%d, f=%d, l=4)\n\n", gamma, d, f);

  const selfish::AttackParams base{.p = 0.0, .gamma = gamma, .d = d, .f = f, .l = 4};
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = 1e-3;
  const auto grid =
      analysis::linspace_grid(0.05, options.get_double("pmax"), 0.05);
  const auto sweep = analysis::sweep_p(base, grid, analysis_options);

  support::Table table({"p", "honest CQ", "single-tree CQ", "optimal CQ",
                        "quality loss", "fair?"});
  for (const auto& point : sweep.points) {
    const double honest_cq = 1.0 - baselines::honest_errev(point.p);
    const double tree_cq =
        1.0 - baselines::analyze_single_tree(
                  baselines::SingleTreeParams{.p = point.p, .gamma = gamma,
                                              .max_depth = 4, .max_width = 5})
                  .errev;
    const double attack_cq = 1.0 - point.errev_of_policy;
    table.add_row({support::format_double(point.p, 3),
                   support::format_double(honest_cq, 4),
                   support::format_double(tree_cq, 4),
                   support::format_double(attack_cq, 4),
                   support::format_double(honest_cq - attack_cq, 4),
                   point.errev_of_policy <= point.p + 1e-3 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\n\"fair?\" = does the adversary's block share stay at its "
              "resource share p\n(the fairness notion selfish mining "
              "attacks; see paper §1).\n");
  return 0;
}
