// Export the built MDP in Storm's explicit-state format (plus Graphviz
// DOT for small models), so the analysis can be independently replayed
// through the model checker the paper itself used:
//
//   ./export_model --d=2 --f=1 --beta=0.41 --prefix=/tmp/selfish
//   storm --explicit /tmp/selfish.tra /tmp/selfish.lab
//         --transrew /tmp/selfish.rew --prop 'R [LRA] max=? [ "init" ]'
//   (one command line; wrapped here for width)
//
// The long-run-average reward Storm reports is MP*_β; Algorithm 1's root
// in β reproduces our certified ERRev bound.
#include <cstdio>
#include <fstream>

#include "analysis/algorithm1.hpp"
#include "mdp/export.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "1", "forks per public block");
  options.declare("l", "4", "maximal fork length");
  options.declare("beta", "-1",
                  "beta for the reward export; -1 = use the computed "
                  "ERRev lower bound (the root of MP*_beta)");
  options.declare("prefix", "selfish_model", "output file prefix");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("export_model").c_str());
    return 1;
  }

  const selfish::AttackParams params{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = options.get_int("l"),
  };
  const auto model = selfish::build_model(params);
  std::printf("built %s: %u states, %zu transitions\n",
              params.to_string().c_str(), model.mdp.num_states(),
              model.mdp.num_transitions());

  double beta = options.get_double("beta");
  if (beta < 0.0) {
    analysis::AnalysisOptions analysis_options;
    analysis_options.epsilon = 1e-4;
    analysis_options.evaluate_exact_errev = false;
    beta = analysis::analyze(model, analysis_options).errev_lower_bound;
    std::printf("computed beta = ERRev lower bound = %.6f "
                "(MP*_beta should be ~0 there)\n", beta);
  }

  const std::string prefix = options.get_string("prefix");
  const auto write = [&](const char* suffix, auto&& writer) {
    const std::string path = prefix + suffix;
    std::ofstream out(path);
    SM_REQUIRE(out.good(), "cannot open ", path);
    writer(out);
    std::printf("wrote %s\n", path.c_str());
  };
  write(".tra", [&](std::ostream& o) { mdp::export_tra(model.mdp, o); });
  write(".lab", [&](std::ostream& o) { mdp::export_lab(model.mdp, o); });
  write(".rew",
        [&](std::ostream& o) { mdp::export_rew(model.mdp, beta, o); });

  if (model.mdp.num_states() <= 500) {
    write(".dot", [&](std::ostream& o) {
      mdp::DotOptions dot;
      dot.labeler = [&](mdp::StateId s) {
        return model.space.state_of(s).to_string(params);
      };
      mdp::export_dot(model.mdp, o, dot);
    });
    std::printf("render with: dot -Tsvg %s.dot -o %s.svg\n", prefix.c_str(),
                prefix.c_str());
  } else {
    std::printf("(model too large for DOT output; skipped)\n");
  }
  return 0;
}
