// Strategy explorer: print the ε-optimal selfish-mining strategy in
// human-readable form — which states withhold, which release, and how the
// decision differs from the classic Bitcoin attack.
//
//   ./strategy_explorer [--p=0.3] [--gamma=0.5] [--d=2] [--f=1]
//                       [--max-rows=40]
#include <algorithm>
#include <cstdio>

#include "analysis/algorithm1.hpp"
#include "analysis/policy_stats.hpp"
#include "mdp/markov_chain.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("p", "0.3", "adversary's relative resource");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth");
  options.declare("f", "1", "forks per public block");
  options.declare("max-rows", "40", "how many decision states to print");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("strategy_explorer").c_str());
    return 1;
  }

  const selfish::AttackParams params{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = 4,
  };
  const auto model = selfish::build_model(params);
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = 1e-4;
  const auto result = analysis::analyze(model, analysis_options);

  std::printf("Optimal strategy for %s — ERRev %.5f\n\n",
              params.to_string().c_str(), result.errev_of_policy);

  // Only show decision states the strategy actually visits (stationary
  // probability > 0 under the computed policy), most frequent first.
  const auto stationary =
      mdp::stationary_distribution(model.mdp, result.policy);
  std::vector<mdp::StateId> order(model.mdp.num_states());
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](mdp::StateId a, mdp::StateId b) {
    return stationary.distribution[a] > stationary.distribution[b];
  });

  std::printf("%-44s %-10s %-22s\n", "state (C, O, type)", "visit %",
              "chosen action");
  int rows = 0;
  const int max_rows = options.get_int("max-rows");
  for (const mdp::StateId s : order) {
    const auto state = model.space.state_of(s);
    if (state.type == selfish::StepType::kMining) continue;  // forced mine
    if (stationary.distribution[s] < 1e-9) continue;
    const auto action = model.action_of(result.policy[s]);
    std::printf("%-44s %-10.4f %-22s\n",
                state.to_string(params).c_str(),
                100.0 * stationary.distribution[s],
                action.to_string().c_str());
    if (++rows >= max_rows) break;
  }
  std::printf("\n(%d of the model's decision states shown; states the "
              "optimal play never\nreaches are omitted. 'mine' at a "
              "type=honest state means: accept the pending\nhonest block; "
              "a release at such a state races or overrides it.)\n", rows);

  const auto stats = analysis::compute_policy_stats(model, result.policy);
  std::printf("\nAggregate behavior:\n%s", stats.to_string().c_str());
  return 0;
}
