// Quickstart: build the selfish-mining MDP for one configuration, run the
// formal analysis (Algorithm 1) and print the certified revenue bound.
//
//   ./quickstart [--p=0.3] [--gamma=0.5] [--d=2] [--f=2] [--l=4]
//                [--epsilon=0.001]
#include <cstdio>

#include "analysis/algorithm1.hpp"
#include "baselines/honest.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  support::Options options;
  options.declare("p", "0.3", "adversary's relative resource in [0,1]");
  options.declare("gamma", "0.5", "tie-race switching probability");
  options.declare("d", "2", "attack depth (forks on the last d blocks)");
  options.declare("f", "2", "forks per public block");
  options.declare("l", "4", "maximal private fork length");
  options.declare("epsilon", "0.001", "precision of the revenue bound");
  try {
    options.parse(argc, argv);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 options.usage("quickstart").c_str());
    return 1;
  }

  const selfish::AttackParams params{
      .p = options.get_double("p"),
      .gamma = options.get_double("gamma"),
      .d = options.get_int("d"),
      .f = options.get_int("f"),
      .l = options.get_int("l"),
  };
  std::printf("Selfish-mining analysis for %s\n", params.to_string().c_str());

  // 1. Build the MDP of §3.2: reachable states × actions × transitions.
  const auto model = selfish::build_model(params);
  std::printf("model: %u states, %u actions, %zu transitions\n",
              model.mdp.num_states(), model.mdp.num_actions(),
              model.mdp.num_transitions());

  // 2. Run Algorithm 1: binary search over β, one mean-payoff solve per
  //    step, yielding an ε-tight lower bound on the optimal ERRev and a
  //    strategy achieving it.
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = options.get_double("epsilon");
  const auto result = analysis::analyze(model, analysis_options);

  std::printf("\ncertified bound:   ERRev* in [%.6f, %.6f]\n",
              result.beta_lo, result.beta_hi);
  std::printf("computed strategy: ERRev(sigma) = %.6f\n",
              result.errev_of_policy);
  std::printf("honest baseline:   ERRev = %.6f\n",
              baselines::honest_errev(params.p));
  std::printf("chain quality drops from %.4f to %.4f under the attack\n",
              1.0 - params.p, 1.0 - result.errev_of_policy);
  std::printf("(%d binary-search steps, %ld solver iterations, %.2f s)\n",
              result.search_iterations, result.solver_iterations,
              result.seconds);
  return 0;
}
