// Network-simulation benchmark: event throughput of the discrete-event
// core and wall-clock scaling of the thread-pool batch runner, plus the
// cross-validation table (zero-delay network vs MDP-predicted ERRev).
//
// Default: a quick grid (events/s + 1-vs-N-thread batch timing).
// --bench-full widens the grids and deepens the validation runs.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "net/batch.hpp"
#include "net/scenario.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(
      argc, argv, "bench_network also honors --threads");
  const bool full = options.get_bool("bench-full");
  const int threads = bench::thread_count(options);
  bench::print_header("Network simulation: event throughput & batch scaling",
                      full);

  // ---- single-run event throughput per scenario family ----------------
  {
    net::ScenarioOptions scenario_options;
    scenario_options.blocks = full ? 400'000 : 100'000;
    scenario_options.delay = 2.0;  // partitions/asymmetry need real delays
    support::Table table({"scenario", "events", "blocks", "events/s",
                          "attacker share", "Time (s)"});
    for (const char* family :
         {"honest-uniform", "single-sm1", "two-sm1", "star",
          "gossip-delay", "partition-attack", "asymmetric-star"}) {
      const auto grid = net::make_scenarios(family, scenario_options);
      // gossip-delay point 2 has a non-trivial per-hop delay (1% of the
      // interval); every other family benches its first point.
      const std::size_t point =
          std::string(family) == "gossip-delay" ? 2 : 0;
      const auto prepared = net::prepare_scenario(grid[point]);
      const support::Timer timer;
      const auto result = net::run_scenario(prepared, 1);
      const double seconds = timer.seconds();
      double attacker = 0.0;
      for (std::size_t m = 0; m < grid[point].miners.size(); ++m) {
        if (grid[point].miners[m].kind != net::MinerSpec::Kind::kHonest) {
          attacker += result.share(static_cast<net::NodeId>(m));
        }
      }
      table.add_row({family, std::to_string(result.events),
                     std::to_string(result.mine_events),
                     support::format_double(
                         static_cast<double>(result.events) / seconds, 0),
                     support::format_double(attacker, 4),
                     support::format_double(seconds, 3)});
      std::fflush(stdout);
    }
    table.print(std::cout);
  }

  // ---- transport cost: direct broadcast vs store-and-forward gossip ----
  {
    std::printf("\npropagation modes on one scenario (single-sm1, "
                "delay = 1%% of the interval):\n");
    support::Table table({"mode", "events", "deliveries", "relays",
                          "duplicates", "worst prop (s)", "events/s",
                          "Time (s)"});
    for (const auto mode : {net::PropagationMode::kDirect,
                            net::PropagationMode::kGossip}) {
      net::ScenarioOptions scenario_options;
      scenario_options.blocks = full ? 200'000 : 60'000;
      scenario_options.delay = 0.01 * scenario_options.block_interval;
      scenario_options.propagation = mode;
      const auto grid = net::make_scenarios("single-sm1", scenario_options);
      const auto prepared = net::prepare_scenario(grid[0]);
      const support::Timer timer;
      const auto result = net::run_scenario(prepared, 1);
      const double seconds = timer.seconds();
      table.add_row({net::to_string(mode), std::to_string(result.events),
                     std::to_string(result.deliveries),
                     std::to_string(result.relay_arrivals),
                     std::to_string(result.duplicate_arrivals),
                     support::format_double(result.worst_propagation, 1),
                     support::format_double(
                         static_cast<double>(result.events) / seconds, 0),
                     support::format_double(seconds, 3)});
      std::fflush(stdout);
    }
    table.print(std::cout);
  }

  // ---- batch runner scaling: 1 thread vs all ---------------------------
  {
    net::ScenarioOptions scenario_options;
    scenario_options.blocks = full ? 100'000 : 30'000;
    const auto grid = net::make_scenarios("hashrate-grid", scenario_options);
    net::BatchOptions batch_options;
    batch_options.runs_per_scenario = full ? 16 : 8;

    std::printf("\nbatch: %zu scenario points x %d seeds\n", grid.size(),
                batch_options.runs_per_scenario);
    support::Table table({"threads", "runs", "Time (s)", "speedup"});
    double serial_seconds = 0.0;
    std::vector<int> thread_grid{1};
    if (threads > 1) thread_grid.push_back(threads);
    for (const int n : thread_grid) {
      batch_options.threads = n;
      const support::Timer timer;
      const auto aggregates = net::run_batch(grid, batch_options);
      const double seconds = timer.seconds();
      if (n == 1) serial_seconds = seconds;
      table.add_row({std::to_string(n),
                     std::to_string(grid.size() *
                                    batch_options.runs_per_scenario),
                     support::format_double(seconds, 3),
                     support::format_double(
                         serial_seconds > 0 ? serial_seconds / seconds : 1.0,
                         2)});
      std::fflush(stdout);
    }
    table.print(std::cout);
  }

  // ---- cross-validation: zero-delay network vs the MDP analysis --------
  {
    std::printf("\ncross-validation (zero delay, kGammaShared):\n");
    support::Table table({"point", "predicted ERRev", "network ERRev",
                          "abs diff", "Time (s)"});
    const struct {
      double p, gamma;
    } points[] = {{0.30, 0.50}, {0.25, 0.00}, {0.30, 1.00}};
    for (const auto& point : points) {
      if (!full && point.gamma == 1.0) continue;
      net::ScenarioOptions scenario_options;
      scenario_options.p = point.p;
      scenario_options.gamma = point.gamma;
      scenario_options.blocks = full ? 400'000 : 120'000;
      const auto grid =
          net::make_scenarios("single-optimal", scenario_options);
      net::BatchOptions batch_options;
      batch_options.runs_per_scenario = full ? 8 : 4;
      batch_options.threads = threads;
      const support::Timer timer;
      const auto aggregates = net::run_batch(grid, batch_options);
      const auto& agg = aggregates[0];
      table.add_row(
          {agg.variant, support::format_double(agg.predicted_errev, 5),
           support::format_double(agg.attacker_share.mean(), 5),
           support::format_double(
               std::abs(agg.attacker_share.mean() - agg.predicted_errev), 5),
           support::format_double(timer.seconds(), 3)});
      std::fflush(stdout);
    }
    table.print(std::cout);
    std::printf("\nExpected: |predicted - network| within Monte-Carlo noise "
                "(~0.003 at the default scale).\n");
  }
  bench::write_metrics_snapshot(options);
  return 0;
}
