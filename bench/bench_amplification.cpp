// Reproduces the paper's §1 security-vs-predictability numbers: the e-fold
// resource amplification of NaS tree-growing in unpredictable chains, the
// resulting persistence threshold 1/(1+e) ≈ 0.269 (vs 1/2 for PoW and for
// predictable chains), and the PoW double-spend catch-up probabilities the
// thresholds are calibrated against.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/amplification.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Amplification & persistence thresholds (paper §1, Appendix A)", full);

  std::printf("amplification factor (computed):  %.9f (Euler's e)\n",
              analysis::amplification_factor());
  std::printf("NaS persistence threshold 1/(1+e): %.6f\n",
              analysis::nas_security_threshold());
  std::printf("PoW persistence threshold:         0.5\n\n");

  {
    support::Table table({"p", "tree depth rate e*p", "honest rate 1-p",
                          "tree overtakes?"});
    for (const double p :
         {0.10, 0.20, 0.25, analysis::nas_security_threshold(), 0.28, 0.30,
          0.40}) {
      table.add_row({support::format_double(p, 4),
                     support::format_double(analysis::tree_depth_growth_rate(p), 4),
                     support::format_double(1 - p, 4),
                     analysis::nas_tree_overtakes(p) ? "YES" : "no"});
    }
    table.print(std::cout);
  }

  std::printf("\nYule-tree frontier vs the e*lambda*t asymptote "
              "(lambda = 0.3):\n");
  {
    support::Table table({"t", "expected depth", "e*lambda*t", "ratio"});
    for (const double t : {25.0, 50.0, 100.0, 200.0, 400.0}) {
      const int depth = analysis::expected_tree_depth(0.3, t);
      const double asymptote = std::exp(1.0) * 0.3 * t;
      table.add_row({support::format_double(t, 4), std::to_string(depth),
                     support::format_double(asymptote, 5),
                     support::format_double(depth / asymptote, 4)});
    }
    table.print(std::cout);
  }

  std::printf("\nPoW double-spend catch-up from z blocks behind "
              "(closed form vs Monte Carlo):\n");
  {
    const std::uint64_t trials = full ? 400'000 : 100'000;
    support::Table table({"p", "z", "closed form", "Monte Carlo", "abs diff"});
    for (const double p : {0.1, 0.25, 0.4}) {
      for (const int z : {1, 3, 6}) {
        const double exact = analysis::pow_catchup_probability(p, z);
        const auto mc = analysis::mc_pow_catchup(p, z, trials, 42);
        table.add_row({support::format_double(p, 3), std::to_string(z),
                       support::format_double(exact, 5),
                       support::format_double(mc.probability, 5),
                       support::format_double(
                           std::fabs(exact - mc.probability), 3)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
