// Ablation: the broadcast-control parameter γ (paper takeaway 3).
//
// Fine γ sweep for the minimal attack (d=f=1) and a stronger one (d=2,f=2)
// at two resource levels, locating where withholding starts to pay off.
// The paper observes d=f=1 deviates from honest mining only for γ > 0.5
// and p > 0.25.
#include <cstdio>
#include <iostream>

#include "analysis/algorithm1.hpp"
#include "bench_common.hpp"
#include "selfish/build.hpp"
#include "support/csv.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header("Ablation: switching probability gamma", full);

  // One analysis at a time: the whole --threads budget goes to the kernel.
  const analysis::AnalysisOptions analysis_options =
      bench::analysis_options(options, /*solver_threads=*/true);

  const double step = full ? 0.05 : 0.1;
  support::CsvWriter csv(std::cout);
  csv.header({"gamma", "d1f1_p020", "d1f1_p030", "d2f2_p020", "d2f2_p030"});

  for (double gamma = 0.0; gamma <= 1.0 + 1e-9; gamma += step) {
    std::vector<double> cells{gamma};
    for (const auto& [d, f] : {std::pair{1, 1}, {2, 2}}) {
      for (const double p : {0.20, 0.30}) {
        selfish::AttackParams params{.p = p, .gamma = gamma, .d = d, .f = f, .l = 4};
        const auto model = selfish::build_model(params);
        const auto result = analysis::analyze(model, analysis_options);
        cells.push_back(result.errev_of_policy);
      }
    }
    // Columns were produced (d1,p.2)(d1,p.3)(d2,p.2)(d2,p.3) — already the
    // header order.
    csv.row_numeric(cells, 6);
    std::fflush(stdout);
  }

  std::printf("\nExpected shape: d1f1 columns stay at p until gamma "
              "crosses ~0.5 (p=0.3 column),\nwhile d2f2 exceeds p for every "
              "gamma. Honest reference: ERRev = p.\n");
  return 0;
}
