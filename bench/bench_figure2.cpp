// Reproduces Figure 2 (a–e): expected relative revenue as a function of
// the adversarial resource p, one panel per γ ∈ {0, 0.25, 0.5, 0.75, 1},
// with the honest and single-tree baselines alongside each attack
// configuration (d, f).
//
// The whole grid — every (γ, d, f) series × every p — is submitted to the
// experiment engine as one batch: each series is a warm-start chain (the
// p-points seed each other's value iteration, as always), and the chains
// fan out across --threads workers. With --cache-dir, reruns are served
// from the content-addressed store.
//
// Output: one CSV block per panel (easy to plot or diff), followed by the
// qualitative checks the paper highlights.
#include <cstdio>
#include <iostream>

#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Figure 2: ERRev vs adversarial resource p, one panel per gamma", full);

  const analysis::AnalysisOptions analysis_options =
      bench::analysis_options(options, /*solver_threads=*/false);

  // Figure 2 is dominated by solve count: |p grid| × |γ grid| × |configs|.
  // The default grid keeps configurations with d ≤ 2 everywhere and adds
  // (3,2) only at γ = 0.5; --bench-full runs everything, including (4,2).
  const auto all_configs = bench::attack_configs(full);
  const auto ps = bench::resource_grid(full);

  std::vector<bench::SweepSeries> series;
  for (const double gamma : bench::gamma_grid()) {
    for (const auto& [d, f] : all_configs) {
      if (!full && d >= 3 && gamma != 0.5) continue;  // keep defaults quick
      series.push_back(bench::SweepSeries{gamma, d, f});
    }
  }

  // One engine batch for the whole figure: jobs [series × p], planned into
  // one warm-start chain per series.
  const auto jobs = bench::sweep_grid_jobs(series, ps, analysis_options);
  engine::Engine engine(bench::engine_options(options));
  const support::Timer timer;
  const auto outcomes = engine.run(jobs);
  const double wall = timer.seconds();

  for (const double gamma : bench::gamma_grid()) {
    std::printf("--- panel gamma = %.2f ---\n", gamma);
    support::CsvWriter csv(std::cout);
    std::vector<std::string> header{"p", "honest", "single_tree"};
    std::vector<std::size_t> panel;  // indices into `series`
    for (std::size_t s = 0; s < series.size(); ++s) {
      if (series[s].gamma != gamma) continue;
      panel.push_back(s);
      header.push_back("ours_d" + std::to_string(series[s].d) + "_f" +
                       std::to_string(series[s].f));
    }
    csv.header(header);

    for (std::size_t row = 0; row < ps.size(); ++row) {
      std::vector<double> cells;
      cells.push_back(ps[row]);
      cells.push_back(baselines::honest_errev(ps[row]));
      cells.push_back(
          baselines::analyze_single_tree(
              baselines::SingleTreeParams{.p = ps[row], .gamma = gamma,
                                          .max_depth = 4, .max_width = 5})
              .errev);
      for (const std::size_t s : panel) {
        cells.push_back(
            outcomes[s * ps.size() + row].result.errev_of_policy);
      }
      csv.row_numeric(cells, 6);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::size_t cached = 0;
  double solve_seconds = 0.0;
  for (const auto& outcome : outcomes) {
    cached += outcome.cached ? 1 : 0;
    solve_seconds += outcome.result.seconds;
  }
  std::printf("engine: %zu grid points in %zu chains, %zu from cache; "
              "%.2f s solve time in %.2f s wall\n\n",
              outcomes.size(), series.size(), cached, solve_seconds, wall);

  std::printf(
      "Reading guide (paper takeaways): our attack lies above both\n"
      "baselines for every gamma except d=f=1; ERRev grows with d, f and\n"
      "gamma; d=f=1 only beats honest mining for gamma > 0.5, p > 0.25.\n");
  return 0;
}
