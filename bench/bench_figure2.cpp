// Reproduces Figure 2 (a–e): expected relative revenue as a function of
// the adversarial resource p, one panel per γ ∈ {0, 0.25, 0.5, 0.75, 1},
// with the honest and single-tree baselines alongside each attack
// configuration (d, f).
//
// Output: one CSV block per panel (easy to plot or diff), followed by the
// qualitative checks the paper highlights.
#include <cstdio>
#include <iostream>

#include "analysis/sweep.hpp"
#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Figure 2: ERRev vs adversarial resource p, one panel per gamma", full);

  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = options.get_double("epsilon");
  analysis_options.solver.method =
      mdp::parse_solver_method(options.get_string("solver"));

  // Figure 2 is dominated by solve count: |p grid| × |γ grid| × |configs|.
  // The default grid keeps configurations with d ≤ 2 everywhere and adds
  // (3,2) only at γ = 0.5; --bench-full runs everything, including (4,2).
  const auto all_configs = bench::attack_configs(full);
  const auto ps = bench::resource_grid(full);

  for (const double gamma : bench::gamma_grid()) {
    std::printf("--- panel gamma = %.2f ---\n", gamma);
    support::CsvWriter csv(std::cout);
    std::vector<std::string> header{"p", "honest", "single_tree"};
    std::vector<std::pair<int, int>> configs;
    for (const auto& [d, f] : all_configs) {
      if (!full && d >= 3 && gamma != 0.5) continue;  // keep defaults quick
      configs.emplace_back(d, f);
      header.push_back("ours_d" + std::to_string(d) + "_f" +
                       std::to_string(f));
    }
    csv.header(header);

    // Sweep every configuration over p (warm-started), then emit by rows.
    std::vector<analysis::SweepResult> sweeps;
    for (const auto& [d, f] : configs) {
      selfish::AttackParams base{.p = 0.0, .gamma = gamma, .d = d, .f = f, .l = 4};
      sweeps.push_back(analysis::sweep_p(base, ps, analysis_options));
    }

    for (std::size_t row = 0; row < ps.size(); ++row) {
      std::vector<double> cells;
      cells.push_back(ps[row]);
      cells.push_back(baselines::honest_errev(ps[row]));
      cells.push_back(
          baselines::analyze_single_tree(
              baselines::SingleTreeParams{.p = ps[row], .gamma = gamma,
                                          .max_depth = 4, .max_width = 5})
              .errev);
      for (const auto& sweep : sweeps) {
        cells.push_back(sweep.points[row].errev_of_policy);
      }
      csv.row_numeric(cells, 6);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf(
      "Reading guide (paper takeaways): our attack lies above both\n"
      "baselines for every gamma except d=f=1; ERRev grows with d, f and\n"
      "gamma; d=f=1 only beats honest mining for gamma > 0.5, p > 0.25.\n");
  return 0;
}
