// Fairness frontier: the smallest adversarial resource p at which the
// optimal selfish-mining attack beats honest mining, per attack
// configuration and switching probability. This condenses Figure 2's
// "where does each curve leave the diagonal" reading into one table and
// quantifies the paper's tolerance takeaways (e.g. the Eyal–Sirer PoW
// thresholds 1/3 (γ=0) and 1/4 (γ=0.5) vs the much lower multi-fork NaS
// frontiers).
#include <cstdio>
#include <iostream>

#include "analysis/threshold.hpp"
#include "baselines/eyal_sirer.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Fairness thresholds: smallest p where the attack pays (margin 0.005)",
      full);

  analysis::ThresholdOptions threshold_options;
  // One probe at a time: the whole --threads budget goes to the kernel.
  threshold_options.analysis =
      bench::analysis_options(options, /*solver_threads=*/true);
  threshold_options.p_tolerance = full ? 0.0025 : 0.01;

  support::Table table({"Attack", "gamma", "p threshold", "probes",
                        "Time (s)"});
  for (const auto& [d, f] : {std::pair{1, 1}, {2, 1}, {2, 2}}) {
    for (const double gamma : {0.0, 0.5, 1.0}) {
      selfish::AttackParams base{.p = 0.0, .gamma = gamma, .d = d, .f = f, .l = 4};
      const support::Timer timer;
      const auto result =
          analysis::fairness_threshold(base, threshold_options);
      table.add_row(
          {"ours d=" + std::to_string(d) + ",f=" + std::to_string(f),
           support::format_double(gamma, 3),
           result.always_fair
               ? "fair up to " + support::format_double(
                                     threshold_options.p_max, 3)
               : support::format_double(result.p_threshold, 4),
           std::to_string(result.probes.size()),
           support::format_double(timer.seconds(), 3)});
      std::fflush(stdout);
    }
  }
  // PoW reference rows (closed-form Eyal–Sirer thresholds).
  for (const double gamma : {0.0, 0.5, 1.0}) {
    table.add_row({"Eyal-Sirer PoW (closed form)",
                   support::format_double(gamma, 3),
                   support::format_double(
                       baselines::eyal_sirer_threshold(gamma), 4),
                   "-", "-"});
  }
  table.print(std::cout);
  std::printf(
      "\nReading guide: multi-fork NaS attacks are profitable at a small "
      "fraction of the\nresource the PoW attack needs; only the degenerate "
      "d=f=1 configuration retains a\nPoW-like frontier (and only for "
      "small gamma).\n");
  return 0;
}
