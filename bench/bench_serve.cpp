// Load generator for the analysis service: cold-cache vs warm-cache QPS
// and latency percentiles over a repeated-query workload.
//
// An in-process server is exercised over real loopback sockets (the full
// protocol + transport stack, exactly what external clients pay). The
// workload draws query kinds round-robin from a small set of distinct
// point/threshold/sweep/upper-bound requests and repeats it; the cold
// pass starts from an empty cache directory, the warm pass replays the
// identical request stream against the populated LRU/store. The
// acceptance target (ISSUE 5) is a >= 10x warm-vs-cold speedup on the
// repeated workload.
//
// Three further phases: a soak holds hundreds of concurrent pipelined
// connections against the bounded worker pool (connections >> threads,
// zero dropped or mismatched replies); an overload burst against a small
// --max-inflight cap verifies the server answers `busy` instead of
// queueing unboundedly; and a fleet phase runs 2 (4 with --bench-full)
// replicas on one shared cache directory, fires the identical cold
// workload at every replica at once, and requires the cross-process
// lease to hold fleet-wide executions at exactly one per distinct query
// before routing a warm pass through the rendezvous-hashing router.
//
//   bench_serve [--threads=0] [--bench-full]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fleet/router.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace {

namespace fs = std::filesystem;

struct Workload {
  std::vector<std::string> requests;  ///< One line each; repeated in order.
};

Workload make_workload(bool full) {
  Workload workload;
  // d=2, f=2 models: individual solves cost real time (hundreds of ms),
  // so the cold pass measures solving and the warm pass measures the
  // cache path — the ratio is the serving layer's value, not loopback
  // overhead. --bench-full deepens the attack to d=3.
  const int d = full ? 3 : 2;
  const int f = 2;
  // Distinct points across p: separate cache entries, one warm-start
  // family. The set stays small so the *repeat* factor dominates — the
  // regime an interactive dashboard or a class of users produces.
  for (const double p : {0.15, 0.25, 0.3, 0.35}) {
    workload.requests.push_back(
        "{\"kind\":\"point\",\"p\":" + std::to_string(p) +
        ",\"d\":" + std::to_string(d) + ",\"f\":" + std::to_string(f) +
        "}");
  }
  workload.requests.push_back(
      "{\"kind\":\"threshold\",\"d\":" + std::to_string(d) +
      ",\"f\":" + std::to_string(f) + "}");
  workload.requests.push_back(
      "{\"kind\":\"sweep\",\"d\":" + std::to_string(d) +
      ",\"f\":" + std::to_string(f) + ",\"pmax\":0.2}");
  workload.requests.push_back(
      "{\"kind\":\"upper-bound\",\"d\":" + std::to_string(d) +
      ",\"f\":" + std::to_string(f) + ",\"lmin\":2,\"lmax\":4}");
  return workload;
}

struct PassResult {
  double seconds = 0.0;
  std::vector<double> latencies;  ///< Per request, seconds.
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

/// Server-side view of one pass, read back through the protocol itself
/// (the `stats` admin kind) instead of parsing the server's stderr line.
struct ServerCounters {
  double requests = 0, lru = 0, store = 0, solves = 0, coalesced = 0;
};

double stat_number(const serve::Json& reply, const char* key) {
  const serve::Json* value = reply.find(key);
  SM_REQUIRE(value != nullptr, "stats reply lacks field ", key);
  return value->as_number();
}

ServerCounters server_counters(int port) {
  serve::Client client("127.0.0.1", port);
  const serve::Json reply =
      serve::Json::parse(client.request_raw("{\"kind\":\"stats\"}"));
  ServerCounters out;
  out.requests = stat_number(reply, "requests");
  out.lru = stat_number(reply, "lru_hits");
  out.store = stat_number(reply, "store_hits");
  out.solves = stat_number(reply, "solves");
  out.coalesced = stat_number(reply, "coalesced");
  return out;
}

ServerCounters delta(const ServerCounters& now, const ServerCounters& then) {
  return ServerCounters{now.requests - then.requests, now.lru - then.lru,
                        now.store - then.store, now.solves - then.solves,
                        now.coalesced - then.coalesced};
}

/// Merges the per-kind serve request-latency histograms (the server runs
/// in-process, so the global obs registry is directly readable) into one
/// distribution over the analysis kinds this workload sends. The handles
/// must match serve/protocol.cpp's registration exactly — same name,
/// help, buckets, labels — so this finds the live series instead of
/// creating empty ones.
obs::HistogramSnapshot latency_snapshot() {
  obs::HistogramSnapshot merged;
  for (const char* kind : {"point", "sweep", "threshold", "upper-bound"}) {
    const obs::HistogramSnapshot snap =
        obs::histogram("selfish_serve_request_seconds",
                       "End-to-end request latency (parse through render)",
                       obs::exponential_buckets(1e-5, 4.0, 14),
                       std::string("kind=\"") + kind + "\"")
            .snapshot();
    if (merged.counts.empty()) {
      merged = snap;
      continue;
    }
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      merged.counts[i] += snap.counts[i];
    }
    merged.sum += snap.sum;
    merged.count += snap.count;
  }
  return merged;
}

/// The histogram delta of one pass (counts are monotonic, so
/// pass = after - before, bucket by bucket).
obs::HistogramSnapshot delta(const obs::HistogramSnapshot& now,
                             const obs::HistogramSnapshot& then) {
  obs::HistogramSnapshot out = now;
  for (std::size_t i = 0;
       i < out.counts.size() && i < then.counts.size(); ++i) {
    out.counts[i] -= then.counts[i];
  }
  out.sum -= then.sum;
  out.count -= then.count;
  return out;
}

/// Fans `clients` connections at the server; each replays the workload
/// `repeat` times, interleaved round-robin so identical queries collide
/// in flight (exercising single-flight under load).
PassResult run_pass(int port, const Workload& workload, int clients,
                    int repeat) {
  PassResult result;
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(clients));
  const support::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client("127.0.0.1", port);
      auto& latencies = per_client[static_cast<std::size_t>(c)];
      for (int r = 0; r < repeat; ++r) {
        for (const std::string& request : workload.requests) {
          const support::Timer request_timer;
          const serve::Reply reply = client.request(request);
          SM_REQUIRE(reply.ok, "query failed: ", reply.error);
          latencies.push_back(request_timer.seconds());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.seconds = timer.seconds();
  for (const auto& latencies : per_client) {
    result.latencies.insert(result.latencies.end(), latencies.begin(),
                            latencies.end());
  }
  std::sort(result.latencies.begin(), result.latencies.end());
  return result;
}

/// Soak: `connections` concurrent sessions, each pipelining `depth` warm
/// requests, driven by a handful of threads (sessions are cheap; threads
/// are not — the same asymmetry the reactor exploits server-side). Every
/// reply must arrive, match its request by id, and carry a body byte-
/// identical to the reference answer for that request.
void run_soak(int port, const Workload& workload, int connections,
              int depth) {
  std::vector<std::string> expected;
  {
    serve::Client reference("127.0.0.1", port);
    for (const std::string& request : workload.requests) {
      const serve::Reply reply = reference.request(request);
      SM_REQUIRE(reply.ok, "reference query failed: ", reply.error);
      expected.push_back(reply.body);
    }
  }

  const int drivers =
      std::min(8, std::max(1, static_cast<int>(
                                  std::thread::hardware_concurrency())));
  std::atomic<int> replies{0};
  std::atomic<int> mismatched{0};
  const support::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(drivers));
  for (int driver = 0; driver < drivers; ++driver) {
    threads.emplace_back([&, driver] {
      // This driver's share of the sessions, all open at once.
      std::deque<serve::Client> sessions;
      std::vector<std::vector<std::pair<std::uint64_t, std::size_t>>> sent;
      for (int c = driver; c < connections; c += drivers) {
        sessions.emplace_back("127.0.0.1", port);
        sent.emplace_back();
        for (int r = 0; r < depth; ++r) {
          const std::size_t which = static_cast<std::size_t>(c * depth + r) %
                                    workload.requests.size();
          sent.back().emplace_back(
              sessions.back().send(workload.requests[which]), which);
        }
      }
      for (std::size_t s = 0; s < sessions.size(); ++s) {
        for (const auto& [id, which] : sent[s]) {
          const serve::Reply reply = sessions[s].await(id);
          SM_REQUIRE(reply.ok, "soak query failed: ", reply.error);
          if (reply.body != expected[which]) mismatched.fetch_add(1);
          replies.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.seconds();

  const int total = connections * depth;
  std::printf("soak  %d connections x %d pipelined  %d/%d replies  "
              "%d mismatched  %8.3f s  %9.1f qps\n",
              connections, depth, replies.load(), total, mismatched.load(),
              seconds, static_cast<double>(total) / seconds);
  SM_REQUIRE(replies.load() == total, "soak dropped replies: ",
             total - replies.load());
  SM_REQUIRE(mismatched.load() == 0,
             "soak saw mismatched bodies: ", mismatched.load());
}

/// Overload: a burst of distinct cold queries pipelined past a small
/// --max-inflight cap. The transport must answer the excess immediately
/// with `busy` (code "busy") instead of queueing it — and every line
/// still gets exactly one reply.
void run_overload(int threads, bool full) {
  const std::string cache_dir =
      (fs::temp_directory_path() / "bench_serve_overload").string();
  fs::remove_all(cache_dir);
  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.max_inflight = 4;
  server_options.service.cache_dir = cache_dir;
  server_options.service.threads = threads;
  serve::Server server(server_options);
  server.start();

  // Distinct cold points: no coalescing, each occupies an in-flight slot
  // for a real solve's duration, so a 16-deep burst against cap 4 must
  // overflow.
  const int d = full ? 3 : 2;
  std::vector<std::string> burst;
  for (int i = 0; i < 16; ++i) {
    burst.push_back("{\"kind\":\"point\",\"p\":" +
                    std::to_string(0.31 + 0.01 * i) +
                    ",\"d\":" + std::to_string(d) + ",\"f\":2}");
  }

  serve::Client client("127.0.0.1", server.port());
  std::vector<std::uint64_t> ids;
  for (const std::string& request : burst) ids.push_back(client.send(request));
  int busy = 0;
  int served = 0;
  for (const std::uint64_t id : ids) {
    const serve::Reply reply = client.await(id);
    if (reply.ok) {
      served += 1;
    } else {
      SM_REQUIRE(reply.code == "busy",
                 "overload reply failed without busy code: ", reply.error);
      busy += 1;
    }
  }
  std::printf("overload  %zu-deep burst @ max-inflight %d: %d served, "
              "%d busy refusals\n",
              burst.size(), server_options.max_inflight, served, busy);
  SM_REQUIRE(busy > 0, "overload burst produced no busy replies");
  SM_REQUIRE(served + busy == static_cast<int>(burst.size()),
             "overload dropped replies");
  server.stop();
  fs::remove_all(cache_dir);
}

/// Multi-replica phase: R servers share ONE cache directory, and the
/// identical cold workload is fired at *every* replica simultaneously —
/// deliberately bypassing the router so each distinct query is requested
/// R times at once, the worst case for duplicate work. The cross-process
/// lease (fleet/lease.hpp) must keep the fleet-wide execution count at
/// exactly one per distinct query; the difference R*Q - Q resolves as
/// waits and store hits. A warm pass then routes through fleet::Router.
void run_fleet(int threads, const Workload& workload, bool full) {
  const int replicas = full ? 4 : 2;
  const std::string cache_dir =
      (fs::temp_directory_path() / "bench_serve_fleet").string();
  fs::remove_all(cache_dir);

  std::vector<std::unique_ptr<serve::Server>> fleet;
  for (int r = 0; r < replicas; ++r) {
    serve::ServerOptions server_options;
    server_options.port = 0;
    server_options.service.cache_dir = cache_dir;
    server_options.service.threads = threads;
    fleet.push_back(std::make_unique<serve::Server>(server_options));
    fleet.back()->start();
  }

  // Cold: one driver per replica, same request stream, started together.
  const support::Timer cold_timer;
  std::vector<std::thread> drivers;
  drivers.reserve(fleet.size());
  for (const auto& server : fleet) {
    drivers.emplace_back([&workload, port = server->port()] {
      serve::Client client("127.0.0.1", port);
      for (const std::string& request : workload.requests) {
        const serve::Reply reply = client.request(request);
        SM_REQUIRE(reply.ok, "fleet cold query failed: ", reply.error);
      }
    });
  }
  for (std::thread& thread : drivers) thread.join();
  const double cold_seconds = cold_timer.seconds();

  // Fleet-wide accounting straight from each replica's stats reply.
  double executions = 0, fleet_waits = 0, takeovers = 0;
  double solves = 0, store_hits = 0, requests = 0;
  for (const auto& server : fleet) {
    serve::Client client("127.0.0.1", server->port());
    const serve::Json reply =
        serve::Json::parse(client.request_raw("{\"kind\":\"stats\"}"));
    const serve::Json* block = reply.find("fleet");
    SM_REQUIRE(block != nullptr, "stats reply lacks the fleet block");
    executions += stat_number(*block, "executions");
    fleet_waits += stat_number(*block, "waits");
    takeovers += stat_number(*block, "takeovers");
    solves += stat_number(reply, "solves");
    store_hits += stat_number(reply, "store_hits");
    requests += stat_number(reply, "requests");
  }
  const double distinct = static_cast<double>(workload.requests.size());
  const double duplicates = solves - distinct;

  std::printf("\nfleet %d replicas, one shared store: %zu distinct queries "
              "x %d replicas cold in %.3f s\n",
              replicas, workload.requests.size(), replicas, cold_seconds);
  std::printf("      fleet-wide executions %.0f (target %.0f), "
              "%.0f duplicate solves, %.0f lease waits, %.0f takeovers, "
              "cold hit rate %5.1f%%\n",
              executions, distinct, duplicates, fleet_waits, takeovers,
              100.0 * store_hits / requests);
  SM_REQUIRE(executions == distinct && duplicates == 0,
             "cross-process single-flight leaked duplicate work: ",
             executions, " executions / ", solves, " solves for ", distinct,
             " distinct queries");

  // Warm: the full stream again, but routed — each query lands on its
  // rendezvous owner. Bodies must match the replies the cold pass saw.
  std::string csv;
  for (const auto& server : fleet) {
    if (!csv.empty()) csv += ',';
    csv += "127.0.0.1:" + std::to_string(server->port());
  }
  fleet::Router router(fleet::parse_endpoints(csv));
  std::vector<std::string> expected;
  {
    serve::Client reference("127.0.0.1", fleet.front()->port());
    for (const std::string& request : workload.requests) {
      expected.push_back(reference.request(request).body);
    }
  }
  const int repeat = full ? 16 : 8;
  const support::Timer warm_timer;
  for (int r = 0; r < repeat; ++r) {
    for (std::size_t i = 0; i < workload.requests.size(); ++i) {
      const serve::Reply reply = router.request(workload.requests[i]);
      SM_REQUIRE(reply.ok, "fleet warm query failed: ", reply.error);
      SM_REQUIRE(reply.body == expected[i],
                 "routed reply body diverged from the direct reply");
    }
  }
  const double warm_seconds = warm_timer.seconds();
  const double warm_requests =
      static_cast<double>(repeat) * static_cast<double>(
                                        workload.requests.size());
  std::printf("      warm via router: %.0f requests  %8.3f s  %9.1f qps  "
              "%llu failovers\n",
              warm_requests, warm_seconds, warm_requests / warm_seconds,
              static_cast<unsigned long long>(router.failovers()));

  for (const auto& server : fleet) server->stop();
  fs::remove_all(cache_dir);
}

/// Renders a quantile in milliseconds, or "-" when the histogram was
/// empty (quantile() returns NaN then).
std::string quantile_ms(const obs::HistogramSnapshot& hist, double q) {
  const double value = hist.quantile(q);
  if (std::isnan(value)) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%8.3f", value * 1e3);
  return buffer;
}

void report(const char* label, const PassResult& pass,
            const ServerCounters& server,
            const obs::HistogramSnapshot& hist) {
  const double n = static_cast<double>(pass.latencies.size());
  std::printf("%-5s %7zu requests  %8.3f s  %9.1f qps  "
              "client p50 %8.3f ms  p99 %8.3f ms\n",
              label, pass.latencies.size(), pass.seconds, n / pass.seconds,
              percentile(pass.latencies, 0.50) * 1e3,
              percentile(pass.latencies, 0.99) * 1e3);
  // Server-side latency (parse through render, no socket round-trip)
  // straight from the serve histograms.
  if (hist.count > 0) {
    std::printf("      server p50 %s ms  p90 %s ms  p99 %s ms  "
                "(%llu observations)\n",
                quantile_ms(hist, 0.50).c_str(),
                quantile_ms(hist, 0.90).c_str(),
                quantile_ms(hist, 0.99).c_str(),
                static_cast<unsigned long long>(hist.count));
  } else {
    std::printf("      server histograms empty (obs runtime-disabled or "
                "compiled out)\n");
  }
  if (server.requests > 0) {
    const double hits = server.lru + server.store + server.coalesced;
    std::printf("      cache hit rate %5.1f%%  (%.0f lru, %.0f store, "
                "%.0f coalesced, %.0f solved of %.0f requests)\n",
                100.0 * hits / server.requests, server.lru, server.store,
                server.coalesced, server.solves, server.requests);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::standard_options(
      argc, argv,
      "bench_serve: cold vs warm QPS/latency of the analysis service\n");
  const bool full = options.get_bool("bench-full");
  const int clients = 4;
  const int repeat = full ? 16 : 8;

  bench::print_header("analysis service load (cold vs warm cache)", full);

  const std::string cache_dir =
      (fs::temp_directory_path() / "bench_serve_cache").string();
  fs::remove_all(cache_dir);

  serve::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  // Ample for the soak's pipelined burst; still bounded. The overload
  // phase below exercises a deliberately tight cap.
  server_options.max_inflight = 4096;
  server_options.max_inflight_per_connection = 64;
  server_options.service.cache_dir = cache_dir;
  server_options.service.threads = bench::thread_count(options);
  serve::Server server(server_options);
  server.start();

  const Workload workload = make_workload(full);
  std::printf("workload: %zu distinct queries x %d repeats x %d clients "
              "(port %d)\n\n",
              workload.requests.size(), repeat, clients, server.port());

  // Per-phase server-side attribution: counters via the stats reply,
  // latency via the serve histograms — both deltas across the pass.
  const ServerCounters counters0 = server_counters(server.port());
  const obs::HistogramSnapshot hist0 = latency_snapshot();

  // Cold: empty store — first arrival of each distinct query solves, its
  // repeats coalesce or hit the LRU behind it.
  const PassResult cold = run_pass(server.port(), workload, clients, repeat);
  const ServerCounters counters1 = server_counters(server.port());
  const obs::HistogramSnapshot hist1 = latency_snapshot();
  report("cold", cold, delta(counters1, counters0), delta(hist1, hist0));

  // Warm: identical stream, fully resident.
  const PassResult warm = run_pass(server.port(), workload, clients, repeat);
  const ServerCounters counters2 = server_counters(server.port());
  const obs::HistogramSnapshot hist2 = latency_snapshot();
  report("warm", warm, delta(counters2, counters1), delta(hist2, hist1));

  std::printf("\nwarm-vs-cold speedup: %.1fx (wall) / %.1fx (p50)\n",
              cold.seconds / warm.seconds,
              percentile(cold.latencies, 0.50) /
                  std::max(1e-9, percentile(warm.latencies, 0.50)));

  // Transport soak: many warm sessions against the bounded worker pool
  // (connection count an order of magnitude past the thread count).
  const int soak_connections = full ? 512 : 256;
  std::printf("\nsoak: %d connections on %d protocol workers\n",
              soak_connections,
              support::resolve_thread_count(server_options.workers));
  run_soak(server.port(), workload, soak_connections, /*depth=*/4);

  run_overload(bench::thread_count(options), full);

  run_fleet(bench::thread_count(options), workload, full);

  bench::write_metrics_snapshot(options);
  server.stop();
  fs::remove_all(cache_dir);
  return 0;
}
