// Reproduces Table 1: analysis runtimes per attack configuration at
// γ = 0.5, l = 4, plus the single-tree baseline (f = 5).
//
// The paper reports Storm runtimes (3.8 s … 77761.7 s); absolute numbers
// differ on a native solver, but the shape — roughly an order of magnitude
// per depth increment, driven by the state-space blow-up — must hold.
#include <cstdio>
#include <iostream>

#include "analysis/algorithm1.hpp"
#include "baselines/single_tree.hpp"
#include "bench_common.hpp"
#include "selfish/build.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header("Table 1: analysis runtimes (gamma=0.5, p=0.3, l=4)",
                      full);

  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = options.get_double("epsilon");
  analysis_options.solver.method =
      mdp::parse_solver_method(options.get_string("solver"));

  support::Table table(
      {"Attack Type", "Parameters", "States", "Time (s)", "ERRev"});

  for (const auto& [d, f] : bench::attack_configs(full)) {
    selfish::AttackParams params{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
    const support::Timer timer;
    const auto model = selfish::build_model(params);
    const auto result = analysis::analyze(model, analysis_options);
    const double seconds = timer.seconds();
    table.add_row({"Our Attack",
                   "d=" + std::to_string(d) + ", f=" + std::to_string(f),
                   std::to_string(model.mdp.num_states()),
                   support::format_double(seconds, 4),
                   support::format_double(result.errev_of_policy, 5)});
    std::fflush(stdout);
  }

  {
    const baselines::SingleTreeParams params{
        .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
    const support::Timer timer;
    const auto result = baselines::analyze_single_tree(params);
    table.add_row({"Single-tree Selfish Mining", "f=5",
                   std::to_string(result.states_evaluated),
                   support::format_double(timer.seconds(), 4),
                   support::format_double(result.errev, 5)});
  }

  table.print(std::cout);
  return 0;
}
