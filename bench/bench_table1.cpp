// Reproduces Table 1: analysis runtimes per attack configuration at
// γ = 0.5, l = 4, plus the single-tree baseline (f = 5).
//
// The paper reports Storm runtimes (3.8 s … 77761.7 s); absolute numbers
// differ on a native solver, but the shape — roughly an order of magnitude
// per depth increment, driven by the state-space blow-up — must hold.
// Configurations run through the experiment engine (--threads fans them
// out, --cache-dir serves reruns from the store).
#include <cstdio>
#include <iostream>

#include "baselines/single_tree.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header("Table 1: analysis runtimes (gamma=0.5, p=0.3, l=4)",
                      full);

  const analysis::AnalysisOptions analysis_options =
      bench::analysis_options(options, /*solver_threads=*/false);

  support::Table table(
      {"Attack Type", "Parameters", "States", "Time (s)", "ERRev"});

  // All configurations go through the engine as one batch: each is its
  // own single-point chain, so --threads runs them concurrently, and with
  // --cache-dir reruns replay the stored results (the reported Time (s)
  // stays the original solve time either way).
  const auto configs = bench::attack_configs(full);
  std::vector<engine::AnalysisJob> jobs;
  for (const auto& [d, f] : configs) {
    engine::AnalysisJob job;
    job.params =
        selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
    job.options = analysis_options;
    jobs.push_back(job);
  }
  engine::Engine engine(bench::engine_options(options));
  const auto outcomes = engine.run(jobs);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& result = outcomes[i].result;
    table.add_row({"Our Attack",
                   "d=" + std::to_string(configs[i].first) +
                       ", f=" + std::to_string(configs[i].second),
                   std::to_string(result.num_states),
                   support::format_double(result.seconds, 4),
                   support::format_double(result.errev_of_policy, 5)});
  }

  {
    const baselines::SingleTreeParams params{
        .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
    const support::Timer timer;
    const auto result = baselines::analyze_single_tree(params);
    table.add_row({"Single-tree Selfish Mining", "f=5",
                   std::to_string(result.states_evaluated),
                   support::format_double(timer.seconds(), 4),
                   support::format_double(result.errev, 5)});
  }

  table.print(std::cout);
  return 0;
}
