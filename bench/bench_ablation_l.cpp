// Ablation: the maximal fork length l (paper §3.4, limitation 1).
//
// The paper bounds private fork lengths to keep the MDP finite and argues
// the truncation does not significantly affect ERRev because very long
// forks are rare. This bench quantifies that claim: ERRev as a function of
// l for fixed (p, γ, d, f) should saturate quickly.
#include <cstdio>
#include <iostream>

#include "analysis/algorithm1.hpp"
#include "analysis/upper_bound.hpp"
#include "bench_common.hpp"
#include "selfish/build.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Ablation: maximal fork length l (p=0.3, gamma=0.5, d=2, f=2)", full);

  // One analysis at a time: the whole --threads budget goes to the kernel.
  const analysis::AnalysisOptions analysis_options =
      bench::analysis_options(options, /*solver_threads=*/true);

  support::Table table({"l", "States", "ERRev", "Delta vs previous", "Time (s)"});
  double previous = 0.0;
  const int max_l = full ? 8 : 6;
  for (int l = 1; l <= max_l; ++l) {
    selfish::AttackParams params{.p = 0.3, .gamma = 0.5, .d = 2, .f = 2, .l = l};
    const support::Timer timer;
    const auto model = selfish::build_model(params);
    const auto result = analysis::analyze(model, analysis_options);
    const double delta = (l == 1) ? 0.0 : result.errev_of_policy - previous;
    table.add_row({std::to_string(l), std::to_string(model.mdp.num_states()),
                   support::format_double(result.errev_of_policy, 6),
                   l == 1 ? "-" : support::format_double(delta, 3),
                   support::format_double(timer.seconds(), 3)});
    previous = result.errev_of_policy;
  }
  table.print(std::cout);

  // Bounds (paper future work #1): certified within-model bracket at the
  // deepest cap, plus the heuristic geometric-tail estimate of the l→∞
  // limit (see analysis/upper_bound.hpp).
  analysis::UpperBoundOptions ub_options;
  ub_options.l_min = 2;
  ub_options.l_max = max_l;
  ub_options.analysis = analysis_options;
  const selfish::AttackParams base{.p = 0.3, .gamma = 0.5, .d = 2, .f = 2, .l = 4};
  const auto bounds = analysis::bound_errev_in_l(base, ub_options);
  std::printf("\ncertified ERRev*(l=%d) <= %.6f; extrapolated l->inf limit "
              "~= %.6f (tail %.2e, %s)\n",
              max_l, bounds.certified_at_lmax, bounds.extrapolated_limit,
              bounds.extrapolation_tail,
              bounds.geometric ? "geometric fit" : "fallback");
  std::printf("\nExpected shape: ERRev increases in l but the increments "
              "shrink geometrically —\nthe paper's finite-fork truncation "
              "costs little revenue.\n");
  return 0;
}
