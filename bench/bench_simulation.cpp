// Cross-validation bench: the Monte-Carlo simulator executes the strategy
// computed by Algorithm 1 against concrete blocks, and the empirical chain
// quality is compared with the MDP's stationary prediction. This is the
// end-to-end evidence that the formal model captures the protocol.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/algorithm1.hpp"
#include "bench_common.hpp"
#include "selfish/build.hpp"
#include "sim/strategies.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Simulation cross-validation: MDP-predicted vs empirical ERRev", full);

  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = options.get_double("epsilon");
  analysis_options.solver.method =
      mdp::parse_solver_method(options.get_string("solver"));

  sim::SimulationOptions sim_options;
  sim_options.steps = full ? 4'000'000 : 1'000'000;
  sim_options.warmup_steps = sim_options.steps / 20;

  support::Table table({"Config", "p", "gamma", "MDP ERRev", "Sim ERRev",
                        "abs diff", "races w/l", "Time (s)"});

  const struct {
    int d, f;
    double p, gamma;
  } cases[] = {
      {1, 1, 0.30, 1.00}, {2, 1, 0.30, 0.50}, {2, 2, 0.25, 0.25},
      {2, 2, 0.30, 0.75}, {3, 2, 0.30, 0.50},
  };
  for (const auto& c : cases) {
    if (!full && c.d >= 3) continue;
    selfish::AttackParams params{.p = c.p, .gamma = c.gamma, .d = c.d,
                                 .f = c.f, .l = 4};
    const support::Timer timer;
    const auto model = selfish::build_model(params);
    const auto result = analysis::analyze(model, analysis_options);
    sim::MdpPolicyStrategy strategy(model, result.policy);
    const auto simulated = sim::simulate(params, strategy, sim_options);
    table.add_row(
        {"d=" + std::to_string(c.d) + ",f=" + std::to_string(c.f),
         support::format_double(c.p, 3), support::format_double(c.gamma, 3),
         support::format_double(result.errev_of_policy, 5),
         support::format_double(simulated.errev, 5),
         support::format_double(
             std::fabs(simulated.errev - result.errev_of_policy), 3),
         std::to_string(simulated.races_won) + "/" +
             std::to_string(simulated.races_lost),
         support::format_double(timer.seconds(), 3)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf("\nExpected: |MDP − Sim| within Monte-Carlo noise (~0.005 at "
              "1M steps).\n");
  return 0;
}
