#include "bench_common.hpp"

#include <cstdio>
#include <fstream>

#include "analysis/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace bench {

std::vector<std::pair<int, int>> attack_configs(bool full) {
  std::vector<std::pair<int, int>> configs{{1, 1}, {2, 1}, {2, 2}, {3, 2}};
  if (full) configs.emplace_back(4, 2);
  return configs;
}

std::vector<double> gamma_grid() { return {0.0, 0.25, 0.5, 0.75, 1.0}; }

std::vector<double> resource_grid(bool full) {
  return analysis::linspace_grid(0.0, 0.3, full ? 0.01 : 0.05);
}

support::Options standard_options(int argc, const char* const* argv,
                                  const std::string& extra_help) {
  support::Options options;
  options.declare("bench-full", "false",
                  "run the paper's full grids (incl. d=4,f=2); also via "
                  "SELFISH_BENCH_FULL=1" +
                      (extra_help.empty() ? "" : ". " + extra_help));
  options.declare("epsilon", "0.001",
                  "binary-search precision of Algorithm 1");
  options.declare("solver", "vi",
                  "mean-payoff solver: vi | gs | pi | dense");
  options.declare("threads", "0",
                  "worker threads for parallel harness stages (0 = all "
                  "cores); also via SELFISH_THREADS");
  options.declare("cache-dir", "",
                  "experiment-engine result store shared by the analysis "
                  "grids (reruns are served from cache); also via "
                  "SELFISH_CACHE_DIR");
  options.declare("store-values", "true",
                  "persist warm-start value vectors in the result store "
                  "(turn off to shrink caches for huge models)");
  options.declare("metrics-out", "",
                  "write a Prometheus text snapshot of the obs registry "
                  "to this file at harness exit; also via "
                  "SELFISH_METRICS_OUT");
  options.declare("trace-out", "",
                  "write obs trace spans (NDJSON, one per span) to this "
                  "file; empty = tracing off");
  options.parse(argc, argv);
  const std::string trace = options.get_string("trace-out");
  if (!trace.empty()) obs::open_trace(trace);
  return options;
}

void write_metrics_snapshot(const support::Options& options) {
  const std::string path = options.get_string("metrics-out");
  if (path.empty()) return;
  std::ofstream out(path);
  SM_REQUIRE(out.good(), "cannot open --metrics-out file ", path);
  out << obs::prometheus_text();
}

engine::EngineOptions engine_options(const support::Options& options) {
  engine::EngineOptions engine_options;
  engine_options.cache_dir = options.get_string("cache-dir");
  engine_options.threads = options.get_int("threads");
  engine_options.store_values = options.get_bool("store-values");
  return engine_options;
}

analysis::AnalysisOptions analysis_options(const support::Options& options,
                                           bool solver_threads) {
  analysis::AnalysisOptions out;
  out.epsilon = options.get_double("epsilon");
  out.solver.method = mdp::parse_solver_method(options.get_string("solver"));
  // Engine-driven grids keep per-solve threads at 1 (the chains already
  // fan out across --threads); one-solve-at-a-time drivers hand the whole
  // budget to the kernel's Bellman sweeps instead.
  if (solver_threads) out.solver.threads = options.get_int("threads");
  return out;
}

std::vector<engine::AnalysisJob> sweep_grid_jobs(
    const std::vector<SweepSeries>& series, const std::vector<double>& ps,
    const analysis::AnalysisOptions& options) {
  std::vector<engine::AnalysisJob> jobs;
  jobs.reserve(series.size() * ps.size());
  for (const SweepSeries& s : series) {
    for (const double p : ps) {
      engine::AnalysisJob job;
      job.params = selfish::AttackParams{
          .p = p, .gamma = s.gamma, .d = s.d, .f = s.f, .l = 4};
      job.options = options;
      jobs.push_back(job);
    }
  }
  return jobs;
}

int thread_count(const support::Options& options) {
  return support::resolve_thread_count(options.get_int("threads"));
}

void print_header(const std::string& title, bool full) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("scale: %s (use --bench-full or SELFISH_BENCH_FULL=1 for the "
              "paper's full grid)\n\n",
              full ? "FULL (paper grid)" : "default (reduced grid)");
}

}  // namespace bench
