// Measures what the experiment engine buys over the pre-engine sequential
// sweep path on a Figure-2-style grid:
//
//   sequential  — analysis::sweep_p_sequential per series, one after the
//                 other on one thread (the old driver).
//   engine cold — the same grid as one engine batch: warm-start chains in
//                 parallel on --threads workers, store populated.
//   engine warm — the batch again against the populated store: every
//                 point replayed from cache.
//
// The cold speedup is the parallel warm-started scheduling win; the warm
// speedup is the cache win (bounded only by IO). The engine results are
// checked bit-identical to the sequential ones before any number is
// reported — the speedup is for the *same* answers.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "Sweep engine: warm-started + cached grid evaluation vs the "
      "sequential driver", full);

  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = options.get_double("epsilon");
  analysis_options.solver.method =
      mdp::parse_solver_method(options.get_string("solver"));

  // A multi-series grid so chain fan-out has something to fan: three
  // gammas x the (d, f) configurations (d <= 2 by default).
  const auto ps = bench::resource_grid(full);
  std::vector<bench::SweepSeries> series;
  for (const double gamma : {0.0, 0.5, 1.0}) {
    for (const auto& [d, f] : bench::attack_configs(full)) {
      if (!full && d >= 3) continue;
      series.push_back(bench::SweepSeries{gamma, d, f});
    }
  }
  const int threads = bench::thread_count(options);
  std::printf("grid: %zu series x %zu p-points, %d threads\n\n",
              series.size(), ps.size(), threads);

  // --- sequential reference (the pre-engine path).
  std::vector<analysis::SweepResult> reference;
  const support::Timer sequential_timer;
  for (const bench::SweepSeries& s : series) {
    const selfish::AttackParams base{
        .p = 0.0, .gamma = s.gamma, .d = s.d, .f = s.f, .l = 4};
    reference.push_back(
        analysis::sweep_p_sequential(base, ps, analysis_options));
  }
  const double sequential_seconds = sequential_timer.seconds();

  // --- engine, cold store.
  std::string cache_dir = options.get_string("cache-dir");
  const bool temp_cache = cache_dir.empty();
  if (temp_cache) {
    cache_dir = (std::filesystem::temp_directory_path() /
                 "selfish-bench-sweep-cache")
                    .string();
    std::filesystem::remove_all(cache_dir);
  }
  engine::EngineOptions engine_options;
  engine_options.cache_dir = cache_dir;
  engine_options.threads = threads;

  // Per-series sweep_p calls would fan chains out only within one series;
  // submitting all series as one batch buys cross-series parallelism.
  const auto jobs = bench::sweep_grid_jobs(series, ps, analysis_options);

  const support::Timer cold_timer;
  std::vector<engine::JobOutcome> cold;
  {
    engine::Engine engine(engine_options);
    cold = engine.run(jobs);
  }
  const double cold_seconds = cold_timer.seconds();

  // --- engine, warm store (pure replay).
  const support::Timer warm_timer;
  std::vector<engine::JobOutcome> warm;
  std::size_t warm_hits = 0;
  {
    engine::Engine engine(engine_options);
    warm = engine.run(jobs);
    for (const auto& outcome : warm) warm_hits += outcome.cached ? 1 : 0;
  }
  const double warm_seconds = warm_timer.seconds();

  // --- the speedup only counts if the answers are the same ones.
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const auto& expect = reference[s].points[i];
      const auto& got_cold = cold[s * ps.size() + i].result;
      const auto& got_warm = warm[s * ps.size() + i].result;
      SM_ENSURE(got_cold.errev_of_policy == expect.errev_of_policy &&
                    got_warm.errev_of_policy == expect.errev_of_policy &&
                    got_cold.errev_lower_bound == expect.errev &&
                    got_warm.errev_lower_bound == expect.errev,
                "engine sweep diverged from the sequential reference at "
                "series ", s, ", p=", ps[i]);
    }
  }
  std::printf("sequential (pre-engine):  %8.3f s\n", sequential_seconds);
  std::printf("engine cold (%2d threads): %8.3f s   -> %.2fx speedup\n",
              threads, cold_seconds, sequential_seconds / cold_seconds);
  std::printf("engine warm (cache hits): %8.3f s   -> %.2fx speedup "
              "(%zu/%zu points replayed)\n",
              warm_seconds, sequential_seconds / warm_seconds, warm_hits,
              warm.size());
  std::printf("\nresults verified bit-identical across all three paths\n");

  bench::write_metrics_snapshot(options);
  if (temp_cache) std::filesystem::remove_all(cache_dir);
  return 0;
}
