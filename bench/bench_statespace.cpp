// Ablation: state-space construction — reachable vs raw §3.2 state counts
// (the reduction bought by BFS reachability + canonical fork ordering) and
// model-build throughput.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "selfish/build.hpp"
#include "selfish/model_stats.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  const auto options = bench::standard_options(argc, argv);
  const bool full = options.get_bool("bench-full");
  bench::print_header(
      "State space: reachable (canonical) vs raw size, build throughput",
      full);

  support::Table table({"d", "f", "l", "Raw states", "Reachable", "Reduction",
                        "Transitions", "Build (s)", "MB"});
  for (const auto& [d, f] : bench::attack_configs(full)) {
    selfish::AttackParams params{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
    const support::Timer timer;
    const auto model = selfish::build_model(params);
    const double seconds = timer.seconds();
    const auto raw = selfish::raw_state_count(params);
    table.add_row(
        {std::to_string(d), std::to_string(f), "4", std::to_string(raw),
         std::to_string(model.mdp.num_states()),
         support::format_double(
             static_cast<double>(raw) / model.mdp.num_states(), 3) + "x",
         std::to_string(model.mdp.num_transitions()),
         support::format_double(seconds, 3),
         support::format_double(model.mdp.memory_bytes() / 1048576.0, 1)});
    std::fflush(stdout);
  }
  table.print(std::cout);

  std::printf("\nComposition of the largest default configuration:\n");
  {
    const auto& [d, f] = bench::attack_configs(full).back();
    const auto model = selfish::build_model(
        selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4});
    std::printf("%s", selfish::compute_model_stats(model).to_string().c_str());
  }
  std::printf("\nCanonical fork ordering alone shrinks the raw space by up "
              "to (f!)^d; BFS\nreachability removes configurations no play "
              "can produce.\n");
  return 0;
}
