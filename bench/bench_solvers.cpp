// Solver micro-benchmarks (google-benchmark): model construction, one
// mean-payoff solve per method, full Algorithm 1, the single-tree
// baseline, and the stationary evaluation — the building blocks whose
// costs compose into Table 1.
#include <benchmark/benchmark.h>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "baselines/single_tree.hpp"
#include "mdp/dense_solver.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/value_iteration.hpp"
#include "selfish/build.hpp"

namespace {

selfish::AttackParams params_for(int d, int f) {
  return selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
}

void BM_BuildModel(benchmark::State& state) {
  const auto params = params_for(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto model = selfish::build_model(params);
    benchmark::DoNotOptimize(model.mdp.num_states());
  }
  state.counters["states"] = static_cast<double>(
      selfish::build_model(params).mdp.num_states());
}
BENCHMARK(BM_BuildModel)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_ValueIteration)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_GaussSeidel(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result =
        mdp::gauss_seidel_value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_GaussSeidel)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_PolicyIteration(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_PolicyIteration)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DensePolicyIteration(benchmark::State& state) {
  // Dense evaluation is O(n³): only the small models are feasible.
  const auto model = selfish::build_model(params_for(1, 1));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::dense_policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_DensePolicyIteration)->Unit(benchmark::kMicrosecond);

void BM_Algorithm1(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  options.evaluate_exact_errev = false;
  for (auto _ : state) {
    const auto result = analysis::analyze(model, options);
    benchmark::DoNotOptimize(result.errev_lower_bound);
  }
}
BENCHMARK(BM_Algorithm1)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ExactErrevEvaluation(benchmark::State& state) {
  const auto model = selfish::build_model(params_for(2, 2));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-2;
  options.evaluate_exact_errev = false;
  const auto analysis = analysis::analyze(model, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::exact_errev(model, analysis.policy));
  }
}
BENCHMARK(BM_ExactErrevEvaluation)->Unit(benchmark::kMillisecond);

void BM_SingleTreeBaseline(benchmark::State& state) {
  const baselines::SingleTreeParams params{
      .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::analyze_single_tree(params).errev);
  }
}
BENCHMARK(BM_SingleTreeBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
