// Solver micro-benchmarks (google-benchmark): model construction, one
// mean-payoff solve per method — legacy AoS reference vs the SoA
// BellmanKernel at several thread counts — full Algorithm 1 on both
// paths, the single-tree baseline, and the stationary evaluation: the
// building blocks whose costs compose into Table 1.
//
// The kernel rows are the perf-trajectory anchors: CI's solver-perf job
// runs this binary with --benchmark_out=BENCH_solvers.json and uploads
// the JSON, so kernel-vs-legacy and 1-vs-N-thread ratios are recorded
// per commit. (Results are bit-identical across all of these configs —
// test_mdp_kernel pins that; this file only measures time.)
#include <benchmark/benchmark.h>

#include <cstdint>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "baselines/single_tree.hpp"
#include "mdp/dense_solver.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/solve.hpp"
#include "selfish/build.hpp"

namespace {

selfish::AttackParams params_for(int d, int f) {
  return selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
}

void BM_BuildModel(benchmark::State& state) {
  const auto params = params_for(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto model = selfish::build_model(params);
    benchmark::DoNotOptimize(model.mdp.num_states());
  }
  state.counters["states"] = static_cast<double>(
      selfish::build_model(params).mdp.num_states());
}
BENCHMARK(BM_BuildModel)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
  // The seed's AoS path — the baseline every kernel row compares against.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
  state.counters["states"] =
      static_cast<double>(model.mdp.num_states());
}
BENCHMARK(BM_ValueIteration)
    ->Args({1, 1})->Args({2, 1})->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);
// The paper's heaviest configuration (≈1.2M states, ≈10.4M transitions):
// the bandwidth-bound regime the SoA kernel targets. One iteration — a
// solve takes tens of seconds.
BENCHMARK(BM_ValueIteration)->Args({4, 2})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_GaussSeidel(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result =
        mdp::gauss_seidel_value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_GaussSeidel)
    ->Args({1, 1})->Args({2, 1})->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_KernelBuild(benchmark::State& state) {
  // One-time SoA re-indexing cost, amortized over a whole analysis.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  for (auto _ : state) {
    const mdp::BellmanKernel kernel(model.mdp);
    benchmark::DoNotOptimize(kernel.memory_bytes());
  }
}
BENCHMARK(BM_KernelBuild)->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_KernelValueIteration(benchmark::State& state) {
  // SoA kernel, threads = range(2); bit-identical to BM_ValueIteration.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const mdp::BellmanKernel kernel(model.mdp);
  const int threads = static_cast<int>(state.range(2));
  std::int64_t sweeps = 0;
  for (auto _ : state) {
    const auto result =
        kernel.value_iteration(0.4, {}, nullptr, threads);
    benchmark::DoNotOptimize(result.gain);
    sweeps += result.iterations;
  }
  // The ROADMAP roofline row: bytes one synchronous sweep streams (also
  // exported live as selfish_mdp_bytes_per_sweep) and the achieved
  // bandwidth GB/s = bytes_per_sweep * sweeps / wall — compare against
  // the machine's STREAM number to see how far the kernel sits from the
  // memory wall.
  state.counters["bytes_per_sweep"] =
      static_cast<double>(kernel.bytes_per_sweep());
  state.counters["achieved_gbps"] = benchmark::Counter(
      static_cast<double>(kernel.bytes_per_sweep()) *
          static_cast<double>(sweeps) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelValueIteration)
    ->Args({2, 2, 1})->Args({2, 2, 8})
    ->Args({3, 2, 1})->Args({3, 2, 2})->Args({3, 2, 4})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_KernelValueIteration)
    ->Args({4, 2, 1})->Args({4, 2, 2})->Args({4, 2, 4})->Args({4, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_KernelGaussSeidel(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const mdp::BellmanKernel kernel(model.mdp);
  const int threads = static_cast<int>(state.range(2));
  for (auto _ : state) {
    const auto result = kernel.gauss_seidel(0.4, {}, nullptr, threads);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_KernelGaussSeidel)
    ->Args({2, 2, 1})->Args({2, 2, 8})->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PolicyIteration(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_PolicyIteration)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DensePolicyIteration(benchmark::State& state) {
  // Dense evaluation is O(n³): only the small models are feasible.
  const auto model = selfish::build_model(params_for(1, 1));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::dense_policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_DensePolicyIteration)->Unit(benchmark::kMicrosecond);

void BM_Algorithm1(benchmark::State& state) {
  // Product path: the kernel, at threads = range(2) (0 would mean all
  // cores; explicit counts keep rows comparable across machines).
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  options.evaluate_exact_errev = false;
  options.solver.threads = static_cast<int>(state.range(2));
  for (auto _ : state) {
    const auto result = analysis::analyze(model, options);
    benchmark::DoNotOptimize(result.errev_lower_bound);
  }
}
BENCHMARK(BM_Algorithm1)
    ->Args({1, 1, 1})->Args({2, 1, 1})->Args({2, 2, 1})
    ->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Algorithm1Legacy(benchmark::State& state) {
  // The seed's path: AoS sweeps, a beta_rewards vector per bisection step.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  options.evaluate_exact_errev = false;
  options.solver.use_kernel = false;
  for (auto _ : state) {
    const auto result = analysis::analyze(model, options);
    benchmark::DoNotOptimize(result.errev_lower_bound);
  }
}
BENCHMARK(BM_Algorithm1Legacy)->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ExactErrevEvaluation(benchmark::State& state) {
  const auto model = selfish::build_model(params_for(2, 2));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-2;
  options.evaluate_exact_errev = false;
  const auto analysis = analysis::analyze(model, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::exact_errev(model, analysis.policy));
  }
}
BENCHMARK(BM_ExactErrevEvaluation)->Unit(benchmark::kMillisecond);

void BM_SingleTreeBaseline(benchmark::State& state) {
  const baselines::SingleTreeParams params{
      .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::analyze_single_tree(params).errev);
  }
}
BENCHMARK(BM_SingleTreeBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
