// Solver micro-benchmarks (google-benchmark): model construction, one
// mean-payoff solve per method — legacy AoS reference vs the SoA
// BellmanKernel at several thread counts — full Algorithm 1 on both
// paths, the single-tree baseline, and the stationary evaluation: the
// building blocks whose costs compose into Table 1.
//
// The kernel rows are the perf-trajectory anchors: CI's solver-perf job
// runs this binary with --benchmark_out=BENCH_solvers.json and uploads
// the JSON, so kernel-vs-legacy and 1-vs-N-thread ratios are recorded
// per commit. BM_KernelValueIteration/BM_KernelGaussSeidel deliberately
// pin the PR 4 tuning (scalar gather, no prefetch) so those trajectories
// stay comparable; the *Gather rows measure the tuned default against
// them, BM_KernelGaussSeidelRedBlack measures the parallel certified
// iterate path, and BM_StreamTriad measures the host's memory-bandwidth
// peak that the kernel rows' achieved_gbps is judged against. (Results
// are bit-identical across every thread count and gather tuning —
// test_mdp_kernel pins that; red-black is a different certified iterate
// with its own golden pins.)
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "baselines/single_tree.hpp"
#include "mdp/bellman_kernel.hpp"
#include "mdp/dense_solver.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/solve.hpp"
#include "obs/metrics.hpp"
#include "selfish/build.hpp"

namespace {

selfish::AttackParams params_for(int d, int f) {
  return selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = 4};
}

// The PR 4 kernel configuration — scalar gather, no software prefetch —
// kept as the tuning of every committed BM_Kernel* row so the perf
// trajectory stays apples-to-apples across commits. The *Gather and
// *RedBlack rows below measure the tuned default against these anchors.
constexpr mdp::KernelTuning kAnchorTuning{
    .sweep_mode = mdp::SweepMode::kOrdered,
    .gather = mdp::GatherMode::kScalar,
    .prefetch_distance = 0,
};

// Handle to the kernel's own per-sweep wall-time histogram (same
// name/bounds, so the registry returns the existing series).
obs::Histogram& sweep_seconds_histogram() {
  return obs::histogram(
      "selfish_mdp_sweep_seconds", "Wall time of one parallel backup sweep",
      obs::exponential_buckets(1e-5, 4.0, 12));
}

// The histogram is process-global and cumulative; the per-row percentiles
// must cover only this run's sweeps, so each bench rows snapshots before
// its timed loop and quantiles the delta.
obs::HistogramSnapshot snapshot_delta(const obs::HistogramSnapshot& before,
                                      const obs::HistogramSnapshot& after) {
  obs::HistogramSnapshot delta = after;
  for (std::size_t i = 0;
       i < delta.counts.size() && i < before.counts.size(); ++i) {
    delta.counts[i] -= before.counts[i];
  }
  delta.count -= before.count;
  delta.sum -= before.sum;
  return delta;
}

// Per-sweep wall-time p50/p99 (milliseconds, matching the row's time
// unit) next to achieved_gbps on every kernel VI row: the mean a row's
// real_time implies hides certification hiccups and warmup; the spread
// is what the roofline comparison actually needs. Counters are omitted
// when observability is off (SELFISH_OBS=0) — absent, not fake zeros.
void attach_sweep_percentiles(benchmark::State& state,
                              const obs::HistogramSnapshot& before) {
  const obs::HistogramSnapshot delta =
      snapshot_delta(before, sweep_seconds_histogram().snapshot());
  if (delta.count == 0) return;
  state.counters["sweep_p50_ms"] = delta.quantile(0.50) * 1e3;
  state.counters["sweep_p99_ms"] = delta.quantile(0.99) * 1e3;
}

void BM_BuildModel(benchmark::State& state) {
  const auto params = params_for(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto model = selfish::build_model(params);
    benchmark::DoNotOptimize(model.mdp.num_states());
  }
  state.counters["states"] = static_cast<double>(
      selfish::build_model(params).mdp.num_states());
}
BENCHMARK(BM_BuildModel)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
  // The seed's AoS path — the baseline every kernel row compares against.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
  state.counters["states"] =
      static_cast<double>(model.mdp.num_states());
}
BENCHMARK(BM_ValueIteration)
    ->Args({1, 1})->Args({2, 1})->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);
// The paper's heaviest configuration (≈1.2M states, ≈10.4M transitions):
// the bandwidth-bound regime the SoA kernel targets. One iteration — a
// solve takes tens of seconds.
BENCHMARK(BM_ValueIteration)->Args({4, 2})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_GaussSeidel(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result =
        mdp::gauss_seidel_value_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_GaussSeidel)
    ->Args({1, 1})->Args({2, 1})->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_KernelBuild(benchmark::State& state) {
  // One-time SoA re-indexing cost, amortized over a whole analysis.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  for (auto _ : state) {
    const mdp::BellmanKernel kernel(model.mdp);
    benchmark::DoNotOptimize(kernel.memory_bytes());
  }
}
BENCHMARK(BM_KernelBuild)->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void kernel_value_iteration_row(benchmark::State& state,
                                const mdp::KernelTuning& tuning) {
  // SoA kernel, threads = range(2); bit-identical to BM_ValueIteration
  // at every tuning (test_mdp_kernel pins that).
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const mdp::BellmanKernel kernel(model.mdp);
  const int threads = static_cast<int>(state.range(2));
  std::int64_t sweeps = 0;
  const obs::HistogramSnapshot before = sweep_seconds_histogram().snapshot();
  for (auto _ : state) {
    const auto result =
        kernel.value_iteration(0.4, {}, nullptr, threads, tuning);
    benchmark::DoNotOptimize(result.gain);
    sweeps += result.iterations;
  }
  // The ROADMAP roofline row: bytes one synchronous sweep streams (also
  // exported live as selfish_mdp_bytes_per_sweep) and the achieved
  // bandwidth GB/s = bytes_per_sweep * sweeps / wall — compare against
  // BM_StreamTriad's measured peak to see how far the kernel sits from
  // the memory wall.
  state.counters["bytes_per_sweep"] =
      static_cast<double>(kernel.bytes_per_sweep());
  state.counters["achieved_gbps"] = benchmark::Counter(
      static_cast<double>(kernel.bytes_per_sweep()) *
          static_cast<double>(sweeps) / 1e9,
      benchmark::Counter::kIsRate);
  attach_sweep_percentiles(state, before);
}

void BM_KernelValueIteration(benchmark::State& state) {
  kernel_value_iteration_row(state, kAnchorTuning);
}
BENCHMARK(BM_KernelValueIteration)
    ->Args({2, 2, 1})->Args({2, 2, 8})
    ->Args({3, 2, 1})->Args({3, 2, 2})->Args({3, 2, 4})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_KernelValueIteration)
    ->Args({4, 2, 1})->Args({4, 2, 2})->Args({4, 2, 4})->Args({4, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_KernelValueIterationGather(benchmark::State& state) {
  // The tuned default: widest available hardware gather (runtime CPU
  // dispatch) + software prefetch. Same sweep count and bytes as the
  // anchor row above — any real_time delta is pure gather servicing.
  kernel_value_iteration_row(state, mdp::KernelTuning{});
}
BENCHMARK(BM_KernelValueIterationGather)
    ->Args({2, 2, 1})->Args({2, 2, 8})->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_KernelValueIterationGather)
    ->Args({4, 2, 1})->Args({4, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void kernel_gauss_seidel_row(benchmark::State& state,
                             const mdp::KernelTuning& tuning) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const mdp::BellmanKernel kernel(model.mdp);
  const int threads = static_cast<int>(state.range(2));
  for (auto _ : state) {
    const auto result =
        kernel.gauss_seidel(0.4, {}, nullptr, threads, tuning);
    benchmark::DoNotOptimize(result.gain);
  }
}

void BM_KernelGaussSeidel(benchmark::State& state) {
  kernel_gauss_seidel_row(state, kAnchorTuning);
}
BENCHMARK(BM_KernelGaussSeidel)
    ->Args({2, 2, 1})->Args({2, 2, 8})->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_KernelGaussSeidel)->Args({4, 2, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_KernelGaussSeidelRedBlack(benchmark::State& state) {
  // The red-black certified iterate path (plus the tuned gather default
  // for its certification sweeps). Its in-place half-sweeps parallelize
  // where kOrdered's are serial — the threads=8 rows against
  // BM_KernelGaussSeidel's are the point of this benchmark; iteration
  // counts differ between the two paths, so compare whole-solve time,
  // not per-sweep time.
  mdp::KernelTuning tuning;
  tuning.sweep_mode = mdp::SweepMode::kRedBlack;
  kernel_gauss_seidel_row(state, tuning);
}
BENCHMARK(BM_KernelGaussSeidelRedBlack)
    ->Args({2, 2, 1})->Args({2, 2, 8})->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_KernelGaussSeidelRedBlack)->Args({4, 2, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void BM_StreamTriad(benchmark::State& state) {
  // STREAM-like triad peak for this host: a[i] = b[i] + s·c[i] over
  // arrays far past L2, 24 explicit bytes per element (write-allocate
  // traffic not counted, per STREAM convention). The *sequential* peak —
  // an upper bound no gather-laden sweep can reach; BM_SweepStream below
  // measures the pattern-correct roofline.
  constexpr std::size_t kElements = std::size_t{8} << 20;  // 64 MB/array
  std::vector<double> a(kElements, 0.0);
  std::vector<double> b(kElements, 1.0);
  std::vector<double> c(kElements, 2.0);
  const double s = 3.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kElements; ++i) a[i] = b[i] + s * c[i];
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.counters["achieved_gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(kElements) * 24.0 / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamTriad)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepStream(benchmark::State& state) {
  // The measured peak *for the sweep's own access pattern*: one
  // synchronous backup sweep's exact data movement — the model's flat
  // target/prob streams in CSR order, the v[target] gather, reward +
  // offset per action, v read / v_next write per state — with the solver
  // logic (max-reduction, policy and convergence bookkeeping) replaced
  // by a straight sum. Counted with the kernel's own bytes_per_sweep
  // accounting (gather line fills not counted), so achieved_gbps here is
  // the roofline the kernel VI rows should be judged against: the
  // sequential triad above overstates it, because a near-random gather
  // per 12 streamed bytes costs line fills the accounting deliberately
  // leaves out.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const mdp::Mdp& m = model.mdp;
  const mdp::StateId n = m.num_states();
  const mdp::ActionId num_actions = m.num_actions();
  std::vector<std::uint32_t> action_begin(static_cast<std::size_t>(n) + 1);
  for (mdp::StateId s = 0; s <= n; ++s) action_begin[s] = m.action_begin(s);
  std::vector<std::uint32_t> tr_begin(static_cast<std::size_t>(num_actions) +
                                      1);
  for (mdp::ActionId a = 0; a < num_actions; ++a) {
    tr_begin[a] = m.transition_begin(a);
  }
  tr_begin[num_actions] = static_cast<std::uint32_t>(m.num_transitions());
  std::vector<std::uint32_t> targets;
  std::vector<double> probs;
  targets.reserve(m.num_transitions());
  probs.reserve(m.num_transitions());
  for (mdp::ActionId a = 0; a < num_actions; ++a) {
    for (const mdp::Transition& t : m.transitions(a)) {
      targets.push_back(t.target);
      probs.push_back(t.prob);
    }
  }
  const std::vector<double> reward = m.beta_rewards(0.4);
  const std::vector<double> v(static_cast<std::size_t>(n), 1.0);
  std::vector<double> v_next(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    for (mdp::StateId s = 0; s < n; ++s) {
      double acc = v[s];
      for (std::uint32_t a = action_begin[s]; a < action_begin[s + 1]; ++a) {
        double q = reward[a];
        for (std::uint32_t i = tr_begin[a]; i < tr_begin[a + 1]; ++i) {
          q += probs[i] * v[targets[i]];
        }
        acc += q;
      }
      v_next[s] = acc;
    }
    benchmark::DoNotOptimize(v_next.data());
    benchmark::ClobberMemory();
  }
  const std::size_t bytes =
      targets.size() * 20 + reward.size() * 12 + static_cast<std::size_t>(n) *
      20;
  state.counters["bytes_per_sweep"] = static_cast<double>(bytes);
  state.counters["achieved_gbps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(bytes) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepStream)->Args({3, 2})->Args({4, 2})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PolicyIteration(benchmark::State& state) {
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_PolicyIteration)->Args({1, 1})->Args({2, 1})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DensePolicyIteration(benchmark::State& state) {
  // Dense evaluation is O(n³): only the small models are feasible.
  const auto model = selfish::build_model(params_for(1, 1));
  const auto rewards = model.mdp.beta_rewards(0.4);
  for (auto _ : state) {
    const auto result = mdp::dense_policy_iteration(model.mdp, rewards);
    benchmark::DoNotOptimize(result.gain);
  }
}
BENCHMARK(BM_DensePolicyIteration)->Unit(benchmark::kMicrosecond);

void BM_Algorithm1(benchmark::State& state) {
  // Product path: the kernel, at threads = range(2) (0 would mean all
  // cores; explicit counts keep rows comparable across machines).
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  options.evaluate_exact_errev = false;
  options.solver.threads = static_cast<int>(state.range(2));
  for (auto _ : state) {
    const auto result = analysis::analyze(model, options);
    benchmark::DoNotOptimize(result.errev_lower_bound);
  }
}
BENCHMARK(BM_Algorithm1)
    ->Args({1, 1, 1})->Args({2, 1, 1})->Args({2, 2, 1})
    ->Args({3, 2, 1})->Args({3, 2, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Algorithm1Legacy(benchmark::State& state) {
  // The seed's path: AoS sweeps, a beta_rewards vector per bisection step.
  const auto model = selfish::build_model(
      params_for(static_cast<int>(state.range(0)),
                 static_cast<int>(state.range(1))));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  options.evaluate_exact_errev = false;
  options.solver.use_kernel = false;
  for (auto _ : state) {
    const auto result = analysis::analyze(model, options);
    benchmark::DoNotOptimize(result.errev_lower_bound);
  }
}
BENCHMARK(BM_Algorithm1Legacy)->Args({2, 2})->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ExactErrevEvaluation(benchmark::State& state) {
  const auto model = selfish::build_model(params_for(2, 2));
  analysis::AnalysisOptions options;
  options.epsilon = 1e-2;
  options.evaluate_exact_errev = false;
  const auto analysis = analysis::analyze(model, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::exact_errev(model, analysis.policy));
  }
}
BENCHMARK(BM_ExactErrevEvaluation)->Unit(benchmark::kMillisecond);

void BM_SingleTreeBaseline(benchmark::State& state) {
  const baselines::SingleTreeParams params{
      .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::analyze_single_tree(params).errev);
  }
}
BENCHMARK(BM_SingleTreeBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
