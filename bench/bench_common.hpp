// Shared plumbing for the bench harnesses: scale flags and the attack
// configuration lists used by the paper's evaluation (§4).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/algorithm1.hpp"
#include "engine/engine.hpp"
#include "selfish/params.hpp"
#include "support/options.hpp"

namespace bench {

/// The paper's (d, f) attack configurations. The last entry (4,2) took the
/// authors 21.6 h in Storm; our native solver needs ~2.5 min, but it is
/// still gated behind --full for a quick default run.
std::vector<std::pair<int, int>> attack_configs(bool full);

/// The paper's γ grid {0, 0.25, 0.5, 0.75, 1}.
std::vector<double> gamma_grid();

/// The paper's p grid: [0, 0.3] in steps of 0.01 (full) or 0.05 (default).
std::vector<double> resource_grid(bool full);

/// Declares the options shared by all harnesses (--full, --epsilon,
/// --solver, --threads, --cache-dir, --metrics-out, --trace-out) and
/// parses argv (with SELFISH_* environment defaults). When --trace-out is
/// set the obs NDJSON trace sink opens immediately, so every span of the
/// harness run lands in the file.
support::Options standard_options(int argc, const char* const* argv,
                                  const std::string& extra_help = "");

/// Writes a Prometheus text snapshot of the process-wide obs registry to
/// the --metrics-out path (no-op when unset). Harnesses call this right
/// before exit, so CI can archive the counters behind a BENCH_* run —
/// e.g. solver bytes/sweep and serve hit rates — next to the timing JSON.
void write_metrics_snapshot(const support::Options& options);

/// Experiment-engine configuration from the shared options: --threads
/// drives the chain fan-out, --cache-dir the result store, --store-values
/// whether entries persist warm-start value vectors.
engine::EngineOptions engine_options(const support::Options& options);

/// Analysis configuration from the shared options (--epsilon, --solver).
/// `solver_threads` = true additionally routes --threads into the
/// per-solve Bellman kernel — for harnesses that run one analysis at a
/// time; engine-driven grids pass false (chains already parallelize).
analysis::AnalysisOptions analysis_options(const support::Options& options,
                                           bool solver_threads);

/// One warm-start chain of a p-sweep grid: a (γ, d, f) series.
struct SweepSeries {
  double gamma = 0.5;
  int d = 1, f = 1;
};

/// Expands series × ps into engine jobs, series-major: the job of
/// series s at ps[i] lands at index s * ps.size() + i of the batch (and
/// of the outcomes engine.run returns for it).
std::vector<engine::AnalysisJob> sweep_grid_jobs(
    const std::vector<SweepSeries>& series, const std::vector<double>& ps,
    const analysis::AnalysisOptions& options);

/// Resolves the shared --threads option (0 = all hardware threads) into a
/// concrete worker count.
int thread_count(const support::Options& options);

/// Prints a standard header naming the experiment and its scale.
void print_header(const std::string& title, bool full);

}  // namespace bench
