// Leveled, structured NDJSON logging with token-bucket rate limiting.
//
// One line per event, machine-parsable, with the thread's current trace
// context attached automatically so log lines correlate with span trees:
//
//   {"ts":1723110123.042,"level":"warn","component":"engine",
//    "trace_id":"00000000000000a1","msg":"healed corrupt store entry",
//    "attrs":{"path":"cache/ab/cd.result"}}
//
// The sink is stderr by default; `--log-out <file>` redirects it and
// `--log-level <off|error|warn|info|debug>` filters (default: info).
// A global token bucket bounds the line rate so a hot failure path
// cannot melt the sink — dropped lines are counted and surfaced as a
// "dropped" field on the next line that passes.
//
// Like every obs facility: observe-only (log lines never feed back into
// an artifact), one relaxed level check on the fast path when the level
// is filtered, and compiled down to empty stubs under -DSELFISH_OBS=OFF.
#pragma once

#include <string>

#include "obs/metrics.hpp"  // SELFISH_OBS_ENABLED
#include "serve/json.hpp"

namespace obs {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Parses "off" | "error" | "warn" | "info" | "debug"; throws
/// std::runtime_error on anything else.
LogLevel parse_log_level(const std::string& name);

#if SELFISH_OBS_ENABLED

/// The current threshold (default kInfo): lines above it are dropped
/// before any formatting happens.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirects the sink to `path` (truncating; throws std::runtime_error
/// if it cannot be opened). Empty restores stderr.
void open_log(const std::string& path);
void close_log();

/// Reconfigures the token bucket: at most `capacity` lines in a burst,
/// refilled at `per_second` lines per second. Defaults: 128, 64.
void set_log_rate_limit(double capacity, double per_second);

/// Emits one line (subject to level and rate limit). `attrs` ride in an
/// "attrs" object; keep them small and identifying, like span attrs.
void log(LogLevel level, const char* component, const std::string& message,
         serve::JsonMembers attrs = {});

inline void log_error(const char* component, const std::string& message,
                      serve::JsonMembers attrs = {}) {
  log(LogLevel::kError, component, message, std::move(attrs));
}
inline void log_warn(const char* component, const std::string& message,
                     serve::JsonMembers attrs = {}) {
  log(LogLevel::kWarn, component, message, std::move(attrs));
}
inline void log_info(const char* component, const std::string& message,
                     serve::JsonMembers attrs = {}) {
  log(LogLevel::kInfo, component, message, std::move(attrs));
}
inline void log_debug(const char* component, const std::string& message,
                      serve::JsonMembers attrs = {}) {
  log(LogLevel::kDebug, component, message, std::move(attrs));
}

#else  // !SELFISH_OBS_ENABLED

inline LogLevel log_level() { return LogLevel::kOff; }
inline void set_log_level(LogLevel) {}
inline void open_log(const std::string&) {}
inline void close_log() {}
inline void set_log_rate_limit(double, double) {}
inline void log(LogLevel, const char*, const std::string&,
                serve::JsonMembers = {}) {}
inline void log_error(const char*, const std::string&,
                      serve::JsonMembers = {}) {}
inline void log_warn(const char*, const std::string&,
                     serve::JsonMembers = {}) {}
inline void log_info(const char*, const std::string&,
                     serve::JsonMembers = {}) {}
inline void log_debug(const char*, const std::string&,
                      serve::JsonMembers = {}) {}

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
