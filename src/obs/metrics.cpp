#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace obs {

namespace {

// Shortest-round-trip-ish float rendering shared by exposition and tests;
// %.10g keeps bucket bounds like 0.005 exact and is deterministic across
// platforms for the values we emit.
[[maybe_unused]] std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  // NaN, not 0.0: an empty histogram has no quantiles, and 0.0 would be
  // indistinguishable from a real zero-latency percentile in reports.
  if (count == 0 || bounds.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target observation (1-based, ceil as Prometheus does).
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge, clamp to the last bound.
      return bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double fraction =
        (rank - before) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(std::max(fraction, 0.0), 1.0);
  }
  return bounds.back();
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  if (!(start > 0.0) || !(factor > 1.0) || count < 1) {
    throw std::runtime_error("obs: exponential_buckets requires start > 0, "
                             "factor > 1, count >= 1");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

#if SELFISH_OBS_ENABLED

namespace detail {

namespace {

bool enabled_from_env() {
  const char* raw = std::getenv("SELFISH_OBS");
  if (raw == nullptr) return true;
  return !(std::strcmp(raw, "0") == 0 || std::strcmp(raw, "false") == 0 ||
           std::strcmp(raw, "off") == 0);
}

}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

unsigned shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kShards);
  return index;
}

}  // namespace detail

bool enabled() { return detail::on(); }

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::runtime_error("obs: histogram needs at least one bucket bound");
  }
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  if (!detail::on()) return;
  // First bound >= v; past-the-end lands in the +Inf overflow slot.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  Series& series = find_or_create(name, help, labels, Type::kCounter);
  return *series.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  Series& series = find_or_create(name, help, labels, Type::kGauge);
  return *series.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Series>& existing : series_) {
    if (existing->name == name && existing->labels == labels) {
      if (existing->type != Type::kHistogram) {
        throw std::runtime_error("obs: metric '" + name +
                                 "' re-registered with a different type");
      }
      return *existing->histogram;
    }
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->labels = labels;
  series->type = Type::kHistogram;
  series->histogram = std::make_unique<Histogram>(std::move(bounds));
  Series& ref = *series;
  series_.push_back(std::move(series));
  bool family_seen = false;
  for (auto& [family_name, family] : families_) {
    if (family_name == name) {
      family_seen = true;
      break;
    }
  }
  if (!family_seen) {
    families_.emplace_back(name, Family{help, Type::kHistogram});
  }
  return *ref.histogram;
}

Registry::Series& Registry::find_or_create(const std::string& name,
                                           const std::string& help,
                                           const std::string& labels,
                                           Type type) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Series>& existing : series_) {
    if (existing->name == name && existing->labels == labels) {
      if (existing->type != type) {
        throw std::runtime_error("obs: metric '" + name +
                                 "' re-registered with a different type");
      }
      return *existing;
    }
  }
  auto series = std::make_unique<Series>();
  series->name = name;
  series->labels = labels;
  series->type = type;
  if (type == Type::kCounter) {
    series->counter = std::make_unique<Counter>();
  } else {
    series->gauge = std::make_unique<Gauge>();
  }
  Series& ref = *series;
  series_.push_back(std::move(series));
  bool family_seen = false;
  for (auto& [family_name, family] : families_) {
    if (family_name == name) {
      family_seen = true;
      break;
    }
  }
  if (!family_seen) {
    families_.emplace_back(name, Family{help, type});
  }
  return ref;
}

std::string Registry::expose() const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Sort family names, then series within a family by label body, so the
  // exposition is deterministic regardless of registration order.
  std::vector<std::pair<std::string, Family>> families = families_;
  std::sort(families.begin(), families.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families) {
    std::vector<const Series*> members;
    for (const std::unique_ptr<Series>& series : series_) {
      if (series->name == name) members.push_back(series.get());
    }
    std::sort(members.begin(), members.end(),
              [](const Series* a, const Series* b) {
                return a->labels < b->labels;
              });

    out += "# HELP ";
    out += name;
    out += " ";
    out += family.help;
    out += "\n# TYPE ";
    out += name;
    out += " ";
    switch (family.type) {
      case Type::kCounter: out += "counter"; break;
      case Type::kGauge: out += "gauge"; break;
      case Type::kHistogram: out += "histogram"; break;
    }
    out += "\n";

    for (const Series* series : members) {
      const std::string& labels = series->labels;
      const auto emit_scalar = [&](const std::string& value) {
        out += name;
        if (!labels.empty()) {
          out += "{";
          out += labels;
          out += "}";
        }
        out += " ";
        out += value;
        out += "\n";
      };
      switch (series->type) {
        case Type::kCounter:
          emit_scalar(std::to_string(series->counter->value()));
          break;
        case Type::kGauge:
          emit_scalar(std::to_string(series->gauge->value()));
          break;
        case Type::kHistogram: {
          const HistogramSnapshot snap = series->histogram->snapshot();
          std::string prefix = labels;
          if (!prefix.empty()) prefix += ",";
          std::uint64_t cumulative = 0;
          const auto emit_bucket = [&](const std::string& le) {
            out += name;
            out += "_bucket{";
            out += prefix;
            out += "le=\"";
            out += le;
            out += "\"} ";
            out += std::to_string(cumulative);
            out += "\n";
          };
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.counts[i];
            emit_bucket(format_double(snap.bounds[i]));
          }
          cumulative += snap.counts[snap.bounds.size()];
          emit_bucket("+Inf");
          out += name;
          out += "_sum";
          if (!labels.empty()) {
            out += "{";
            out += labels;
            out += "}";
          }
          out += " ";
          out += format_double(snap.sum);
          out += "\n";
          out += name;
          out += "_count";
          if (!labels.empty()) {
            out += "{";
            out += labels;
            out += "}";
          }
          out += " ";
          out += std::to_string(snap.count);
          out += "\n";
          break;
        }
      }
    }
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Series>& series : series_) {
    switch (series->type) {
      case Type::kCounter: series->counter->reset(); break;
      case Type::kGauge: series->gauge->reset(); break;
      case Type::kHistogram: series->histogram->reset(); break;
    }
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

Counter& counter(const std::string& name, const std::string& help,
                 const std::string& labels) {
  return registry().counter(name, help, labels);
}

Gauge& gauge(const std::string& name, const std::string& help,
             const std::string& labels) {
  return registry().gauge(name, help, labels);
}

Histogram& histogram(const std::string& name, const std::string& help,
                     std::vector<double> bounds, const std::string& labels) {
  return registry().histogram(name, help, std::move(bounds), labels);
}

std::string prometheus_text() { return registry().expose(); }

#else  // !SELFISH_OBS_ENABLED

Registry& registry() {
  static Registry instance;
  return instance;
}

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
