#include "obs/flight.hpp"

#if SELFISH_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"
#include "serve/json.hpp"

namespace obs {

namespace {

constexpr std::size_t kCapacity = 4096;

struct Slot {
  std::atomic<std::uint64_t> version{0};  ///< Odd = write in progress.
  FlightRecord record;
};

struct Ring {
  std::atomic<std::uint64_t> ticket{0};
  Slot* slots = new Slot[kCapacity];
};

/// Leaked on purpose: spans may still finish during static destruction
/// of other translation units, and the ring must outlive them all.
Ring& ring() {
  static Ring* instance = new Ring;
  return *instance;
}

}  // namespace

std::size_t flight_capacity() { return kCapacity; }

void flight_record(const FlightRecord& record) {
  Ring& r = ring();
  const std::uint64_t ticket =
      r.ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r.slots[ticket % kCapacity];
  std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1) != 0) return;  // wrapped onto a mid-write slot; drop
  if (!slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acq_rel)) {
    return;  // lost the slot to a writer a full wrap ahead; drop
  }
  slot.record = record;
  slot.version.store(version + 2, std::memory_order_release);
}

std::vector<FlightRecord> flight_snapshot() {
  Ring& r = ring();
  const std::uint64_t end = r.ticket.load(std::memory_order_acquire);
  const std::uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    Slot& slot = r.slots[ticket % kCapacity];
    // Seqlock read: copy, then confirm the version did not move. A few
    // retries ride out an in-progress write; persistent churn on one
    // slot just loses that slot from this snapshot.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 == 0) break;            // never written
      if ((v1 & 1) != 0) continue;   // mid-write
      FlightRecord copy = slot.record;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) == v1) {
        out.push_back(copy);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.span_id < b.span_id;
            });
  return out;
}

std::string render_span_line(const FlightRecord& record) {
  const std::size_t name_len =
      ::strnlen(record.name, FlightRecord::kNameBytes);
  serve::JsonMembers members;
  members.emplace_back("span",
                       serve::Json(std::string(record.name, name_len)));
  members.emplace_back("trace_id",
                       serve::Json(format_trace_id(record.trace_id)));
  members.emplace_back("span_id",
                       serve::Json(format_trace_id(record.span_id)));
  if (record.parent_id != 0) {
    members.emplace_back("parent_id",
                         serve::Json(format_trace_id(record.parent_id)));
  }
  members.emplace_back("start", serve::Json(record.start));
  members.emplace_back("end", serve::Json(record.start + record.dur));
  members.emplace_back("dur", serve::Json(record.dur));
  std::string line = serve::Json::object(std::move(members)).dump();
  const std::size_t attrs_len =
      ::strnlen(record.attrs, FlightRecord::kAttrsBytes);
  if (attrs_len > 0) {
    // The attrs buffer already holds a rendered JSON object — splice it
    // in behind the fixed fields (same technique as render_result).
    line.pop_back();
    line += ",\"attrs\":";
    line.append(record.attrs, attrs_len);
    line += "}";
  }
  return line;
}

std::string flight_dump_ndjson() {
  std::string out;
  for (const FlightRecord& record : flight_snapshot()) {
    out += render_span_line(record);
    out += '\n';
  }
  return out;
}

void flight_reset() {
  Ring& r = ring();
  for (std::size_t i = 0; i < kCapacity; ++i) {
    r.slots[i].version.store(0, std::memory_order_relaxed);
    r.slots[i].record = FlightRecord{};
  }
  r.ticket.store(0, std::memory_order_release);
}

}  // namespace obs

#endif  // SELFISH_OBS_ENABLED
