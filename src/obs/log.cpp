#include "obs/log.hpp"

#include <stdexcept>

namespace obs {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  for (const LogLevel level :
       {LogLevel::kOff, LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
        LogLevel::kDebug}) {
    if (name == level_name(level)) return level;
  }
  throw std::runtime_error(
      "invalid log level \"" + name +
      "\" (expected off | error | warn | info | debug)");
}

}  // namespace obs

#if SELFISH_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Sink + rate limiter state, all under one mutex: logging is not a hot
// path (the level check above filters before any lock is taken).
std::mutex g_log_mutex;
std::ofstream g_log_file;
double g_bucket_capacity = 128.0;
double g_bucket_rate = 64.0;
double g_bucket_tokens = 128.0;
double g_bucket_last = 0.0;
std::uint64_t g_dropped = 0;

/// Monotonic seconds for bucket refill (origin irrelevant).
double limiter_seconds() {
  static support::Timer clock;
  return clock.seconds();
}

/// Wall-clock seconds since the Unix epoch, millisecond resolution —
/// log lines are for operators and must align with other machines.
double wall_seconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double seconds = std::chrono::duration<double>(now).count();
  return std::round(seconds * 1e3) / 1e3;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void open_log(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_file.is_open()) g_log_file.close();
  if (path.empty()) return;  // back to stderr
  g_log_file.open(path, std::ios::out | std::ios::trunc);
  if (!g_log_file.is_open()) {
    throw std::runtime_error("obs: cannot open log file: " + path);
  }
}

void close_log() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_file.is_open()) {
    g_log_file.flush();
    g_log_file.close();
  }
}

void set_log_rate_limit(double capacity, double per_second) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_bucket_capacity = capacity;
  g_bucket_rate = per_second;
  g_bucket_tokens = capacity;
  g_bucket_last = limiter_seconds();
}

void log(LogLevel level, const char* component, const std::string& message,
         serve::JsonMembers attrs) {
  if (!detail::on()) return;
  if (level == LogLevel::kOff ||
      static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }

  std::uint64_t dropped_before = 0;
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    const double now = limiter_seconds();
    g_bucket_tokens = std::min(
        g_bucket_capacity,
        g_bucket_tokens + (now - g_bucket_last) * g_bucket_rate);
    g_bucket_last = now;
    if (g_bucket_tokens < 1.0) {
      ++g_dropped;
      return;
    }
    g_bucket_tokens -= 1.0;
    dropped_before = g_dropped;
    g_dropped = 0;
  }

  serve::JsonMembers members;
  members.emplace_back("ts", serve::Json(wall_seconds()));
  members.emplace_back("level", serve::Json(std::string(level_name(level))));
  members.emplace_back("component",
                       serve::Json(std::string(component)));
  const TraceContext context = current_context();
  if (context.trace_id != 0) {
    members.emplace_back("trace_id",
                         serve::Json(format_trace_id(context.trace_id)));
  }
  members.emplace_back("msg", serve::Json(message));
  if (dropped_before > 0) {
    members.emplace_back("dropped",
                         serve::Json(static_cast<double>(dropped_before)));
  }
  if (!attrs.empty()) {
    members.emplace_back("attrs", serve::Json::object(std::move(attrs)));
  }
  const std::string line = serve::Json::object(std::move(members)).dump();

  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_file.is_open()) {
    g_log_file << line << '\n';
    g_log_file.flush();  // operators tail log files; lines must land
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace obs

#endif  // SELFISH_OBS_ENABLED
