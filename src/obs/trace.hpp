// Request-scoped trace spans with NDJSON export and an always-on
// flight recorder.
//
// A Span is an RAII marker around a unit of work (a solve, a chain, a
// scenario run, a request). Spans carry Dapper-style identity: a 64-bit
// `trace_id` shared by every span of one logical request, a unique
// `span_id`, and the `parent_id` of the enclosing span. The current
// (trace_id, span_id) pair lives in a thread-local TraceContext;
// constructing a span pushes itself as the current context and the
// destructor pops it, so nesting works without any plumbing. Crossing a
// support::ThreadPool keeps the tree intact: submit() captures the
// enqueuing thread's context and the worker restores it around the job.
//
// Every completed span is recorded in the in-memory flight recorder ring
// (obs/flight.hpp) whenever observability is enabled at runtime — even
// with no trace file open — so the recent past is always dumpable
// (`trace-dump` admin kind, SIGUSR1 on the server). When a sink is open
// (`--trace-out <file>`), each span additionally writes one NDJSON line
// at scope exit:
//
//   {"span":"mdp.value_iteration","trace_id":"00000000000000a1",
//    "span_id":"00000000000000a4","parent_id":"00000000000000a2",
//    "start":0.0123,"end":1.9871,"dur":1.9748,
//    "attrs":{"states":1218000,"iterations":412}}
//
// Times are seconds on the steady clock since the process-wide trace
// clock started (first obs use), so lines sort chronologically. Ids
// render as 16 lowercase hex digits and are process-local. Like metrics,
// spans observe only — they never alter any artifact the system renders.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"  // SELFISH_OBS_ENABLED
#include "serve/json.hpp"
#include "support/timer.hpp"

namespace obs {

/// The propagated identity of the work currently executing on a thread:
/// which request tree it belongs to (trace_id) and which span is the
/// innermost open one (span_id — the parent of any span opened next).
/// Zero ids mean "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// 16 lowercase hex digits (the wire form of trace ids).
std::string format_trace_id(std::uint64_t id);

/// Parses 1..16 hex digits into an id; returns 0 (never a valid id) on
/// malformed input, including "0" itself.
std::uint64_t parse_trace_id(const std::string& hex);

#if SELFISH_OBS_ENABLED

/// The calling thread's current trace context (zeros when no span is
/// open on this thread).
TraceContext current_context();

/// RAII: installs `context` as the thread's current trace context and
/// restores the previous one on destruction. Used by ThreadPool workers
/// to adopt the submitting thread's context for the duration of a job.
class ContextScope {
 public:
  explicit ContextScope(TraceContext context);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Opens `path` as the process-wide NDJSON trace sink (truncating).
/// Throws std::runtime_error if the file cannot be opened. Reopening
/// switches sinks.
void open_trace(const std::string& path);

/// Flushes and closes the sink; spans keep feeding the flight recorder.
void close_trace();

/// True while a trace sink is open.
bool tracing();

/// One traced scope. Active whenever observability is enabled at runtime
/// (obs::enabled()); inactive spans cost one relaxed atomic load and
/// allocate nothing. attr() values ride along in the span's "attrs"
/// object — keep them to identifiers and counts, not payloads.
class Span {
 public:
  explicit Span(const char* name);
  /// Root-span variant adopting a caller-supplied trace id (serve
  /// requests carrying a client `trace_id`); 0 falls back to inheriting
  /// the current context's trace or minting a fresh one.
  Span(const char* name, std::uint64_t trace_id);
  ~Span() = default;

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void attr(const char* key, serve::Json value);

  /// This span's ids; 0 when the span is inactive.
  std::uint64_t trace_id() const { return context_.trace_id; }
  std::uint64_t span_id() const { return context_.span_id; }

 private:
  void finish(double elapsed_seconds);

  bool active_;
  const char* name_;
  TraceContext context_;          ///< This span's (trace_id, span_id).
  std::uint64_t parent_id_ = 0;   ///< Enclosing span at construction.
  TraceContext saved_;            ///< Thread context restored in finish().
  double start_ = 0.0;
  serve::JsonMembers attrs_;
  // Must be the last member: its sink runs in ~Span before the other
  // members are destroyed, and it reads name_/start_/attrs_.
  support::ScopedTimer timer_;
};

#else  // !SELFISH_OBS_ENABLED

inline TraceContext current_context() { return {}; }

class ContextScope {
 public:
  explicit ContextScope(TraceContext) {}
};

inline void open_trace(const std::string&) {}
inline void close_trace() {}
inline bool tracing() { return false; }

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, std::uint64_t) {}
  void attr(const char*, serve::Json) {}
  std::uint64_t trace_id() const { return 0; }
  std::uint64_t span_id() const { return 0; }
};

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
