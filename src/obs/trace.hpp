// Lightweight trace spans with NDJSON export.
//
// A Span is an RAII marker around a unit of work (a solve, a chain, a
// scenario run, a request). When a trace sink is open (`--trace-out
// <file>` on the CLI subcommands and the server), each span writes one
// NDJSON line at scope exit:
//
//   {"span":"mdp.solve","start":0.0123,"end":1.9871,"dur":1.9748,
//    "attrs":{"states":1218000,"iterations":412}}
//
// Times are seconds on the steady clock, relative to when the sink was
// opened, so lines sort chronologically and diff cleanly across runs of
// the same workload. With no sink open (the default), constructing a span
// costs one relaxed atomic load and nothing is allocated. Like metrics,
// spans observe only — they never alter any artifact the system renders.
#pragma once

#include <string>

#include "obs/metrics.hpp"  // SELFISH_OBS_ENABLED
#include "serve/json.hpp"
#include "support/timer.hpp"

namespace obs {

#if SELFISH_OBS_ENABLED

/// Opens `path` as the process-wide NDJSON trace sink (truncating) and
/// starts the trace clock. Throws std::runtime_error if the file cannot
/// be opened. Reopening switches sinks.
void open_trace(const std::string& path);

/// Flushes and closes the sink; spans become no-ops again.
void close_trace();

/// True while a trace sink is open.
bool tracing();

/// One traced scope. Records nothing unless a sink was open at
/// construction time. attr() values ride along in the span's "attrs"
/// object — keep them to identifiers and counts, not payloads.
class Span {
 public:
  explicit Span(const char* name);
  ~Span() = default;

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void attr(const char* key, serve::Json value);

 private:
  void finish(double elapsed_seconds);

  bool active_;
  const char* name_;
  double start_ = 0.0;
  serve::JsonMembers attrs_;
  // Must be the last member: its sink runs in ~Span before the other
  // members are destroyed, and it reads name_/start_/attrs_.
  support::ScopedTimer timer_;
};

#else  // !SELFISH_OBS_ENABLED

inline void open_trace(const std::string&) {}
inline void close_trace() {}
inline bool tracing() { return false; }

class Span {
 public:
  explicit Span(const char*) {}
  void attr(const char*, serve::Json) {}
};

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
