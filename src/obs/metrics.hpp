// Unified, dependency-free metrics for every hot layer of the system:
// counters, gauges, and fixed-bucket histograms behind one process-global
// registry, exposed in Prometheus text format (the `metrics` admin kind
// of the analysis service, `--metrics-out` on the benches).
//
// Design constraints, in order:
//
//   1. Instrumentation must never serialize the code it observes. Counter
//      increments go to cache-line-padded *shards* indexed by a
//      thread-local id (a sum over shards reads the total); histogram and
//      gauge updates are single relaxed atomics. No instrument-path
//      operation takes a lock — the registry mutex guards registration
//      only, which happens once per metric per process.
//   2. Observability must be byte-invariant: nothing in this module feeds
//      back into any artifact (CSV, rendered report, served body), and
//      `engine::JobKey` never sees a metric field. CI pins artifacts
//      identical with metrics on, off, and compiled out.
//   3. Three switch positions. On (default). Off at runtime
//      (SELFISH_OBS=0 in the environment, or obs::set_enabled(false)):
//      instrument calls early-return on one relaxed flag load. Compiled
//      out (-DSELFISH_OBS=OFF in CMake, which defines
//      SELFISH_OBS_ENABLED=0): every class below collapses to an empty
//      inline stub and the instrumentation vanishes from the binary.
//
// Naming scheme: selfish_<subsystem>_<name>[_<unit>], subsystems mdp |
// engine | net | serve. Counters end in _total; histograms carry their
// unit (_seconds, _gbps); gauges name the instantaneous quantity.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SELFISH_OBS_ENABLED
#define SELFISH_OBS_ENABLED 1
#endif

namespace obs {

/// A point-in-time copy of one histogram, with the percentile math the
/// serving layer and the benches report from. Bucket i counts values in
/// (bounds[i-1], bounds[i]]; counts has one extra slot for the +Inf
/// overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< Size bounds.size() + 1.
  double sum = 0.0;
  std::uint64_t count = 0;

  /// The q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket (lower edge 0 for the first bucket — all
  /// instrumented quantities are non-negative). Values in the overflow
  /// bucket clamp to the last finite bound. NaN when empty (an absent
  /// quantile must not masquerade as a real 0).
  double quantile(double q) const;
};

/// `count` exponentially spaced upper bounds: start, start*factor, ...
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);

#if SELFISH_OBS_ENABLED

/// Runtime switch (third position — compiled out — is SELFISH_OBS_ENABLED).
/// Initialized from the SELFISH_OBS environment variable ("0"/"false" =
/// off); instrument paths check it with one relaxed load.
bool enabled();
void set_enabled(bool on);

namespace detail {

extern std::atomic<bool> g_enabled;

inline bool on() { return g_enabled.load(std::memory_order_relaxed); }

inline constexpr int kShards = 16;

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard index; threads round-robin over the shards so
/// concurrent increments of one counter touch different cache lines.
unsigned shard_index();

}  // namespace detail

/// Monotonic counter. add() is wait-free and contention-free across
/// threads (sharded); value() sums the shards (reads may be mid-update —
/// monotonic but not a linearizable snapshot, which is fine for metrics).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (!detail::on()) return;
    shards_[detail::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const detail::Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (detail::Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::Shard, detail::kShards> shards_;
};

/// Last-written instantaneous value (set/add/max_of), e.g. LRU residency
/// or a high-water mark. One atomic: gauges update rarely.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) {
    if (!detail::on()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t delta) {
    if (!detail::on()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if larger (high-water marks).
  void max_of(std::int64_t v) {
    if (!detail::on()) return;
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: observe() is a binary search plus two relaxed
/// atomic adds — safe inside parallel sweeps. Percentiles come from
/// snapshot().quantile().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  HistogramSnapshot snapshot() const;

  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// The process-global metric registry. Registration (the only locked
/// operation) is idempotent: asking for an existing (name, labels) pair
/// returns the same handle, so instrumented code can hold references in
/// function-local statics. Handles stay valid for the process lifetime.
class Registry {
 public:
  /// `labels` is the raw Prometheus label body, e.g. `kind="point"`;
  /// empty for an unlabeled series. Re-registering a name with a
  /// different metric type throws support-style (std::runtime_error).
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds,
                       const std::string& labels = "");

  /// Prometheus text exposition: families sorted by name, series within a
  /// family sorted by label body — deterministic for tests.
  std::string expose() const;

  /// Zeroes every value, keeps every registration (tests, per-phase
  /// bench deltas). Not safe concurrently with instrument calls that
  /// must not be lost — fine for its users.
  void reset_values();

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    std::string name;
    std::string labels;
    Type type = Type::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Type type = Type::kCounter;
  };

  Series& find_or_create(const std::string& name, const std::string& help,
                         const std::string& labels, Type type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Series>> series_;  ///< Stable addresses.
  // Family metadata keyed by metric name (shared across label values).
  std::vector<std::pair<std::string, Family>> families_;
};

/// The process-global registry (every instrumented subsystem and the
/// exposition endpoints share it).
Registry& registry();

// Convenience accessors on the global registry.
Counter& counter(const std::string& name, const std::string& help,
                 const std::string& labels = "");
Gauge& gauge(const std::string& name, const std::string& help,
             const std::string& labels = "");
Histogram& histogram(const std::string& name, const std::string& help,
                     std::vector<double> bounds,
                     const std::string& labels = "");

/// Prometheus text exposition of the global registry.
std::string prometheus_text();

#else  // !SELFISH_OBS_ENABLED — inline no-op stubs with the same API.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  void max_of(std::int64_t) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  void observe(double) {}
  HistogramSnapshot snapshot() const { return {}; }
  void reset() {}
};

class Registry {
 public:
  Counter& counter(const std::string&, const std::string&,
                   const std::string& = "") {
    return counter_;
  }
  Gauge& gauge(const std::string&, const std::string&,
               const std::string& = "") {
    return gauge_;
  }
  Histogram& histogram(const std::string&, const std::string&,
                       std::vector<double>, const std::string& = "") {
    return histogram_;
  }
  std::string expose() const {
    return "# selfish-mining observability compiled out (SELFISH_OBS=0)\n";
  }
  void reset_values() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

Registry& registry();

inline Counter& counter(const std::string& name, const std::string& help,
                        const std::string& labels = "") {
  return registry().counter(name, help, labels);
}
inline Gauge& gauge(const std::string& name, const std::string& help,
                    const std::string& labels = "") {
  return registry().gauge(name, help, labels);
}
inline Histogram& histogram(const std::string& name, const std::string& help,
                            std::vector<double> bounds,
                            const std::string& labels = "") {
  return registry().histogram(name, help, std::move(bounds), labels);
}
inline std::string prometheus_text() { return registry().expose(); }

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
