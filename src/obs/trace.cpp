#include "obs/trace.hpp"

#include <cstdio>

namespace obs {

std::string format_trace_id(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

std::uint64_t parse_trace_id(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t value = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

}  // namespace obs

#if SELFISH_OBS_ENABLED

#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/flight.hpp"

namespace obs {

namespace {

// Sink state. The flag is read lock-free on the span fast path; the
// stream is touched only while a sink is open, under the lock.
std::atomic<bool> g_tracing{false};
std::mutex g_sink_mutex;
std::ofstream g_sink;

/// One process-wide trace clock: sink lines and flight-recorder records
/// share an origin, so a dump interleaves chronologically with the file.
double trace_seconds() {
  static support::Timer clock;
  return clock.seconds();
}

/// Span and trace ids come off one process-global counter: unique within
/// the process, dense, and cheap. 0 is reserved for "no id".
std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TraceContext& thread_context() {
  thread_local TraceContext context;
  return context;
}

}  // namespace

TraceContext current_context() { return thread_context(); }

ContextScope::ContextScope(TraceContext context)
    : saved_(thread_context()) {
  thread_context() = context;
}

ContextScope::~ContextScope() { thread_context() = saved_; }

void open_trace(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink.is_open()) g_sink.close();
  g_sink.open(path, std::ios::out | std::ios::trunc);
  if (!g_sink.is_open()) {
    throw std::runtime_error("obs: cannot open trace file: " + path);
  }
  trace_seconds();  // start the clock no later than the first sink line
  g_tracing.store(true, std::memory_order_release);
}

void close_trace() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_tracing.store(false, std::memory_order_release);
  if (g_sink.is_open()) {
    g_sink.flush();
    g_sink.close();
  }
}

bool tracing() { return g_tracing.load(std::memory_order_acquire); }

Span::Span(const char* name) : Span(name, 0) {}

Span::Span(const char* name, std::uint64_t trace_id)
    : active_(detail::on()),
      name_(name),
      timer_([this](double elapsed) { finish(elapsed); }) {
  if (!active_) {
    timer_.cancel();
    return;
  }
  TraceContext& current = thread_context();
  saved_ = current;
  parent_id_ = current.span_id;
  context_.trace_id = trace_id != 0        ? trace_id
                      : current.trace_id != 0 ? current.trace_id
                                              : next_id();
  context_.span_id = next_id();
  current = context_;
  start_ = trace_seconds();
}

void Span::attr(const char* key, serve::Json value) {
  if (!active_) return;
  attrs_.emplace_back(key, std::move(value));
}

void Span::finish(double elapsed_seconds) {
  thread_context() = saved_;

  FlightRecord record;
  std::strncpy(record.name, name_, FlightRecord::kNameBytes - 1);
  record.trace_id = context_.trace_id;
  record.span_id = context_.span_id;
  record.parent_id = parent_id_;
  record.start = start_;
  record.dur = elapsed_seconds;
  if (!attrs_.empty()) {
    const std::string rendered =
        serve::Json::object(std::move(attrs_)).dump();
    // Keep only attrs that fit whole — a truncated buffer would be
    // invalid JSON in every dump downstream.
    if (rendered.size() < FlightRecord::kAttrsBytes) {
      std::memcpy(record.attrs, rendered.data(), rendered.size());
    }
  }
  flight_record(record);

  if (!g_tracing.load(std::memory_order_acquire)) return;
  const std::string line = render_span_line(record);
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  // The sink may have closed between construction and destruction; a
  // closed-stream write would just set failbit, but skip it cleanly.
  if (!g_sink.is_open()) return;
  g_sink << line << '\n';
}

}  // namespace obs

#endif  // SELFISH_OBS_ENABLED
