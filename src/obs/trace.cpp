#include "obs/trace.hpp"

#if SELFISH_OBS_ENABLED

#include <atomic>
#include <fstream>
#include <mutex>
#include <stdexcept>

namespace obs {

namespace {

// Sink state. The flag is read lock-free on the span fast path; the
// stream and clock are touched only while a sink is open, under the lock.
std::atomic<bool> g_tracing{false};
std::mutex g_sink_mutex;
std::ofstream g_sink;
support::Timer g_trace_clock;

}  // namespace

void open_trace(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink.is_open()) g_sink.close();
  g_sink.open(path, std::ios::out | std::ios::trunc);
  if (!g_sink.is_open()) {
    throw std::runtime_error("obs: cannot open trace file: " + path);
  }
  g_trace_clock.reset();
  g_tracing.store(true, std::memory_order_release);
}

void close_trace() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_tracing.store(false, std::memory_order_release);
  if (g_sink.is_open()) {
    g_sink.flush();
    g_sink.close();
  }
}

bool tracing() { return g_tracing.load(std::memory_order_acquire); }

Span::Span(const char* name)
    : active_(tracing()),
      name_(name),
      timer_([this](double elapsed) { finish(elapsed); }) {
  if (active_) {
    start_ = g_trace_clock.seconds();
  } else {
    timer_.cancel();
  }
}

void Span::attr(const char* key, serve::Json value) {
  if (!active_) return;
  attrs_.emplace_back(key, std::move(value));
}

void Span::finish(double elapsed_seconds) {
  serve::JsonMembers record;
  record.emplace_back("span", serve::Json(std::string(name_)));
  record.emplace_back("start", serve::Json(start_));
  record.emplace_back("end", serve::Json(start_ + elapsed_seconds));
  record.emplace_back("dur", serve::Json(elapsed_seconds));
  if (!attrs_.empty()) {
    record.emplace_back("attrs", serve::Json::object(std::move(attrs_)));
  }
  const std::string line = serve::Json::object(std::move(record)).dump();

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  // The sink may have closed between construction and destruction; a
  // closed-stream write would just set failbit, but skip it cleanly.
  if (!g_sink.is_open()) return;
  g_sink << line << '\n';
}

}  // namespace obs

#endif  // SELFISH_OBS_ENABLED
