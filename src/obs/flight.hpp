// The flight recorder: a fixed-capacity, lock-free ring of the most
// recently completed spans.
//
// Always on while observability is enabled at runtime — no sink or flag
// required — so when a production query is slow the recent past is
// already captured and can be dumped after the fact (the `trace-dump`
// admin kind, SIGUSR1 on the server). Records are fixed-size POD so a
// writer never allocates; oversized attrs are dropped, never truncated
// into invalid JSON.
//
// Concurrency: writers claim slots with one global fetch_add ticket and
// publish through a per-slot seqlock (version counter: odd while a write
// is in progress, even when stable). Readers copy a slot and re-check the
// version, discarding torn copies. A writer that finds a slot mid-write
// (only possible after a full ring wrap during the other writer's copy)
// drops its record rather than block — the recorder is diagnostic, a
// lost record under pathological contention beats a lock on the span
// path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // SELFISH_OBS_ENABLED

namespace obs {

/// One completed span, fixed-size. `attrs` holds the rendered JSON attrs
/// object ("{...}") or an empty string when the span had none (or they
/// did not fit).
struct FlightRecord {
  static constexpr std::size_t kNameBytes = 40;
  static constexpr std::size_t kAttrsBytes = 168;

  char name[kNameBytes] = {};
  char attrs[kAttrsBytes] = {};
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  double start = 0.0;
  double dur = 0.0;
};

#if SELFISH_OBS_ENABLED

/// Ring capacity in records (compile-time constant, exposed for tests).
std::size_t flight_capacity();

/// Appends one record (wait-free; see the seqlock note above). Called by
/// Span::finish — instrumented code does not normally call this.
void flight_record(const FlightRecord& record);

/// A consistent copy of every stable record, oldest first (sorted by
/// start time, then span id). Skips slots that were mid-write.
std::vector<FlightRecord> flight_snapshot();

/// The snapshot as NDJSON, one span line per record — the same schema the
/// `--trace-out` sink writes.
std::string flight_dump_ndjson();

/// One span line (no trailing newline); shared by the dump and the sink.
std::string render_span_line(const FlightRecord& record);

/// Clears the ring (tests).
void flight_reset();

#else  // !SELFISH_OBS_ENABLED

inline std::size_t flight_capacity() { return 0; }
inline void flight_record(const FlightRecord&) {}
inline std::vector<FlightRecord> flight_snapshot() { return {}; }
inline std::string flight_dump_ndjson() {
  return "# selfish-mining observability compiled out (SELFISH_OBS=0)\n";
}
inline void flight_reset() {}

#endif  // SELFISH_OBS_ENABLED

}  // namespace obs
