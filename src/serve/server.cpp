#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/kinds.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"
#include "support/check.hpp"

namespace serve {

Server::Server(ServerOptions options)
    : Server(std::move(options), engine::builtin_executors()) {}

Server::Server(ServerOptions options,
               const engine::ExecutorRegistry& registry)
    : options_(std::move(options)) {
  SM_REQUIRE(options_.port >= 0 && options_.port <= 65535,
             "port out of range: ", options_.port);
  service_ = std::make_unique<Service>(options_.service, registry);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SM_REQUIRE(listen_fd_ >= 0, "socket(): ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::InvalidArgument("invalid bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("cannot listen on " + options_.host + ":" +
                         std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  reaper_thread_ = std::thread([this] { reaper_loop(); });
  obs::log_info("serve", "listening",
                {{"host", Json(options_.host)},
                 {"port", Json(static_cast<double>(port_))}});
}

Server::~Server() { stop(); }

void Server::request_stop() {
  stopping_.store(true);
  // shutdown() is async-signal-safe and makes the blocking accept()
  // return; close() happens later in stop() on a normal thread.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::serve_forever() { accept_loop(); }

void Server::start() {
  SM_REQUIRE(!accept_thread_.joinable(), "server already started");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::size_t Server::live_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size() + zombies_.size();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t peer_size = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_size);
    if (fd < 0) {
      // Transient conditions must not kill a long-running service: a
      // client aborting mid-handshake (ECONNABORTED/EPROTO) or a
      // descriptor-exhaustion burst (EMFILE/ENFILE — back off briefly so
      // in-flight connections can drain) are all recoverable.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        obs::log_warn("serve", "accept failed (transient)",
                      {{"errno", Json(std::strerror(errno))}});
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        obs::log_warn("serve", "out of file descriptors; backing off",
                      {{"errno", Json(std::strerror(errno))}});
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      break;  // listening socket shut down (stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
    obs::log_debug("serve", "connection accepted",
                   {{"fd", Json(static_cast<double>(fd))}});
  }
}

void Server::close_connection(Connection* connection) {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  if (!connection->closed.exchange(true)) ::close(connection->fd);
}

void Server::retire_connection(Connection* connection) {
  // Runs on the connection's own thread, as its final act: hand the
  // Connection (which owns this very std::thread) to the reaper, which
  // joins it promptly. A thread cannot join itself — the hand-off is
  // what makes eager reaping possible.
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == connection) {
      zombies_.push_back(std::move(*it));
      connections_.erase(it);
      break;
    }
  }
  // stop() may already have moved it out of connections_; either way the
  // reaper (or stop) owns the join from here.
  reap_cv_.notify_all();
}

void Server::reaper_loop() {
  std::unique_lock<std::mutex> lock(connections_mutex_);
  for (;;) {
    reap_cv_.wait(lock, [this] { return reaper_stop_ || !zombies_.empty(); });
    while (!zombies_.empty()) {
      std::unique_ptr<Connection> zombie = std::move(zombies_.back());
      zombies_.pop_back();
      lock.unlock();
      if (zombie->thread.joinable()) zombie->thread.join();
      obs::log_debug("serve", "connection closed",
                     {{"fd", Json(static_cast<double>(zombie->fd))}});
      lock.lock();
    }
    reap_cv_.notify_all();  // wake a stop() waiting for the drain
    if (reaper_stop_) return;
  }
}

void Server::handle_http(int fd, const std::string& request_line) {
  // "GET /path HTTP/1.x" — the path is the second token.
  const std::size_t path_begin = request_line.find(' ');
  std::size_t path_end = request_line.find(' ', path_begin + 1);
  if (path_end == std::string::npos) path_end = request_line.size();
  const std::string path =
      request_line.substr(path_begin + 1, path_end - path_begin - 1);

  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    // The content type Prometheus' text parser expects.
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::prometheus_text();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  send_all(fd, response);
  // Half-close, then drain whatever headers the client is still sending:
  // closing with unread bytes pending could RST the response away before
  // the scraper reads it.
  ::shutdown(fd, SHUT_WR);
  char drain[1024];
  while (::recv(fd, drain, sizeof(drain), 0) > 0) {
  }
}

void Server::handle_connection(Connection* connection) {
  // Legitimate requests are one short JSON line; a peer streaming bytes
  // with no newline must not grow the buffer without bound.
  constexpr std::size_t kMaxLineBytes = 1 << 20;

  const int fd = connection->fd;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  bool first_line = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // client closed, connection reset, or stop()'s shutdown
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes &&
        buffer.find('\n') == std::string::npos) {
      obs::log_warn("serve", "request line exceeds 1 MiB; closing",
                    {{"fd", Json(static_cast<double>(fd))}});
      send_all(fd, render_error(Json(), "request line exceeds 1 MiB"));
      break;
    }
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         open && newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (first_line) {
        first_line = false;
        // HTTP sniffing: a GET request line on the NDJSON port answers
        // the scrape endpoints and closes (Connection: close semantics).
        if (line.rfind("GET ", 0) == 0) {
          handle_http(fd, line);
          open = false;
          break;
        }
      }
      const HandledLine handled = handle_request(*service_, line);
      // Reply first: acting on shutdown before the bytes are out would
      // race teardown against the client's read of this very response.
      open = send_all(fd, handled.reply);
      if (handled.shutdown) {
        request_stop();
        open = false;
      }
    }
    buffer.erase(0, start);
  }
  close_connection(connection);
  retire_connection(connection);
}

void Server::stop() {
  const bool was_live = listen_fd_ >= 0;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every connection thread stuck in recv — read side only, so a
  // thread mid-solve can still deliver its in-flight reply before it
  // exits (the drain the CLI promises on SIGTERM). Shutdown (not close)
  // under the mutex: connection threads close their own fd under the same
  // mutex, so a shut-down fd is always still theirs — never a recycled
  // descriptor belonging to someone else in this process.
  {
    std::unique_lock<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->closed.load()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
    // Every connection thread now finishes and retires itself; the
    // reaper joins each one. Wait for the drain, then retire the reaper.
    reap_cv_.wait(lock, [this] {
      return connections_.empty() && zombies_.empty();
    });
    reaper_stop_ = true;
  }
  reap_cv_.notify_all();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_live) obs::log_info("serve", "stopped");
}

}  // namespace serve
