#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/kinds.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"
#include "support/check.hpp"

namespace serve {

Server::Server(ServerOptions options)
    : Server(std::move(options), engine::builtin_executors()) {}

Server::Server(ServerOptions options,
               const engine::ExecutorRegistry& registry)
    : options_(std::move(options)) {
  SM_REQUIRE(options_.port >= 0 && options_.port <= 65535,
             "port out of range: ", options_.port);
  service_ = std::make_unique<Service>(options_.service, registry);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SM_REQUIRE(listen_fd_ >= 0, "socket(): ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::InvalidArgument("invalid bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("cannot listen on " + options_.host + ":" +
                         std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

Server::~Server() { stop(); }

void Server::request_stop() {
  stopping_.store(true);
  // shutdown() is async-signal-safe and makes the blocking accept()
  // return; close() happens later in stop() on a normal thread.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::serve_forever() { accept_loop(); }

void Server::start() {
  SM_REQUIRE(!accept_thread_.joinable(), "server already started");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t peer_size = sizeof(peer);
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_size);
    if (fd < 0) {
      // Transient conditions must not kill a long-running service: a
      // client aborting mid-handshake (ECONNABORTED/EPROTO) or a
      // descriptor-exhaustion burst (EMFILE/ENFILE — back off briefly so
      // in-flight connections can drain) are all recoverable.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      break;  // listening socket shut down (stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Reap finished connections so a long-lived server does not
    // accumulate one parked thread per past client.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->closed.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void Server::close_connection(Connection* connection) {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  if (!connection->closed.exchange(true)) ::close(connection->fd);
}

void Server::handle_connection(Connection* connection) {
  // Legitimate requests are one short JSON line; a peer streaming bytes
  // with no newline must not grow the buffer without bound.
  constexpr std::size_t kMaxLineBytes = 1 << 20;

  const int fd = connection->fd;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // client closed, connection reset, or stop()'s shutdown
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxLineBytes &&
        buffer.find('\n') == std::string::npos) {
      send_all(fd, render_error(Json(), "request line exceeds 1 MiB"));
      break;
    }
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         open && newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const HandledLine handled = handle_request(*service_, line);
      // Reply first: acting on shutdown before the bytes are out would
      // race teardown against the client's read of this very response.
      open = send_all(fd, handled.reply);
      if (handled.shutdown) {
        request_stop();
        open = false;
      }
    }
    buffer.erase(0, start);
  }
  close_connection(connection);
}

void Server::stop() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every connection thread stuck in recv — read side only, so a
  // thread mid-solve can still deliver its in-flight reply before it
  // exits (the drain the CLI promises on SIGTERM). Shutdown (not close)
  // under the mutex: connection threads close their own fd under the same
  // mutex, so a shut-down fd is always still theirs — never a recycled
  // descriptor belonging to someone else in this process.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->closed.load()) {
        ::shutdown(connection->fd, SHUT_RD);
      }
    }
  }
  for (;;) {
    std::unique_ptr<Connection> connection;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = std::move(connections_.back());
      connections_.pop_back();
    }
    if (connection->thread.joinable()) connection->thread.join();
    if (!connection->closed.exchange(true)) ::close(connection->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace serve
