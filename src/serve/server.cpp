#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/kinds.hpp"
#include "fleet/auth.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "support/check.hpp"

namespace serve {

namespace {

/// Transport-level metrics (the serving core's counters live in
/// service.cpp). Registered at static init so a fresh scrape lists the
/// family at zero.
struct TransportMetrics {
  obs::Gauge& connections = obs::gauge(
      "selfish_serve_connections", "Currently open client connections");
  obs::Counter& accepted = obs::counter(
      "selfish_serve_accepted_total", "Client connections ever accepted");
  obs::Gauge& inflight = obs::gauge(
      "selfish_serve_transport_inflight",
      "Request lines dispatched to the worker pool, reply not yet queued");
  obs::Counter& busy = obs::counter(
      "selfish_serve_busy_total",
      "Request lines refused with `busy` by an in-flight cap");
  obs::Counter& idle_closed = obs::counter(
      "selfish_serve_idle_closed_total",
      "Connections closed by the idle timeout");
};

TransportMetrics& transport_metrics() {
  static TransportMetrics metrics;
  return metrics;
}

[[maybe_unused]] const TransportMetrics& g_registered_transport_metrics =
    transport_metrics();

/// Builds the one-shot HTTP response for a GET request line on the NDJSON
/// port ("GET /path HTTP/1.x" — the path is the second token). On a
/// secured server /metrics is refused (HTTP has no leg in the HMAC
/// handshake, and the exposition names internal workloads); /healthz
/// stays open so secretless load balancers can probe liveness.
std::string http_response_for(const std::string& request_line, bool secured) {
  const std::size_t path_begin = request_line.find(' ');
  std::size_t path_end = request_line.find(' ', path_begin + 1);
  if (path_end == std::string::npos) path_end = request_line.size();
  const std::string path =
      request_line.substr(path_begin + 1, path_end - path_begin - 1);

  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics" && secured) {
    status = "403 Forbidden";
    body = "metrics require the authenticated NDJSON protocol\n";
  } else if (path == "/metrics") {
    // The content type Prometheus' text parser expects.
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = obs::prometheus_text();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace

Server::Server(ServerOptions options)
    : Server(std::move(options), engine::builtin_executors()) {}

Server::Server(ServerOptions options,
               const engine::ExecutorRegistry& registry)
    : options_(std::move(options)),
      workers_(support::resolve_thread_count(options_.workers)) {
  SM_REQUIRE(options_.port >= 0 && options_.port <= 65535,
             "port out of range: ", options_.port);
  if (!options_.auth_secret_file.empty()) {
    options_.auth_secret = fleet::load_secret_file(options_.auth_secret_file);
  }
  service_ = std::make_unique<Service>(options_.service, registry);
  wire_.auth_secret = options_.auth_secret;
  wire_.limits.max_line_bytes = options_.max_line_bytes;
  wire_.limits.max_inflight = options_.max_inflight;
  wire_.limits.max_inflight_per_connection =
      options_.max_inflight_per_connection;
  wire_.limits.idle_timeout_seconds = options_.idle_timeout_seconds;
  wire_.stats = &tstats_;

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  SM_REQUIRE(listen_fd_ >= 0, "socket(): ", std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::InvalidArgument("invalid bind address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("cannot listen on " + options_.host + ":" +
                         std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SM_REQUIRE(epoll_fd_ >= 0, "epoll_create1(): ", std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  SM_REQUIRE(wake_fd_ >= 0, "eventfd(): ", std::strerror(errno));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = this;  // sentinel: the listening socket
  SM_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
             "epoll_ctl(listen): ", std::strerror(errno));
  ev.events = EPOLLIN;
  ev.data.ptr = &wake_fd_;  // sentinel: the wakeup eventfd
  SM_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
             "epoll_ctl(wake): ", std::strerror(errno));

  obs::log_info("serve", "listening",
                {{"host", Json(options_.host)},
                 {"port", Json(static_cast<double>(port_))},
                 {"workers", Json(static_cast<double>(
                                 workers_.num_threads()))}});
}

Server::~Server() { stop(); }

void Server::request_stop() {
  stopping_.store(true);
  // Only async-signal-safe calls from here down: write() to the eventfd
  // wakes the reactor out of epoll_wait, shutdown() stops the listening
  // socket from producing new accepts. close()/join() happen later in
  // stop() on a normal thread.
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t written =
        ::write(wake_fd_, &one, sizeof(one));
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::serve_forever() { event_loop(); }

void Server::start() {
  SM_REQUIRE(!reactor_thread_.joinable(), "server already started");
  reactor_thread_ = std::thread([this] { event_loop(); });
}

std::size_t Server::live_connections() {
  const std::int64_t n = tstats_.connections.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

void Server::event_loop() {
  std::vector<epoll_event> events(128);
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      obs::log_warn("serve", "epoll_wait failed",
                    {{"errno", Json(std::strerror(errno))}});
      break;
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == this) {
        accept_ready();
      } else if (tag == &wake_fd_) {
        drain_completions();
      } else {
        // Connection events can be stale within a batch (an earlier event
        // scheduled the close); `closing` + the map lookup reject them
        // before they can touch a dead connection.
        Connection* connection = static_cast<Connection*>(tag);
        if (connection->closing) continue;
        const auto it = connections_.find(connection->fd);
        if (it == connections_.end() || it->second.get() != connection) {
          continue;
        }
        handle_event(connection, events[i].events);
      }
      if (stopping_.load()) break;
    }
    close_scheduled();
    if (options_.idle_timeout_seconds > 0) {
      close_idle_connections();
      close_scheduled();
    }
  }
  drain_connections();
}

int Server::poll_timeout_ms() const {
  // Without an idle timeout the reactor is purely event-driven; with one
  // it must wake periodically to scan, at a fraction of the timeout so
  // expiry is detected within ~25% of the configured value.
  if (options_.idle_timeout_seconds <= 0 || connections_.empty()) return -1;
  const int ms = static_cast<int>(options_.idle_timeout_seconds * 250.0);
  return std::clamp(ms, 10, 1000);
}

void Server::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Transient conditions must not kill a long-running service: a
      // client aborting mid-handshake (ECONNABORTED/EPROTO) or a
      // descriptor-exhaustion burst (EMFILE/ENFILE — yield this round so
      // in-flight connections can drain and free descriptors).
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        obs::log_warn("serve", "accept failed (transient)",
                      {{"errno", Json(std::strerror(errno))}});
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        obs::log_warn("serve", "out of file descriptors; backing off",
                      {{"errno", Json(std::strerror(errno))}});
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return;
      }
      return;  // listening socket shut down (stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    if (!options_.auth_secret.empty()) {
      connection->auth.challenge = fleet::random_challenge();
    }
    connection->last_activity = std::chrono::steady_clock::now();
    connection->events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = connection.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      obs::log_warn("serve", "epoll_ctl(add) failed",
                    {{"errno", Json(std::strerror(errno))}});
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(connection));
    tstats_.accepted.fetch_add(1, std::memory_order_relaxed);
    tstats_.connections.fetch_add(1, std::memory_order_relaxed);
    transport_metrics().accepted.add(1);
    transport_metrics().connections.add(1);
    obs::log_debug("serve", "connection accepted",
                   {{"fd", Json(static_cast<double>(fd))}});
  }
}

void Server::handle_event(Connection* connection, std::uint32_t events) {
  if (events & (EPOLLERR | EPOLLHUP)) {
    // The peer is gone in both directions; any undelivered reply bytes
    // have nowhere to go.
    schedule_close(connection);
    return;
  }
  if (events & EPOLLOUT) flush_output(connection);
  if (connection->closing) return;
  if (events & EPOLLIN) read_ready(connection);
}

void Server::read_ready(Connection* connection) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      connection->last_activity = std::chrono::steady_clock::now();
      if (connection->mode == Connection::Mode::kDrain) continue;  // discard
      connection->in.append(chunk, static_cast<std::size_t>(n));
      // A peer streaming bytes with no newline is caught by the line cap
      // in process_input; stop reading this round once past it so one
      // hostile connection cannot starve the reactor.
      if (connection->in.size() > options_.max_line_bytes) break;
      continue;
    }
    if (n == 0) {
      connection->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    schedule_close(connection);  // connection reset or similar
    return;
  }

  const auto it = connections_.find(connection->fd);
  if (it == connections_.end()) return;
  process_input(it->second);
  if (connection->closing) return;

  if (connection->peer_eof) {
    // Everything the peer will ever send is in `in`; deliver what is
    // still owed (dispatched or queued replies), then close.
    if (connection->inflight == 0 &&
        connection->out_offset >= connection->out.size()) {
      schedule_close(connection);
    } else {
      connection->close_after_flush = true;
      update_interest(connection);
    }
  }
}

void Server::process_input(const ConnectionPtr& connection) {
  Connection* c = connection.get();
  for (;;) {
    if (c->closing) return;
    switch (c->mode) {
      case Connection::Mode::kSniff: {
        const FirstLine first = sniff_first_line(c->in);
        if (first == FirstLine::kNeedMore) return;
        c->mode = first == FirstLine::kHttpGet ? Connection::Mode::kHttp
                                               : Connection::Mode::kNdjson;
        continue;
      }
      case Connection::Mode::kHttp: {
        if (c->in.find('\n') == std::string::npos) {
          if (c->in.size() > options_.max_line_bytes) {
            obs::log_warn("serve", "request line exceeds cap; closing",
                          {{"fd", Json(static_cast<double>(c->fd))}});
            c->in.clear();
            c->mode = Connection::Mode::kDrain;
            c->close_after_flush = true;
            enqueue_output(c, "HTTP/1.0 414 URI Too Long\r\n"
                              "Connection: close\r\n\r\n");
          }
          return;
        }
        handle_http_line(c);
        return;  // mode is kDrain now; remaining header bytes are discarded
      }
      case Connection::Mode::kDrain:
        c->in.clear();
        return;
      case Connection::Mode::kNdjson: {
        const std::size_t newline = c->in.find('\n');
        if (newline == std::string::npos) {
          if (c->in.size() > options_.max_line_bytes) {
            obs::log_warn("serve", "request line exceeds cap; closing",
                          {{"fd", Json(static_cast<double>(c->fd))}});
            c->in.clear();
            c->mode = Connection::Mode::kDrain;
            c->close_after_flush = true;
            enqueue_output(
                c, render_error(Json(), "request line exceeds " +
                                            std::to_string(
                                                options_.max_line_bytes) +
                                            " bytes"));
          }
          return;
        }
        std::string line = c->in.substr(0, newline);
        c->in.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        dispatch_line(connection, std::move(line));
        continue;
      }
    }
  }
}

void Server::handle_http_line(Connection* connection) {
  const std::size_t newline = connection->in.find('\n');
  std::string line = connection->in.substr(0, newline);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  connection->in.clear();
  // One-shot HTTP: answer, half-close our side once flushed, then keep
  // reading until the client's EOF — closing with unread header bytes
  // pending could RST the response away before the scraper reads it.
  connection->mode = Connection::Mode::kDrain;
  connection->drain_after_flush = true;
  enqueue_output(connection,
                 http_response_for(line, !options_.auth_secret.empty()));
}

void Server::dispatch_line(const ConnectionPtr& connection, std::string line) {
  Connection* c = connection.get();
  const std::int64_t global =
      tstats_.inflight.load(std::memory_order_relaxed);
  const bool over_global =
      options_.max_inflight > 0 && global >= options_.max_inflight;
  const bool over_connection =
      options_.max_inflight_per_connection > 0 &&
      c->inflight >= options_.max_inflight_per_connection;
  if (over_global || over_connection) {
    // Refuse now, with a reply the client can match by id, instead of
    // queueing without bound. The named scope tells operators which cap
    // to raise.
    tstats_.busy.fetch_add(1, std::memory_order_relaxed);
    transport_metrics().busy.add(1);
    enqueue_output(c, render_busy(line, over_global ? "server" : "connection"));
    return;
  }

  c->inflight += 1;
  tstats_.inflight.fetch_add(1, std::memory_order_relaxed);
  transport_metrics().inflight.add(1);
  workers_.submit([this, connection, line = std::move(line)] {
    // Per-call Wire: the shared limits/stats plus *this* connection's
    // auth session (the held ConnectionPtr keeps it alive).
    Wire wire = wire_;
    wire.auth = &connection->auth;
    HandledLine handled = handle_request(*service_, line, wire);
    {
      const std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(
          {connection, std::move(handled.reply), handled.shutdown});
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t written =
        ::write(wake_fd_, &one, sizeof(one));
  });
}

void Server::drain_completions() {
  std::uint64_t ticks = 0;
  [[maybe_unused]] const ssize_t consumed =
      ::read(wake_fd_, &ticks, sizeof(ticks));

  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    tstats_.inflight.fetch_sub(1, std::memory_order_relaxed);
    transport_metrics().inflight.add(-1);
    Connection* c = completion.connection.get();
    if (c->closed.load(std::memory_order_acquire)) {
      // The client left before its reply was ready. A shutdown request
      // still takes effect — the reply just has nowhere to go.
      if (completion.shutdown) stopping_.store(true);
      continue;
    }
    c->inflight -= 1;
    c->last_activity = std::chrono::steady_clock::now();
    // Reply first, act on shutdown only once the bytes are flushed:
    // acting earlier would race teardown against the client's read of
    // this very response.
    if (completion.shutdown) c->shutdown_after_flush = true;
    enqueue_output(c, completion.reply);
  }
}

void Server::enqueue_output(Connection* connection, const std::string& bytes) {
  connection->out.append(bytes);
  flush_output(connection);
  if (connection->closing) return;
  const std::size_t pending = connection->out.size() - connection->out_offset;
  if (options_.max_output_bytes > 0 && pending > options_.max_output_bytes &&
      !connection->paused) {
    // A slow reader cannot buffer the server out of memory: stop reading
    // (and so dispatching) for this connection until the peer drains.
    connection->paused = true;
    update_interest(connection);
  }
}

void Server::flush_output(Connection* connection) {
  while (connection->out_offset < connection->out.size()) {
    const ssize_t n = ::send(
        connection->fd, connection->out.data() + connection->out_offset,
        connection->out.size() - connection->out_offset,
        MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      connection->out_offset += static_cast<std::size_t>(n);
      connection->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    schedule_close(connection);  // peer is gone; undeliverable
    return;
  }
  if (connection->out_offset >= connection->out.size()) {
    connection->out.clear();
    connection->out_offset = 0;
  } else if (connection->out_offset > (1u << 18)) {
    // Compact occasionally so a long-lived slow connection does not keep
    // already-sent bytes resident forever.
    connection->out.erase(0, connection->out_offset);
    connection->out_offset = 0;
  }

  const std::size_t pending = connection->out.size() - connection->out_offset;
  if (connection->paused && pending <= options_.max_output_bytes / 2) {
    connection->paused = false;
  }
  if (pending == 0) {
    if (connection->drain_after_flush) {
      connection->drain_after_flush = false;
      ::shutdown(connection->fd, SHUT_WR);
    }
    if (connection->shutdown_after_flush) {
      connection->shutdown_after_flush = false;
      shutdown_pending_ = true;
      stopping_.store(true);
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t written =
          ::write(wake_fd_, &one, sizeof(one));
    }
    if (connection->close_after_flush && connection->inflight == 0) {
      schedule_close(connection);
      return;
    }
  }
  update_interest(connection);
}

void Server::update_interest(Connection* connection) {
  if (connection->closing) return;
  std::uint32_t wanted = 0;
  if (!connection->paused && !connection->peer_eof) wanted |= EPOLLIN;
  if (connection->out_offset < connection->out.size()) wanted |= EPOLLOUT;
  if (wanted == connection->events) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.ptr = connection;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &ev) == 0) {
    connection->events = wanted;
  }
}

void Server::schedule_close(Connection* connection) {
  if (connection->closing) return;
  connection->closing = true;
  connection->closed.store(true, std::memory_order_release);
  close_queue_.push_back(connection);
}

void Server::close_scheduled() {
  for (Connection* connection : close_queue_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd, nullptr);
    ::close(connection->fd);
    tstats_.connections.fetch_sub(1, std::memory_order_relaxed);
    transport_metrics().connections.add(-1);
    obs::log_debug("serve", "connection closed",
                   {{"fd", Json(static_cast<double>(connection->fd))}});
    connections_.erase(connection->fd);  // may free `connection`
  }
  close_queue_.clear();
}

void Server::close_idle_connections() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::duration<double>(
      options_.idle_timeout_seconds);
  for (const auto& [fd, connection] : connections_) {
    Connection* c = connection.get();
    if (c->closing || c->inflight > 0) continue;
    if (c->out_offset < c->out.size()) continue;  // still owes bytes
    if (now - c->last_activity < limit) continue;
    tstats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    transport_metrics().idle_closed.add(1);
    obs::log_debug("serve", "idle connection closed",
                   {{"fd", Json(static_cast<double>(fd))}});
    schedule_close(c);
  }
}

void Server::drain_connections() {
  // The stop path: accept no more lines, deliver every reply already owed
  // (dispatched requests finish on the pool and flush), then close. This
  // is the drain the CLI promises on SIGTERM.
  for (const auto& [fd, connection] : connections_) {
    Connection* c = connection.get();
    if (c->closing) continue;
    ::shutdown(c->fd, SHUT_RD);
    c->in.clear();
    c->mode = Connection::Mode::kDrain;
    c->paused = false;
    if (c->inflight == 0 && c->out_offset >= c->out.size()) {
      schedule_close(c);
    } else {
      c->close_after_flush = true;
      update_interest(c);
    }
  }
  close_scheduled();

  std::vector<epoll_event> events(128);
  while (!connections_.empty()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == this) continue;  // no new work during drain
      if (tag == &wake_fd_) {
        drain_completions();
        continue;
      }
      Connection* connection = static_cast<Connection*>(tag);
      if (connection->closing) continue;
      const auto it = connections_.find(connection->fd);
      if (it == connections_.end() || it->second.get() != connection) continue;
      handle_event(connection, events[i].events);
    }
    close_scheduled();
  }
}

void Server::stop() {
  request_stop();
  if (reactor_thread_.joinable()) reactor_thread_.join();

  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_) return;
  stopped_ = true;

  // The reactor has exited and drained; wait out any worker still
  // rendering a reply nobody will read (its completion is dropped, but it
  // must not outlive the Service it references).
  workers_.wait_idle();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  obs::log_info("serve", "stopped");
}

}  // namespace serve
