#include "serve/socket_io.hpp"

#include <cerrno>

#include <sys/socket.h>

namespace serve {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace serve
