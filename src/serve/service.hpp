// The serving core: a long-lived, concurrent front to the experiment
// engine's generalized jobs.
//
// Three cache layers answer a query, cheapest first:
//
//   1. An in-memory, byte-bounded LRU over finished artifacts — repeat
//      queries cost a map lookup and a string copy.
//   2. Single-flight request coalescing: while a job is being computed,
//      every identical concurrent query joins the in-flight computation
//      instead of starting its own — N clients asking for the same cold
//      sweep trigger exactly one solve and one store write.
//   3. The content-addressed disk ResultStore (shared with the batch
//      CLI): a restarted server — or one pointed at a cache a sweep
//      already populated — answers warm without re-solving.
//
// Executions fan out across one support::ThreadPool sized at
// construction, which bounds concurrent solves no matter how many
// connections the transport accepts; connection threads block on the
// flight of their query, they never occupy a pool slot themselves (so
// pool starvation cannot deadlock the transport).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/generic.hpp"
#include "engine/store.hpp"
#include "fleet/lease.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace serve {

struct ServiceOptions {
  /// Content-addressed store directory; empty serves from memory only
  /// (no warm restarts, but LRU and coalescing still apply).
  std::string cache_dir;
  /// Concurrent jobs (the pool width); <= 0 means all hardware threads.
  int threads = 0;
  /// Worker threads *inside* each job (Bellman-sweep fan-out, engine
  /// chains). Total CPU demand is roughly threads x job_threads, so the
  /// default keeps each job serial: a saturated pool then uses every
  /// core exactly once instead of oversubscribing cores^2. Raise it on
  /// latency-sensitive deployments with few concurrent clients.
  int job_threads = 1;
  /// LRU capacity in payload bytes; 0 disables the in-memory layer.
  std::size_t lru_bytes = 64ull << 20;
  /// Cross-process single-flight tuning (lease files under
  /// <cache_dir>/leases; see fleet/lease.hpp). Only consulted when a
  /// cache_dir is set — N replicas sharing it then execute each JobKey
  /// exactly once fleet-wide.
  fleet::LeaseOptions lease;
};

/// Where a response came from (reported to clients and to the bench).
enum class Source : std::uint8_t {
  kLru,        ///< In-memory hit.
  kStore,      ///< Disk store hit.
  kSolve,      ///< Computed by this request.
  kCoalesced,  ///< Joined another request's in-flight computation.
};

const char* to_string(Source source);

struct QueryOutcome {
  /// Shared, never null on success: cache hits hand out the resident
  /// buffer instead of copying multi-megabyte artifacts per request.
  std::shared_ptr<const std::string> payload;
  double seconds = 0.0;  ///< Original computation wall-clock.
  Source source = Source::kSolve;
  bool cached = false;  ///< Any layer short of a fresh solve.
};

/// Monotonic counters since service start. Snapshotting these never
/// touches the LRU mutex — every source field is a relaxed atomic, so a
/// `stats`/`metrics` poll cannot contend with request handling (reads may
/// interleave with concurrent updates; each field is individually exact).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t lru_hits = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t solves = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t errors = 0;    ///< Executor/dispatch failures.
  std::uint64_t rejected = 0;  ///< Protocol-level rejections (note_rejected).
  std::uint64_t lru_evictions = 0;
  /// Fleet single-flight view (cache_dir set): leases this replica won
  /// and executed under, store entries it observed another flight
  /// complete (its own solve skipped), and stale leases it took over.
  /// Summed across replicas, fleet_executions equals the number of
  /// distinct cold JobKeys — the "exactly one solve fleet-wide" check.
  std::uint64_t fleet_executions = 0;
  std::uint64_t fleet_waits = 0;
  std::uint64_t fleet_takeovers = 0;
  std::size_t lru_bytes = 0;    ///< Current LRU payload residency.
  std::size_t lru_entries = 0;
  double uptime_seconds = 0.0;  ///< Since Service construction.
  /// Requests per kind (analysis kinds via execute(), admin kinds via
  /// note_admin()), sorted by kind name. Every kind the service can
  /// answer appears, zeros included.
  std::vector<std::pair<std::string, std::uint64_t>> kinds;
};

class Service {
 public:
  /// Uses the built-in executor registry (engine/kinds.hpp).
  explicit Service(ServiceOptions options);
  /// Custom registry (tests inject slow or counting executors).
  Service(ServiceOptions options, const engine::ExecutorRegistry& registry);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Answers one query through the cache layers. Blocks until the artifact
  /// is available. Throws support::Error on executor failure or an
  /// unknown kind (coalesced waiters of a failed flight all throw).
  QueryOutcome execute(const engine::GenericJob& job);

  /// Records a request that was rejected before reaching execute()
  /// (malformed JSON, unknown kind/field, out-of-range parameters) —
  /// without this the stats would show zero errors while clients are
  /// being turned away.
  void note_rejected();

  /// Records an admin request (ping | stats | metrics | shutdown) in the
  /// per-kind counts. Deliberately does not bump `requests`, which keeps
  /// its historical meaning: analysis executions plus rejections.
  void note_admin(const std::string& kind);

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }
  const engine::ResultStore& store() const { return store_; }
  /// The executor registry this service dispatches to (the `ping`
  /// capability handshake advertises its kinds).
  const engine::ExecutorRegistry& registry() const { return registry_; }

 private:
  /// Payloads live behind shared_ptr so cache hits hand out a reference
  /// under the lock and copy (if at all) outside it — the global mutex
  /// never serializes on a multi-megabyte memcpy.
  using PayloadPtr = std::shared_ptr<const std::string>;

  struct LruEntry {
    std::string key;  ///< Canonical job key (collision-proof identity).
    PayloadPtr payload;
    double seconds = 0.0;
  };

  /// One in-flight computation; joiners wait on `done`.
  struct Flight {
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
    bool failed = false;
    std::string error;
    PayloadPtr payload;
    double seconds = 0.0;
    Source source = Source::kSolve;  ///< How the leader resolved it.
  };

  /// Inserts into the LRU and evicts past the byte budget. Requires
  /// mutex_ held.
  void lru_insert(const std::string& key, const PayloadPtr& payload,
                  double seconds);

  /// Bumps the per-kind request count (no-op for unknown kinds — the
  /// count table is frozen at construction).
  void note_kind(const std::string& kind);

  /// run_generic wrapped in the fleet lease (store-backed services):
  /// exactly one process executes a cold key no matter how many replicas
  /// share the cache directory; everyone else reads the completed entry.
  engine::GenericOutcome run_shared(const engine::JobKey& key,
                                    const engine::GenericJob& job);

  ServiceOptions options_;
  const engine::ExecutorRegistry& registry_;
  engine::ResultStore store_;
  engine::ExecContext context_;
  support::ThreadPool pool_;
  const support::Timer uptime_;

  mutable std::mutex mutex_;
  std::list<LruEntry> lru_;  ///< Front = most recent.
  std::unordered_map<std::string, std::list<LruEntry>::iterator> lru_index_;
  std::size_t lru_bytes_ = 0;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

  // Stats counters live outside mutex_ (relaxed atomics) so stats() is a
  // pure read; lru_bytes_now_/lru_entries_now_ mirror the mutex-guarded
  // LRU state for the same reason.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> lru_hits_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> lru_evictions_{0};
  std::atomic<std::uint64_t> fleet_executions_{0};
  std::atomic<std::uint64_t> fleet_waits_{0};
  std::atomic<std::uint64_t> fleet_takeovers_{0};
  std::atomic<std::size_t> lru_bytes_now_{0};
  std::atomic<std::size_t> lru_entries_now_{0};
  /// Per-kind request counts. The key set is frozen at construction
  /// (executor kinds + admin kinds), so concurrent lookups never mutate
  /// the map and need no lock; the values are atomics.
  std::map<std::string, std::atomic<std::uint64_t>> kind_counts_;
};

}  // namespace serve
