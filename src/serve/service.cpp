#include "serve/service.hpp"

#include <utility>

#include "engine/kinds.hpp"
#include "fleet/lease.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace serve {

namespace {

/// Process-global serve metrics, mirroring the per-instance ServiceStats
/// atomics (two relaxed increments per event — both cheap). Registered at
/// static init so a fresh `metrics` scrape lists the family at zero.
struct ServeMetrics {
  obs::Counter& requests = obs::counter(
      "selfish_serve_requests_total",
      "Analysis executions plus protocol rejections");
  obs::Counter& lru_hits = obs::counter(
      "selfish_serve_lru_hits_total", "Requests answered from the LRU");
  obs::Counter& store_hits = obs::counter(
      "selfish_serve_store_hits_total",
      "Requests answered from the disk store");
  obs::Counter& solves = obs::counter(
      "selfish_serve_solves_total", "Requests that computed a fresh artifact");
  obs::Counter& coalesced = obs::counter(
      "selfish_serve_coalesced_total",
      "Requests that joined an identical in-flight computation");
  obs::Counter& errors = obs::counter(
      "selfish_serve_errors_total", "Executor or dispatch failures");
  obs::Counter& rejected = obs::counter(
      "selfish_serve_rejected_total", "Protocol-level rejections");
  obs::Counter& lru_evictions = obs::counter(
      "selfish_serve_lru_evictions_total",
      "Entries evicted past the LRU byte budget");
  obs::Gauge& lru_bytes = obs::gauge(
      "selfish_serve_lru_bytes", "Current LRU payload residency in bytes");
  obs::Gauge& lru_entries = obs::gauge(
      "selfish_serve_lru_entries", "Artifacts resident in the LRU");
  obs::Gauge& inflight = obs::gauge(
      "selfish_serve_inflight", "Queries currently inside execute()");
  obs::Counter& fleet_executions = obs::counter(
      "selfish_serve_fleet_executions_total",
      "Cold jobs this replica executed under a fleet lease");
  obs::Counter& fleet_waits = obs::counter(
      "selfish_serve_fleet_waits_total",
      "Cold jobs resolved by another replica's flight while this one waited");
  obs::Counter& fleet_takeovers = obs::counter(
      "selfish_serve_fleet_takeovers_total",
      "Stale (crashed-holder) leases this replica claimed");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics;
  return metrics;
}

[[maybe_unused]] const ServeMetrics& g_registered_serve_metrics =
    serve_metrics();

/// RAII in-flight gauge bump: exception-safe across execute()'s throws.
class InflightGuard {
 public:
  InflightGuard() { serve_metrics().inflight.add(1); }
  ~InflightGuard() { serve_metrics().inflight.add(-1); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
};

}  // namespace

const char* to_string(Source source) {
  switch (source) {
    case Source::kLru: return "lru";
    case Source::kStore: return "store";
    case Source::kSolve: return "solve";
    case Source::kCoalesced: return "coalesced";
  }
  return "?";
}

Service::Service(ServiceOptions options)
    : Service(std::move(options), engine::builtin_executors()) {}

Service::Service(ServiceOptions options,
                 const engine::ExecutorRegistry& registry)
    : options_(std::move(options)),
      registry_(registry),
      store_(options_.cache_dir),
      pool_(support::resolve_thread_count(options_.threads)) {
  context_.cache_dir = options_.cache_dir;
  context_.threads = support::resolve_thread_count(options_.job_threads);
  // Freeze the per-kind count table: one slot per executor kind plus the
  // admin kinds. After construction the map is structurally immutable, so
  // note_kind() reads it without a lock.
  for (const std::string& kind : registry_.kinds()) kind_counts_[kind];
  for (const char* kind :
       {"ping", "stats", "metrics", "trace-dump", "shutdown"}) {
    kind_counts_[kind];
  }
}

Service::~Service() { pool_.wait_idle(); }

void Service::note_kind(const std::string& kind) {
  const auto it = kind_counts_.find(kind);
  if (it != kind_counts_.end()) {
    it->second.fetch_add(1, std::memory_order_relaxed);
  }
}

void Service::lru_insert(const std::string& key, const PayloadPtr& payload,
                         double seconds) {
  if (options_.lru_bytes == 0) return;
  if (const auto it = lru_index_.find(key); it != lru_index_.end()) {
    return;  // raced with another flight of the same key; keep the first
  }
  // One artifact larger than the whole budget would evict everything and
  // still not fit; serve it from the store instead.
  if (payload->size() > options_.lru_bytes) return;
  lru_.push_front(LruEntry{key, payload, seconds});
  lru_index_[key] = lru_.begin();
  lru_bytes_ += payload->size();
  while (lru_bytes_ > options_.lru_bytes) {
    const LruEntry& victim = lru_.back();
    lru_bytes_ -= victim.payload->size();
    lru_index_.erase(victim.key);
    lru_.pop_back();
    lru_evictions_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().lru_evictions.add(1);
  }
  lru_bytes_now_.store(lru_bytes_, std::memory_order_relaxed);
  lru_entries_now_.store(lru_.size(), std::memory_order_relaxed);
  serve_metrics().lru_bytes.set(static_cast<std::int64_t>(lru_bytes_));
  serve_metrics().lru_entries.set(static_cast<std::int64_t>(lru_.size()));
}

engine::GenericOutcome Service::run_shared(const engine::JobKey& key,
                                           const engine::GenericJob& job) {
  // Memory-only services have nothing to coordinate through; the
  // in-process Flight map is the whole single-flight story.
  if (!store_.enabled()) {
    return engine::run_generic(registry_, store_, context_, job);
  }
  // Fast path: the entry exists (a warm restart, a sweep that ran before
  // us, or another replica that finished long ago) — no lease traffic.
  if (std::optional<engine::GenericResult> hit = store_.load_generic(key)) {
    engine::GenericOutcome outcome;
    outcome.result = std::move(*hit);
    outcome.cached = true;
    return outcome;
  }
  // Cold: race the fleet for the lease. The winner executes (run_generic
  // re-probes the store internally, so losing a photo-finish to a replica
  // that stored between our probe and our lease win still reads back
  // cached); losers poll until the entry appears, then read it.
  engine::GenericOutcome executed;
  std::optional<engine::GenericResult> waited;
  const fleet::FlightReport report = fleet::single_flight(
      store_.dir() + "/leases", key.hex(), options_.lease,
      [&] {
        waited = store_.load_generic(key);
        return waited.has_value();
      },
      [&] { executed = engine::run_generic(registry_, store_, context_, job); });
  if (report.takeovers > 0) {
    fleet_takeovers_.fetch_add(report.takeovers, std::memory_order_relaxed);
    serve_metrics().fleet_takeovers.add(
        static_cast<std::int64_t>(report.takeovers));
  }
  if (report.role == fleet::FlightRole::kWaited) {
    fleet_waits_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().fleet_waits.add(1);
    engine::GenericOutcome outcome;
    outcome.result = std::move(*waited);
    outcome.cached = true;
    return outcome;
  }
  if (!executed.cached) {
    fleet_executions_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().fleet_executions.add(1);
  }
  return executed;
}

QueryOutcome Service::execute(const engine::GenericJob& job) {
  const InflightGuard inflight;
  // The service-layer span of the request tree. It is current while the
  // leader's pool job is submitted below, so the engine/kernel spans the
  // job opens nest under it (ThreadPool::submit captures the context).
  obs::Span span("serve.execute");
  span.attr("kind", serve::Json(job.kind));
  requests_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests.add(1);
  note_kind(job.kind);

  // Unknown kinds must reject on the caller's thread, before a flight is
  // created (the pool would otherwise own the throw).
  const engine::Executor* executor = registry_.find(job.kind);
  if (executor == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().errors.add(1);
    throw support::InvalidArgument("unknown job kind " + job.kind);
  }

  const engine::JobKey key = engine::generic_job_key(job);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  PayloadPtr lru_payload;
  double lru_seconds = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = lru_index_.find(key.canonical);
        it != lru_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      lru_payload = it->second->payload;  // copy the bytes outside the lock
      lru_seconds = it->second->seconds;
    } else {
      auto& slot = flights_[key.canonical];
      if (slot == nullptr) {
        slot = std::make_shared<Flight>();
        leader = true;
      } else {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().coalesced.add(1);
      }
      flight = slot;
    }
  }
  if (lru_payload != nullptr) {
    lru_hits_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().lru_hits.add(1);
    QueryOutcome outcome;
    outcome.payload = std::move(lru_payload);
    outcome.seconds = lru_seconds;
    outcome.source = Source::kLru;
    outcome.cached = true;
    return outcome;
  }

  if (leader) {
    // The leader executes on the pool (bounding concurrent solves) and
    // publishes through the flight; it then waits like every joiner.
    pool_.submit([this, flight, key, job] {
      PayloadPtr payload;
      double seconds = 0.0;
      Source source = Source::kSolve;
      bool failed = false;
      std::string error;
      try {
        engine::GenericOutcome outcome = run_shared(key, job);
        payload = std::make_shared<const std::string>(
            std::move(outcome.result.payload));
        seconds = outcome.result.seconds;
        source = outcome.cached ? Source::kStore : Source::kSolve;
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
      if (failed) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().errors.add(1);
        obs::log_error("serve", "job failed",
                       {{"kind", serve::Json(job.kind)},
                        {"error", serve::Json(error)}});
      } else if (source == Source::kStore) {
        store_hits_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().store_hits.add(1);
      } else {
        solves_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().solves.add(1);
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!failed) lru_insert(key.canonical, payload, seconds);
        flights_.erase(key.canonical);
      }
      {
        const std::lock_guard<std::mutex> lock(flight->mutex);
        flight->finished = true;
        flight->failed = failed;
        flight->error = std::move(error);
        flight->payload = std::move(payload);
        flight->seconds = seconds;
        flight->source = source;
      }
      flight->done.notify_all();
    });
  }

  QueryOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done.wait(lock, [&] { return flight->finished; });
    if (flight->failed) throw support::Error(flight->error);
    outcome.payload = flight->payload;  // shared, no byte copy
    outcome.seconds = flight->seconds;
    outcome.source = leader ? flight->source : Source::kCoalesced;
  }
  outcome.cached = outcome.source != Source::kSolve;
  return outcome;
}

void Service::note_rejected() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests.add(1);
  serve_metrics().rejected.add(1);
}

void Service::note_admin(const std::string& kind) { note_kind(kind); }

ServiceStats Service::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.lru_hits = lru_hits_.load(std::memory_order_relaxed);
  out.store_hits = store_hits_.load(std::memory_order_relaxed);
  out.solves = solves_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.lru_evictions = lru_evictions_.load(std::memory_order_relaxed);
  out.fleet_executions = fleet_executions_.load(std::memory_order_relaxed);
  out.fleet_waits = fleet_waits_.load(std::memory_order_relaxed);
  out.fleet_takeovers = fleet_takeovers_.load(std::memory_order_relaxed);
  out.lru_bytes = lru_bytes_now_.load(std::memory_order_relaxed);
  out.lru_entries = lru_entries_now_.load(std::memory_order_relaxed);
  out.uptime_seconds = uptime_.seconds();
  out.kinds.reserve(kind_counts_.size());
  for (const auto& [kind, count] : kind_counts_) {
    out.kinds.emplace_back(kind, count.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace serve
