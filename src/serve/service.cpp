#include "serve/service.hpp"

#include <utility>

#include "engine/kinds.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace serve {

const char* to_string(Source source) {
  switch (source) {
    case Source::kLru: return "lru";
    case Source::kStore: return "store";
    case Source::kSolve: return "solve";
    case Source::kCoalesced: return "coalesced";
  }
  return "?";
}

Service::Service(ServiceOptions options)
    : Service(std::move(options), engine::builtin_executors()) {}

Service::Service(ServiceOptions options,
                 const engine::ExecutorRegistry& registry)
    : options_(std::move(options)),
      registry_(registry),
      store_(options_.cache_dir),
      pool_(support::resolve_thread_count(options_.threads)) {
  context_.cache_dir = options_.cache_dir;
  context_.threads = support::resolve_thread_count(options_.job_threads);
}

Service::~Service() { pool_.wait_idle(); }

void Service::lru_insert(const std::string& key, const PayloadPtr& payload,
                         double seconds) {
  if (options_.lru_bytes == 0) return;
  if (const auto it = lru_index_.find(key); it != lru_index_.end()) {
    return;  // raced with another flight of the same key; keep the first
  }
  // One artifact larger than the whole budget would evict everything and
  // still not fit; serve it from the store instead.
  if (payload->size() > options_.lru_bytes) return;
  lru_.push_front(LruEntry{key, payload, seconds});
  lru_index_[key] = lru_.begin();
  lru_bytes_ += payload->size();
  while (lru_bytes_ > options_.lru_bytes) {
    const LruEntry& victim = lru_.back();
    lru_bytes_ -= victim.payload->size();
    lru_index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.lru_evictions;
  }
}

QueryOutcome Service::execute(const engine::GenericJob& job) {
  // Unknown kinds must reject on the caller's thread, before a flight is
  // created (the pool would otherwise own the throw).
  const engine::Executor* executor = registry_.find(job.kind);
  if (executor == nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    ++stats_.errors;
    throw support::InvalidArgument("unknown job kind " + job.kind);
  }

  const engine::JobKey key = engine::generic_job_key(job);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  PayloadPtr lru_payload;
  double lru_seconds = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (const auto it = lru_index_.find(key.canonical);
        it != lru_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.lru_hits;
      lru_payload = it->second->payload;  // copy the bytes outside the lock
      lru_seconds = it->second->seconds;
    } else {
      auto& slot = flights_[key.canonical];
      if (slot == nullptr) {
        slot = std::make_shared<Flight>();
        leader = true;
      } else {
        ++stats_.coalesced;
      }
      flight = slot;
    }
  }
  if (lru_payload != nullptr) {
    QueryOutcome outcome;
    outcome.payload = std::move(lru_payload);
    outcome.seconds = lru_seconds;
    outcome.source = Source::kLru;
    outcome.cached = true;
    return outcome;
  }

  if (leader) {
    // The leader executes on the pool (bounding concurrent solves) and
    // publishes through the flight; it then waits like every joiner.
    pool_.submit([this, flight, key, job] {
      PayloadPtr payload;
      double seconds = 0.0;
      Source source = Source::kSolve;
      bool failed = false;
      std::string error;
      try {
        engine::GenericOutcome outcome =
            engine::run_generic(registry_, store_, context_, job);
        payload = std::make_shared<const std::string>(
            std::move(outcome.result.payload));
        seconds = outcome.result.seconds;
        source = outcome.cached ? Source::kStore : Source::kSolve;
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (failed) {
          ++stats_.errors;
        } else {
          if (source == Source::kStore) ++stats_.store_hits;
          else ++stats_.solves;
          lru_insert(key.canonical, payload, seconds);
        }
        flights_.erase(key.canonical);
      }
      {
        const std::lock_guard<std::mutex> lock(flight->mutex);
        flight->finished = true;
        flight->failed = failed;
        flight->error = std::move(error);
        flight->payload = std::move(payload);
        flight->seconds = seconds;
        flight->source = source;
      }
      flight->done.notify_all();
    });
  }

  QueryOutcome outcome;
  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done.wait(lock, [&] { return flight->finished; });
    if (flight->failed) throw support::Error(flight->error);
    outcome.payload = flight->payload;  // shared, no byte copy
    outcome.seconds = flight->seconds;
    outcome.source = leader ? flight->source : Source::kCoalesced;
  }
  outcome.cached = outcome.source != Source::kSolve;
  return outcome;
}

void Service::note_rejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  ++stats_.rejected;
}

ServiceStats Service::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats out = stats_;
  out.lru_bytes = lru_bytes_;
  out.lru_entries = lru_.size();
  return out;
}

}  // namespace serve
