// Shared low-level socket helpers for the serve transport (server and
// client sides use the same partial-send/EINTR discipline).
#pragma once

#include <string>

namespace serve {

/// Writes all of `data` to `fd` (send(2) can be partial under pressure;
/// EINTR is retried, SIGPIPE suppressed). False on a broken connection.
bool send_all(int fd, const std::string& data);

}  // namespace serve
