// Blocking client for the analysis service's line protocol. Used by the
// `selfish-mining query` subcommand, bench_serve's load generator, and
// the end-to-end tests.
#pragma once

#include <string>

#include "serve/json.hpp"

namespace serve {

/// A decoded response line.
struct Reply {
  bool ok = false;
  std::string error;     ///< When !ok.
  std::string kind;      ///< When ok.
  std::string body;      ///< The rendered artifact (analysis kinds).
  std::string source;    ///< lru | store | solve | coalesced.
  std::string trace_id;  ///< Echoed client trace id (empty if none sent).
  bool cached = false;
  double seconds = 0.0;
  Json raw;  ///< The full response object (admin replies carry extras).
};

class Client {
 public:
  /// Connects immediately; throws support::Error on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (newline appended if missing) and blocks for
  /// the response line. Throws support::Error on a broken connection.
  std::string request_raw(const std::string& line);

  /// request_raw + response decoding. A transport-level failure throws; a
  /// protocol-level error comes back as ok=false.
  Reply request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes past the last returned line.
};

/// Parses a response line into a Reply (shared with tests).
Reply decode_reply(const std::string& line);

}  // namespace serve
