// Session client for the analysis service's versioned line protocol
// (protocol v1). Used by the `selfish-mining query` subcommand,
// bench_serve's load generator, and the end-to-end tests.
//
// A Client is a session, not a call: it connects once, pipelines any
// number of requests over the one connection (send() returns immediately
// with the request's session id), and matches replies to requests by the
// echoed `id` — the v1 contract under the event-driven server, which may
// answer pipelined requests out of order. A dropped connection
// reconnects transparently with capped retries and jittered exponential
// backoff, re-sending still-unanswered requests (every analysis kind is
// a pure query, so replay is safe).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "serve/json.hpp"

namespace serve {

/// A decoded response line.
struct Reply {
  bool ok = false;
  std::string error;     ///< When !ok.
  std::string code;      ///< Machine-readable failure class (busy, ...).
  std::string kind;      ///< When ok.
  std::string body;      ///< The rendered artifact (analysis kinds).
  std::string source;    ///< lru | store | solve | coalesced.
  std::string trace_id;  ///< Echoed client trace id (empty if none sent).
  bool cached = false;
  double seconds = 0.0;
  Json raw;  ///< The full response object (admin replies carry extras).
};

struct ClientOptions {
  /// Reconnect attempts per drop before the operation throws.
  int max_retries = 3;
  /// First retry delay; doubles per attempt (with jitter) up to the max.
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 1.0;
  /// Re-send unanswered pipelined requests after a reconnect. Safe for
  /// the analysis kinds (pure queries); disable when replaying a request
  /// must not happen twice.
  bool resend_on_reconnect = true;
  /// Deployment shared secret for secured servers (see fleet/auth).
  /// Nonempty = the session runs the ping HMAC challenge/response right
  /// after every (re)connect, before anything else is sent.
  std::string auth_secret;
};

class Client {
 public:
  /// Connects immediately; throws support::Error on failure.
  Client(const std::string& host, int port, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelines one request (a JSON object line): stamps it with `"v":1`
  /// and a session `id` (keeping a numeric id the caller already set) and
  /// sends without waiting. Returns the id await() matches the reply by.
  /// Throws support::InvalidArgument for non-object lines (those cannot
  /// carry an id — use request_raw) and support::Error once the
  /// connection is lost beyond the retry budget.
  std::uint64_t send(const std::string& line);

  /// Blocks until the reply with this id arrives (replies for other
  /// pipelined ids are stashed for their own await). Throws
  /// support::Error on a connection lost beyond the retry budget and on
  /// ids never sent.
  Reply await(std::uint64_t id);

  /// send() + await(): one request, its reply. A transport-level failure
  /// throws; a protocol-level error comes back as ok=false.
  Reply request(const std::string& line);

  /// The capability handshake: asks the server for its protocol version,
  /// supported kinds, and transport limits (reply.raw carries them).
  Reply ping();

  /// Sends one line verbatim — no id stamping, no version stamping — and
  /// blocks for the next response line, whatever it is. This is the
  /// byte-transparent escape hatch (`query --raw`): what goes out and
  /// comes back is exactly what the peer sees. Do not interleave with
  /// unanswered pipelined send()s — raw replies are matched by position.
  std::string request_raw(const std::string& line);

  /// Times the connection was re-established after a drop.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  void connect_now();  ///< One attempt; throws support::Error.
  /// Runs the ping auth challenge/response on a fresh connection (no-op
  /// without a secret). Must precede any pipelined traffic: replies are
  /// read positionally, which only a quiet connection guarantees.
  void handshake_now();
  /// Capped, jitter-backoff reconnect loop; re-sends outstanding
  /// requests when options allow (throws if they don't and any exist).
  void reconnect_session();
  void send_bytes(const std::string& wire);  ///< With reconnect retries.
  bool read_line(std::string& line);  ///< False on EOF / connection loss.

  std::string host_;
  int port_ = 0;
  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;  ///< Bytes past the last returned line.
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::string> outstanding_;  ///< id -> wire line.
  std::map<std::uint64_t, Reply> ready_;  ///< Arrived, not yet awaited.
  std::uint64_t reconnects_ = 0;
};

/// Parses a response line into a Reply (shared with tests).
Reply decode_reply(const std::string& line);

}  // namespace serve
