#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "engine/kinds.hpp"
#include "fleet/auth.hpp"
#include "mdp/solve.hpp"
#include "net/network.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace serve {

namespace {

/// Per-kind request latency histogram. Handles for every kind the
/// protocol knows are resolved once (the registry lock is taken only
/// here, at first use); unknown/malformed requests land in kind="other".
obs::Histogram& request_latency(const std::string& kind) {
  static const std::map<std::string, obs::Histogram*> histograms = [] {
    std::map<std::string, obs::Histogram*> handles;
    for (const char* known :
         {"point", "sweep", "threshold", "upper-bound", "net-batch", "ping",
          "stats", "metrics", "trace-dump", "shutdown", "other"}) {
      handles.emplace(
          known, &obs::histogram(
                     "selfish_serve_request_seconds",
                     "End-to-end request latency (parse through render)",
                     obs::exponential_buckets(1e-5, 4.0, 14),
                     std::string("kind=\"") + known + "\""));
    }
    return handles;
  }();
  const auto it = histograms.find(kind);
  return it == histograms.end() ? *histograms.at("other") : *it->second;
}

[[maybe_unused]] obs::Histogram& g_registered_request_latency =
    request_latency("point");

/// Worst-N latency exemplars per request kind: the N slowest requests
/// seen, each with the trace id that identifies its span tree in a
/// `trace-dump`. A slow p99 in the latency histogram thus comes with a
/// concrete trace to pull. Small and mutex-guarded: one record per
/// request, snapshots only on `stats`.
struct Exemplar {
  double seconds = 0.0;
  std::uint64_t trace_id = 0;
};

class ExemplarTable {
 public:
  static constexpr std::size_t kWorstN = 4;

  void record(const std::string& kind, double seconds,
              std::uint64_t trace_id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Exemplar>& worst = worst_[kind];
    worst.push_back(Exemplar{seconds, trace_id});
    std::sort(worst.begin(), worst.end(),
              [](const Exemplar& a, const Exemplar& b) {
                return a.seconds > b.seconds;
              });
    if (worst.size() > kWorstN) worst.resize(kWorstN);
  }

  std::map<std::string, std::vector<Exemplar>> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return worst_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<Exemplar>> worst_;
};

ExemplarTable& exemplars() {
  static ExemplarTable table;
  return table;
}

/// Typed, default-aware field access over a request object. Every field a
/// kind understands is read exactly once; finish() rejects leftovers so
/// typos surface as errors instead of silently applying defaults (the
/// same contract support::Options enforces for CLI flags).
class FieldReader {
 public:
  explicit FieldReader(const Json& object) : object_(object) {
    consumed_.insert("id");
    consumed_.insert("kind");
    consumed_.insert("v");         // parsed by parse_request_object
    consumed_.insert("trace_id");  // parsed by parse_request_object
  }

  double number(const std::string& name, double fallback) {
    const Json* value = take(name);
    return value == nullptr ? fallback : value->as_number();
  }

  int integer(const std::string& name, int fallback) {
    const Json* value = take(name);
    if (value == nullptr) return fallback;
    const double raw = value->as_number();
    if (raw != std::floor(raw) || raw < -2147483648.0 || raw > 2147483647.0) {
      throw ProtocolError("field \"" + name + "\" must be an integer");
    }
    return static_cast<int>(raw);
  }

  std::uint64_t unsigned64(const std::string& name, std::uint64_t fallback) {
    const Json* value = take(name);
    if (value == nullptr) return fallback;
    const double raw = value->as_number();
    if (raw != std::floor(raw) || raw < 0.0 || raw > 9.007199254740992e15) {
      throw ProtocolError("field \"" + name +
                          "\" must be a non-negative integer");
    }
    return static_cast<std::uint64_t>(raw);
  }

  bool boolean(const std::string& name, bool fallback) {
    const Json* value = take(name);
    return value == nullptr ? fallback : value->as_bool();
  }

  std::string string(const std::string& name, const std::string& fallback) {
    const Json* value = take(name);
    return value == nullptr ? fallback : value->as_string();
  }

  /// Rejects fields no reader consumed.
  void finish() const {
    for (const auto& [name, value] : object_.as_object()) {
      if (consumed_.count(name) == 0) {
        throw ProtocolError("unknown field \"" + name + "\"");
      }
    }
  }

 private:
  const Json* take(const std::string& name) {
    consumed_.insert(name);
    return object_.find(name);
  }

  const Json& object_;
  std::set<std::string> consumed_;
};

/// The shared model/solver fields, with the CLI subcommands' defaults.
/// These fallbacks MUST equal the declare() defaults in
/// tools/selfish_mining_cli.cpp — that equality is what makes an empty
/// query byte-identical to the default subcommand invocation
/// (test_serve's DefaultsMatchTheCliSubcommands pins this side).
selfish::AttackParams params_from(FieldReader& fields) {
  selfish::AttackParams params;
  params.p = fields.number("p", 0.3);
  params.gamma = fields.number("gamma", 0.5);
  params.d = fields.integer("d", 2);
  params.f = fields.integer("f", 1);
  params.l = fields.integer("l", 4);
  params.burn_lost_races = fields.boolean("burn-lost-races", false);
  return params;
}

analysis::AnalysisOptions analysis_from(FieldReader& fields) {
  analysis::AnalysisOptions options;
  options.epsilon = fields.number("epsilon", 1e-3);
  options.solver.method =
      mdp::parse_solver_method(fields.string("solver", "vi"));
  return options;
}

engine::GenericJob build_job(const std::string& kind, const Json& object) {
  FieldReader fields(object);
  engine::GenericJob job;
  if (kind == "point") {
    engine::PointQuery query;
    query.params = params_from(fields);
    query.analysis = analysis_from(fields);
    query.stats = fields.boolean("stats", true);
    fields.finish();
    job = engine::make_point_job(query);
  } else if (kind == "sweep") {
    engine::SweepQuery query;
    query.base = params_from(fields);
    query.analysis = analysis_from(fields);
    query.p_min = fields.number("pmin", 0.0);
    query.p_max = fields.number("pmax", 0.3);
    query.step = fields.number("step", 0.05);
    fields.finish();
    job = engine::make_sweep_job(query);
  } else if (kind == "threshold") {
    engine::ThresholdQuery query;
    query.base = params_from(fields);
    query.options.analysis = analysis_from(fields);
    query.options.unfairness_margin = fields.number("margin", 0.005);
    query.options.p_tolerance = fields.number("ptol", 0.005);
    fields.finish();
    job = engine::make_threshold_job(query);
  } else if (kind == "upper-bound") {
    engine::UpperBoundQuery query;
    query.base = params_from(fields);
    query.options.analysis = analysis_from(fields);
    query.options.l_min = fields.integer("lmin", 2);
    query.options.l_max = fields.integer("lmax", 5);
    fields.finish();
    job = engine::make_upper_bound_job(query);
  } else if (kind == "net-batch") {
    engine::NetBatchQuery query;
    query.scenario = fields.string("scenario", "single-optimal");
    query.options.p = fields.number("p", 0.3);
    query.options.gamma = fields.number("gamma", 0.5);
    query.options.delay = fields.number("delay", 0.0);
    query.options.block_interval = fields.number("interval", 600.0);
    query.options.blocks = fields.unsigned64("blocks", 100000);
    query.options.honest_miners = fields.integer("honest", 3);
    query.options.d = fields.integer("d", 2);
    query.options.f = fields.integer("f", 1);
    query.options.l = fields.integer("l", 4);
    query.options.strategy = fields.string("strategy", "optimal");
    query.options.propagation = net::propagation_from_string(
        fields.string("propagation", "direct"));
    query.options.partition_start = fields.number("partition-start", 0.25);
    query.options.partition_stop = fields.number("partition-stop", 0.45);
    query.options.partition_fraction =
        fields.number("partition-frac", 0.5);
    query.options.asymmetry = fields.number("asymmetry", 4.0);
    query.runs = fields.integer("runs", 8);
    query.seed = fields.unsigned64("seed", 24141);
    query.epsilon = fields.number("epsilon", 1e-3);
    fields.finish();
    job = engine::make_net_batch_job(query);
  } else {
    throw ProtocolError(
        "unknown kind \"" + kind +
        "\" (expected point | sweep | threshold | upper-bound | "
        "net-batch | ping | stats | metrics | trace-dump | shutdown)");
  }
  return job;
}

/// Prefixes the echoed id when the client sent one, the protocol version
/// (every reply is versioned — clients gate on it before trusting the
/// rest of the envelope), and the trace id when the request has one
/// (client-supplied or server-minted).
JsonMembers reply_head(const Json& id, bool ok,
                       const std::string& trace_id = "") {
  JsonMembers members;
  if (!id.is_null()) members.emplace_back("id", id);
  members.emplace_back("ok", Json(ok));
  members.emplace_back(
      "v", Json(static_cast<double>(kProtocolVersion)));
  if (!trace_id.empty()) members.emplace_back("trace_id", Json(trace_id));
  return members;
}

std::string finish_reply(JsonMembers members) {
  return Json::object(std::move(members)).dump() + "\n";
}

/// The observability switch position, advertised by `ping` so a client
/// knows whether metrics/trace admin kinds will carry real data.
const char* obs_mode() {
#if SELFISH_OBS_ENABLED
  return obs::enabled() ? "on" : "runtime-off";
#else
  return "compiled-out";
#endif
}

/// `ping` is the protocol v1 capability handshake: protocol version, the
/// job kinds this server executes (from its registry) plus the admin
/// kinds, the transport limits in force, and the obs mode.
std::string render_ping(const Json& id, const Service& service,
                        const Wire& wire, const std::string& trace_id) {
  JsonMembers members = reply_head(id, true, trace_id);
  members.emplace_back("kind", Json("ping"));
  members.emplace_back(
      "protocol", Json(static_cast<double>(kProtocolVersion)));
  std::vector<Json> kinds;
  for (const std::string& kind : service.registry().kinds()) {
    kinds.emplace_back(kind);
  }
  for (const char* kind :
       {"ping", "stats", "metrics", "trace-dump", "shutdown"}) {
    kinds.emplace_back(std::string(kind));
  }
  members.emplace_back("kinds", Json::array(std::move(kinds)));
  JsonMembers limits;
  limits.emplace_back(
      "max_line_bytes",
      Json(static_cast<double>(wire.limits.max_line_bytes)));
  limits.emplace_back("max_inflight",
                      Json(static_cast<double>(wire.limits.max_inflight)));
  limits.emplace_back(
      "max_inflight_per_connection",
      Json(static_cast<double>(wire.limits.max_inflight_per_connection)));
  limits.emplace_back("idle_timeout_seconds",
                      Json(wire.limits.idle_timeout_seconds));
  members.emplace_back("limits", Json::object(std::move(limits)));
  members.emplace_back("obs", Json(obs_mode()));
  // Secured servers advertise the auth state and this connection's
  // challenge — the client hashes the secret over `challenge` and pings
  // again with the result in `auth`. Open servers omit both members, so
  // existing clients and pinned ping-shape tests see unchanged replies.
  if (!wire.auth_secret.empty() && wire.auth != nullptr) {
    const bool authed =
        wire.auth->authenticated.load(std::memory_order_acquire);
    members.emplace_back("auth", Json(authed ? "ok" : "required"));
    members.emplace_back("challenge", Json(wire.auth->challenge));
  }
  return finish_reply(std::move(members));
}

std::string render_stats(const Json& id, const ServiceStats& stats,
                         const Wire& wire, const std::string& trace_id) {
  JsonMembers members = reply_head(id, true, trace_id);
  members.emplace_back("kind", Json("stats"));
  members.emplace_back("requests",
                       Json(static_cast<double>(stats.requests)));
  members.emplace_back("lru_hits",
                       Json(static_cast<double>(stats.lru_hits)));
  members.emplace_back("store_hits",
                       Json(static_cast<double>(stats.store_hits)));
  members.emplace_back("solves", Json(static_cast<double>(stats.solves)));
  members.emplace_back("coalesced",
                       Json(static_cast<double>(stats.coalesced)));
  members.emplace_back("errors", Json(static_cast<double>(stats.errors)));
  members.emplace_back("rejected",
                       Json(static_cast<double>(stats.rejected)));
  members.emplace_back("lru_evictions",
                       Json(static_cast<double>(stats.lru_evictions)));
  members.emplace_back("lru_bytes",
                       Json(static_cast<double>(stats.lru_bytes)));
  members.emplace_back("lru_entries",
                       Json(static_cast<double>(stats.lru_entries)));
  // Cross-process single-flight counters: summing `executions` across all
  // replicas sharing one cache dir must equal the number of distinct cold
  // keys — the fleet-smoke CI job asserts exactly that.
  JsonMembers fleet;
  fleet.emplace_back("executions",
                     Json(static_cast<double>(stats.fleet_executions)));
  fleet.emplace_back("waits", Json(static_cast<double>(stats.fleet_waits)));
  fleet.emplace_back("takeovers",
                     Json(static_cast<double>(stats.fleet_takeovers)));
  members.emplace_back("fleet", Json::object(std::move(fleet)));
  // Millisecond resolution keeps the canonical-double rendering short.
  members.emplace_back(
      "uptime_seconds",
      Json(std::round(stats.uptime_seconds * 1e3) / 1e3));
  JsonMembers kind_counts;
  kind_counts.reserve(stats.kinds.size());
  for (const auto& [kind, count] : stats.kinds) {
    kind_counts.emplace_back(kind, Json(static_cast<double>(count)));
  }
  members.emplace_back("kinds", Json::object(std::move(kind_counts)));
  // Worst-N latency exemplars per kind: each entry names a trace id a
  // `trace-dump` (or the trace sink) can resolve into a full span tree.
  JsonMembers exemplar_members;
  for (const auto& [kind, worst] : exemplars().snapshot()) {
    std::vector<Json> items;
    items.reserve(worst.size());
    for (const Exemplar& exemplar : worst) {
      JsonMembers fields;
      fields.emplace_back("seconds", Json(exemplar.seconds));
      fields.emplace_back(
          "trace_id", Json(obs::format_trace_id(exemplar.trace_id)));
      items.emplace_back(Json::object(std::move(fields)));
    }
    exemplar_members.emplace_back(kind, Json::array(std::move(items)));
  }
  members.emplace_back("exemplars",
                       Json::object(std::move(exemplar_members)));
  // Transport counters (reactor-side: connection and backpressure view),
  // present only when a transport is attached — the transport-free test
  // path has nothing meaningful to report here.
  if (wire.stats != nullptr) {
    const auto count = [](const std::atomic<std::uint64_t>& value) {
      return Json(
          static_cast<double>(value.load(std::memory_order_relaxed)));
    };
    const auto level = [](const std::atomic<std::int64_t>& value) {
      return Json(
          static_cast<double>(value.load(std::memory_order_relaxed)));
    };
    JsonMembers transport;
    transport.emplace_back("connections", level(wire.stats->connections));
    transport.emplace_back("accepted", count(wire.stats->accepted));
    transport.emplace_back("inflight", level(wire.stats->inflight));
    transport.emplace_back("busy", count(wire.stats->busy));
    transport.emplace_back("idle_closed", count(wire.stats->idle_closed));
    members.emplace_back("transport", Json::object(std::move(transport)));
  }
  return finish_reply(std::move(members));
}

/// `metrics` reply: the Prometheus text exposition rides in `body`, same
/// splice technique as render_result (the scrape can be tens of KB).
std::string render_metrics(const Json& id, const std::string& trace_id) {
  JsonMembers members = reply_head(id, true, trace_id);
  members.emplace_back("kind", Json("metrics"));
  std::string reply = Json::object(std::move(members)).dump();
  reply.pop_back();  // reopen the object: drop '}'
  reply += ",\"body\":";
  reply += json_quote(obs::prometheus_text());
  reply += "}\n";
  return reply;
}

/// `trace-dump` reply: the flight recorder's recent spans as NDJSON in
/// `body` (same splice; a full ring is ~1 MB of lines).
std::string render_trace_dump(const Json& id, const std::string& trace_id) {
  JsonMembers members = reply_head(id, true, trace_id);
  members.emplace_back("kind", Json("trace-dump"));
  std::string reply = Json::object(std::move(members)).dump();
  reply.pop_back();  // reopen the object: drop '}'
  reply += ",\"body\":";
  reply += json_quote(obs::flight_dump_ndjson());
  reply += "}\n";
  return reply;
}

/// Parses the optional client `trace_id` field: 1-16 hex digits, nonzero.
std::uint64_t trace_id_from(const Json& object) {
  const Json* field = object.find("trace_id");
  if (field == nullptr) return 0;
  const std::uint64_t value =
      field->type() == Json::Type::kString
          ? obs::parse_trace_id(field->as_string())
          : 0;
  if (value == 0) {
    throw ProtocolError(
        "field \"trace_id\" must be a string of 1-16 hex digits (nonzero)");
  }
  return value;
}

/// Parses the protocol version field: absent means v1 (pre-versioned
/// clients keep working), any other value than the supported revision is
/// a named `unsupported_version` rejection so old servers fail loudly in
/// front of newer clients instead of misinterpreting their requests.
void check_version(const Json& object) {
  const Json* field = object.find("v");
  if (field == nullptr) return;  // implicit v1
  const double raw = field->type() == Json::Type::kNumber
                         ? field->as_number()
                         : -1.0;
  if (raw != static_cast<double>(kProtocolVersion)) {
    throw ProtocolError(
        "unsupported protocol version (this server speaks v" +
            std::to_string(kProtocolVersion) + ")",
        "unsupported_version");
  }
}

/// Parses an already-decoded request object.
Request parse_request_object(const Json& object) {
  if (!object.is_object()) {
    throw ProtocolError("request must be a JSON object");
  }
  check_version(object);
  Request request;
  if (const Json* id = object.find("id")) request.id = *id;
  const Json* kind = object.find("kind");
  if (kind == nullptr) throw ProtocolError("missing \"kind\"");
  request.kind = kind->as_string();
  request.trace_id = trace_id_from(object);
  if (request.kind == "ping" || request.kind == "stats" ||
      request.kind == "metrics" || request.kind == "trace-dump" ||
      request.kind == "shutdown") {
    request.admin = true;
    FieldReader fields(object);
    if (request.kind == "ping") {
      // The challenge answer rides on ping (and only ping): the
      // handshake must work before authentication, and ping is the one
      // kind an unauthenticated client may send.
      request.auth = fields.string("auth", "");
    }
    fields.finish();  // admin requests take no other options
    return request;
  }
  request.job = build_job(request.kind, object);
  return request;
}

}  // namespace

Request parse_request(const std::string& line) {
  return parse_request_object(Json::parse(line));
}

FirstLine sniff_first_line(std::string_view buffer) {
  // Decide as early as possible, but never on a proper prefix of "GET ":
  // with a nonblocking transport a lone 'G' is routinely all that has
  // arrived of "GET /metrics HTTP/1.1", and equally all that has arrived
  // of nothing JSON (every request object starts with '{'), so the call
  // answers kNeedMore until the prefix diverges or completes.
  constexpr std::string_view kGet = "GET ";
  const std::size_t have = std::min(buffer.size(), kGet.size());
  if (buffer.compare(0, have, kGet, 0, have) != 0) return FirstLine::kNdjson;
  return buffer.size() >= kGet.size() ? FirstLine::kHttpGet
                                      : FirstLine::kNeedMore;
}

std::string render_result(const Json& id, const std::string& kind,
                          const QueryOutcome& outcome,
                          const std::string& trace_id) {
  JsonMembers members = reply_head(id, true, trace_id);
  members.emplace_back("kind", Json(kind));
  members.emplace_back("cached", Json(outcome.cached));
  members.emplace_back("source", Json(to_string(outcome.source)));
  members.emplace_back("seconds", Json(outcome.seconds));
  // The body is spliced in behind the metadata so the (possibly multi-
  // megabyte, shared) artifact is escaped straight into the reply instead
  // of passing through an intermediate Json string copy.
  std::string reply = Json::object(std::move(members)).dump();
  reply.pop_back();  // reopen the object: drop '}'
  reply += ",\"body\":";
  static const std::string kEmptyBody;
  reply += json_quote(outcome.payload == nullptr ? kEmptyBody
                                                 : *outcome.payload);
  reply += "}\n";
  return reply;
}

std::string render_error(const Json& id, const std::string& message,
                         const std::string& trace_id,
                         const std::string& code) {
  JsonMembers members = reply_head(id, false, trace_id);
  members.emplace_back("error", Json(message));
  if (!code.empty()) members.emplace_back("code", Json(code));
  return finish_reply(std::move(members));
}

std::string render_busy(const std::string& line, const std::string& scope) {
  // Best-effort id echo: the refused line has not been validated (the
  // whole point of refusing early is to spend nothing on it), so the id
  // is recovered only when the line happens to parse.
  Json id;
  try {
    const Json object = Json::parse(line);
    if (object.is_object()) {
      if (const Json* sent = object.find("id")) id = *sent;
    }
  } catch (const std::exception&) {
  }
  return render_error(id, "busy: " + scope + " in-flight limit reached",
                      "", "busy");
}

HandledLine handle_request(Service& service, const std::string& line,
                           const Wire& wire) {
  HandledLine handled;
  Json id;
  Request request;
  // End-to-end latency (parse through render) per kind; requests that die
  // in parsing are attributed to "other". Observe-only: the sink fires on
  // every return path below and never touches the reply. The exemplar
  // entry records which trace id a slow request belonged to.
  std::string latency_kind = "other";
  std::uint64_t exemplar_trace = 0;
  const support::ScopedTimer latency(
      [&latency_kind, &exemplar_trace](double seconds) {
        if (!obs::enabled()) return;
        request_latency(latency_kind).observe(seconds);
        exemplars().record(latency_kind, seconds, exemplar_trace);
      });
  try {
    const Json object = Json::parse(line);
    // Echo the id even when validation below rejects the request.
    if (object.is_object()) {
      if (const Json* sent = object.find("id")) id = *sent;
    }
    request = parse_request_object(object);
    latency_kind = request.kind;
  } catch (const ProtocolError& e) {
    service.note_rejected();
    handled.reply = render_error(id, e.what(), "", e.code());
    return handled;
  } catch (const std::exception& e) {
    // Rejected before reaching the service — count it there anyway, or
    // the operator-facing stats would show zero errors under a stream of
    // malformed/abusive requests.
    service.note_rejected();
    handled.reply = render_error(id, e.what());
    return handled;
  }

  // The request's root span: adopts the client's trace id when one was
  // sent, otherwise mints a fresh trace (obs on). Everything the request
  // triggers — service dispatch, engine chains, kernel sweeps — nests
  // under it via the thread-local context and the pool propagation.
  obs::Span span("serve.request", request.trace_id);
  span.attr("kind", Json(request.kind));
  exemplar_trace =
      request.trace_id != 0 ? request.trace_id : span.trace_id();
  // Replies echo only a *client-supplied* trace id: server-minted ids
  // would make otherwise-identical replies differ run to run (they stay
  // discoverable through `trace-dump` and the stats exemplars).
  const std::string trace_echo =
      request.trace_id != 0 ? obs::format_trace_id(request.trace_id) : "";

  // Authentication gate (secured servers only). A ping carrying an
  // `auth` answer is the handshake's second leg: verify it against this
  // connection's challenge in constant time. Every other kind requires
  // the connection to have authenticated already; ping without `auth`
  // stays open so clients can fetch the challenge and capabilities.
  const bool secured = !wire.auth_secret.empty() && wire.auth != nullptr;
  if (secured && request.kind == "ping" && !request.auth.empty()) {
    const std::string expected =
        fleet::hmac_sha256_hex(wire.auth_secret, wire.auth->challenge);
    if (fleet::equals_constant_time(request.auth, expected)) {
      wire.auth->authenticated.store(true, std::memory_order_release);
    } else {
      service.note_rejected();
      handled.reply = render_error(
          id, "auth failed: challenge response does not verify",
          trace_echo, "auth_failed");
      return handled;
    }
  }
  if (secured && request.kind != "ping" &&
      !wire.auth->authenticated.load(std::memory_order_acquire)) {
    service.note_rejected();
    handled.reply = render_error(
        id,
        "authentication required: answer the ping challenge with "
        "auth=HMAC-SHA256(secret, challenge) first",
        trace_echo, "auth_required");
    return handled;
  }

  try {
    if (request.admin) {
      service.note_admin(request.kind);
      if (request.kind == "ping") {
        handled.reply = render_ping(id, service, wire, trace_echo);
        return handled;
      }
      if (request.kind == "stats") {
        handled.reply = render_stats(id, service.stats(), wire, trace_echo);
        return handled;
      }
      if (request.kind == "metrics") {
        handled.reply = render_metrics(id, trace_echo);
        return handled;
      }
      if (request.kind == "trace-dump") {
        handled.reply = render_trace_dump(id, trace_echo);
        return handled;
      }
      handled.shutdown = request.kind == "shutdown";
      JsonMembers members = reply_head(id, true, trace_echo);
      members.emplace_back("kind", Json(request.kind));
      handled.reply = finish_reply(std::move(members));
      return handled;
    }
    // execute() counts these requests and failures itself.
    const QueryOutcome outcome = service.execute(request.job);
    handled.reply = render_result(id, request.kind, outcome, trace_echo);
  } catch (const std::exception& e) {
    handled.reply = render_error(id, e.what(), trace_echo);
  }
  return handled;
}

std::string handle_line(Service& service, const std::string& line) {
  return handle_request(service, line).reply;
}

}  // namespace serve
