#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/socket_io.hpp"
#include "support/check.hpp"

namespace serve {

Client::Client(const std::string& host, int port) {
  SM_REQUIRE(port > 0 && port <= 65535, "port out of range: ", port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SM_REQUIRE(fd_ >= 0, "socket(): ", std::strerror(errno));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw support::InvalidArgument("invalid server address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw support::Error("cannot connect to " + host + ":" +
                         std::to_string(port) + ": " + reason);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request_raw(const std::string& line) {
  std::string out = line;
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  if (!send_all(fd_, out)) {
    throw support::Error("connection lost while sending request");
  }

  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string reply = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return reply;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw support::Error("connection lost while awaiting response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Reply decode_reply(const std::string& line) {
  Reply reply;
  reply.raw = Json::parse(line);
  SM_REQUIRE(reply.raw.is_object(), "response is not a JSON object");
  const Json* ok = reply.raw.find("ok");
  SM_REQUIRE(ok != nullptr, "response lacks \"ok\"");
  reply.ok = ok->as_bool();
  if (const Json* trace_id = reply.raw.find("trace_id")) {
    reply.trace_id = trace_id->as_string();
  }
  if (!reply.ok) {
    if (const Json* error = reply.raw.find("error")) {
      reply.error = error->as_string();
    }
    return reply;
  }
  if (const Json* kind = reply.raw.find("kind")) {
    reply.kind = kind->as_string();
  }
  if (const Json* body = reply.raw.find("body")) {
    reply.body = body->as_string();
  }
  if (const Json* source = reply.raw.find("source")) {
    reply.source = source->as_string();
  }
  if (const Json* cached = reply.raw.find("cached")) {
    reply.cached = cached->as_bool();
  }
  if (const Json* seconds = reply.raw.find("seconds")) {
    reply.seconds = seconds->as_number();
  }
  return reply;
}

Reply Client::request(const std::string& line) {
  return decode_reply(request_raw(line));
}

}  // namespace serve
