#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fleet/auth.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"
#include "support/check.hpp"

namespace serve {

namespace {

/// Jittered exponential backoff: attempt 0 waits ~base, each further
/// attempt doubles, capped, with the actual sleep drawn uniformly from
/// [delay/2, delay] so a fleet of clients dropped together does not
/// reconnect in lockstep.
double backoff_seconds(const ClientOptions& options, int attempt) {
  double delay = options.backoff_base_seconds * std::pow(2.0, attempt);
  delay = std::min(delay, options.backoff_max_seconds);
  static thread_local std::mt19937 rng{std::random_device{}()};
  std::uniform_real_distribution<double> jitter(0.5, 1.0);
  return delay * jitter(rng);
}

}  // namespace

Client::Client(const std::string& host, int port, ClientOptions options)
    : host_(host), port_(port), options_(std::move(options)) {
  SM_REQUIRE(port_ > 0 && port_ <= 65535, "port out of range: ", port_);
  connect_now();
  handshake_now();
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::connect_now() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SM_REQUIRE(fd_ >= 0, "socket(): ", std::strerror(errno));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw support::InvalidArgument("invalid server address " + host_);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw support::Error("cannot connect to " + host_ + ":" +
                         std::to_string(port_) + ": " + reason);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::handshake_now() {
  if (options_.auth_secret.empty()) return;
  const auto transport_lost = [this]() -> support::Error {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return support::Error("connection lost during auth handshake with " +
                          host_ + ":" + std::to_string(port_));
  };
  // Leg 1: a bare capability ping fetches this connection's challenge.
  // Handshake pings carry no id — the connection is fresh (empty buffer_,
  // nothing pipelined), so replies arrive strictly in order.
  std::string line;
  if (!send_all(fd_, "{\"kind\":\"ping\"}\n") || !read_line(line)) {
    throw transport_lost();
  }
  const Reply hello = decode_reply(line);
  SM_REQUIRE(hello.ok, "auth handshake ping failed: ", hello.error);
  const Json* challenge = hello.raw.find("challenge");
  if (challenge == nullptr) return;  // open server — nothing to answer
  // Leg 2: answer with HMAC-SHA256(secret, challenge); the server must
  // report the session authenticated or the secrets do not match.
  const std::string answer =
      fleet::hmac_sha256_hex(options_.auth_secret, challenge->as_string());
  if (!send_all(fd_, "{\"kind\":\"ping\",\"auth\":\"" + answer + "\"}\n") ||
      !read_line(line)) {
    throw transport_lost();
  }
  const Reply verdict = decode_reply(line);
  const Json* status = verdict.ok ? verdict.raw.find("auth") : nullptr;
  if (status == nullptr || status->as_string() != "ok") {
    throw support::Error(
        "auth handshake rejected by " + host_ + ":" + std::to_string(port_) +
        (verdict.ok ? " (secret mismatch?)" : ": " + verdict.error));
  }
}

void Client::reconnect_session() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();  // a partial reply line from the dead connection
  if (!outstanding_.empty() && !options_.resend_on_reconnect) {
    throw support::Error(
        "connection lost with " + std::to_string(outstanding_.size()) +
        " requests in flight (resend_on_reconnect disabled)");
  }
  std::string last_error = "no attempts allowed";
  const int attempts = std::max(1, options_.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff_seconds(options_, attempt - 1)));
    }
    try {
      connect_now();
      handshake_now();  // secured sessions re-authenticate before replay
    } catch (const support::Error& error) {
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      last_error = error.what();
      continue;
    }
    reconnects_ += 1;
    // Replay everything still unanswered; replies keep matching by id.
    for (const auto& [id, wire] : outstanding_) {
      if (!send_all(fd_, wire)) {
        ::close(fd_);
        fd_ = -1;
        last_error = "connection lost while re-sending request";
        break;
      }
    }
    if (fd_ >= 0) return;
  }
  throw support::Error("cannot reconnect to " + host_ + ":" +
                       std::to_string(port_) + " after " +
                       std::to_string(attempts) + " attempts: " + last_error);
}

void Client::send_bytes(const std::string& wire) {
  const int attempts = std::max(1, options_.max_retries) + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (fd_ < 0) reconnect_session();
    if (send_all(fd_, wire)) return;
    ::close(fd_);
    fd_ = -1;
  }
  throw support::Error("connection lost while sending request");
}

bool Client::read_line(std::string& line) {
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (fd_ < 0) return false;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::send(const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const JsonError& error) {
    throw support::InvalidArgument(
        std::string("session requests must be JSON objects (") +
        error.what() + "); use request_raw for arbitrary lines");
  }
  if (!request.is_object()) {
    throw support::InvalidArgument(
        "session requests must be JSON objects; "
        "use request_raw for arbitrary lines");
  }

  // Stamp the session envelope: protocol version and reply-matching id.
  // A numeric id the caller chose is kept (and the counter skips past it
  // so later stamps cannot collide); "v" is only added when absent.
  JsonMembers members = request.as_object();
  std::uint64_t id = 0;
  bool has_id = false;
  bool has_version = false;
  for (const auto& [key, value] : members) {
    if (key == "id") {
      if (value.type() != Json::Type::kNumber) {
        throw support::InvalidArgument(
            "session request ids must be numeric (the session matches "
            "replies by them); use request_raw for other id types");
      }
      id = static_cast<std::uint64_t>(value.as_number());
      has_id = true;
    }
    if (key == "v") has_version = true;
  }
  if (has_id) {
    next_id_ = std::max(next_id_, id + 1);
  } else {
    id = next_id_++;
    members.emplace_back("id", Json(static_cast<std::int64_t>(id)));
  }
  if (!has_version) {
    members.emplace_back(
        "v", Json(static_cast<std::int64_t>(kProtocolVersion)));
  }
  std::string wire = Json::object(std::move(members)).dump();
  wire.push_back('\n');

  send_bytes(wire);
  outstanding_[id] = std::move(wire);
  return id;
}

Reply Client::await(std::uint64_t id) {
  SM_REQUIRE(outstanding_.count(id) != 0 || ready_.count(id) != 0,
             "await of an id never sent (or already awaited): ", id);
  for (;;) {
    const auto hit = ready_.find(id);
    if (hit != ready_.end()) {
      Reply reply = std::move(hit->second);
      ready_.erase(hit);
      return reply;
    }
    std::string line;
    if (!read_line(line)) {
      reconnect_session();  // replays outstanding_, or throws
      continue;
    }
    Reply reply = decode_reply(line);
    const Json* reply_id = reply.raw.find("id");
    if (reply_id == nullptr || reply_id->type() != Json::Type::kNumber) {
      continue;  // unmatchable (server replied to a line we never stamped)
    }
    const auto got = static_cast<std::uint64_t>(reply_id->as_number());
    outstanding_.erase(got);
    if (got == id) return reply;
    ready_[got] = std::move(reply);
  }
}

Reply Client::request(const std::string& line) { return await(send(line)); }

Reply Client::ping() { return request("{\"kind\":\"ping\"}"); }

std::string Client::request_raw(const std::string& line) {
  std::string out = line;
  if (out.empty() || out.back() != '\n') out.push_back('\n');
  send_bytes(out);
  std::string reply;
  if (!read_line(reply)) {
    throw support::Error("connection lost while awaiting response");
  }
  return reply;
}

Reply decode_reply(const std::string& line) {
  Reply reply;
  reply.raw = Json::parse(line);
  SM_REQUIRE(reply.raw.is_object(), "response is not a JSON object");
  const Json* ok = reply.raw.find("ok");
  SM_REQUIRE(ok != nullptr, "response lacks \"ok\"");
  reply.ok = ok->as_bool();
  if (const Json* trace_id = reply.raw.find("trace_id")) {
    reply.trace_id = trace_id->as_string();
  }
  if (!reply.ok) {
    if (const Json* error = reply.raw.find("error")) {
      reply.error = error->as_string();
    }
    if (const Json* code = reply.raw.find("code")) {
      reply.code = code->as_string();
    }
    return reply;
  }
  if (const Json* kind = reply.raw.find("kind")) {
    reply.kind = kind->as_string();
  }
  if (const Json* body = reply.raw.find("body")) {
    reply.body = body->as_string();
  }
  if (const Json* source = reply.raw.find("source")) {
    reply.source = source->as_string();
  }
  if (const Json* cached = reply.raw.find("cached")) {
    reply.cached = cached->as_bool();
  }
  if (const Json* seconds = reply.raw.find("seconds")) {
    reply.seconds = seconds->as_number();
  }
  return reply;
}

}  // namespace serve
