#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "engine/job.hpp"

namespace serve {

namespace {

/// Recursive-descent parser over a byte range. Depth-limited so a crafted
/// request cannot overflow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    const Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at byte " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    JsonMembers members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return Json::object(std::move(members));
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    std::vector<Json> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return Json::array(std::move(items));
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      fail("invalid value");
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number \"" + token + "\"");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw JsonError(std::string("expected ") + wanted + ", got " +
                  names[static_cast<int>(got)]);
}

}  // namespace

Json Json::array(std::vector<Json> items) {
  Json json;
  json.type_ = Type::kArray;
  json.array_ = std::make_shared<const std::vector<Json>>(std::move(items));
  return json;
}

Json Json::object(JsonMembers members) {
  Json json;
  json.type_ = Type::kObject;
  json.object_ = std::make_shared<const JsonMembers>(std::move(members));
  return json;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return *array_;
}

const JsonMembers& Json::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return *object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [name, value] : *object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: {
      // Integral doubles render as integers (protocol counters and ids
      // stay readable and byte-stable); everything else round-trips via
      // the canonical decimal rendering.
      if (number_ == std::floor(number_) &&
          std::abs(number_) < 9.007199254740992e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", number_);
        out += buffer;
      } else {
        out += engine::canonical_double(number_);
      }
      return;
    }
    case Type::kString: out += json_quote(string_); return;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : *array_) {
        if (!first) out.push_back(',');
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out.push_back(',');
        first = false;
        out += json_quote(key);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace serve
