// TCP transport of the analysis service: an event-driven epoll reactor
// with a bounded worker pool.
//
// One reactor thread owns every connection fd: it accepts, reads into
// per-connection input buffers, slices complete NDJSON lines out of them,
// and writes replies from per-connection output queues — all nonblocking,
// level-triggered, with EPOLLOUT armed only while a queue is nonempty.
// Complete lines are dispatched to a bounded support::ThreadPool of
// protocol workers (parse → service → render); finished replies come back
// to the reactor through a completion queue plus an eventfd wakeup and
// are flushed in completion order. Replies are therefore matched to
// requests by the echoed `id`, not by position — the protocol's contract
// since v1. Concurrency is bounded twice: the worker pool caps parallel
// request handling no matter how many thousands of connections are open
// (threads « connections), and the Service's own pool bounds simultaneous
// solves below that.
//
// Backpressure is explicit instead of emergent: lines past the global or
// per-connection in-flight caps are refused immediately with a named
// `busy` error reply (code "busy") rather than queued without bound; a
// connection whose output queue exceeds its byte cap stops being read
// until the peer drains it; request lines longer than the line cap close
// the connection after an error reply; and connections idle past the
// timeout are closed and counted. All limits live in ServerOptions, are
// advertised by the `ping` capability handshake, and are observable via
// `stats` (transport section) and the selfish_serve_{busy,idle_closed,
// connections,transport_inflight} metrics.
//
// The same port speaks a sliver of HTTP for operability: a connection
// whose first bytes are an HTTP GET is answered once and closed —
// `GET /metrics` returns the Prometheus text exposition, `GET /healthz`
// returns "ok" — so a real Prometheus (or curl) can scrape the server
// without an NDJSON shim. Classification tolerates partial first reads
// (serve/protocol.hpp's sniff_first_line): under a nonblocking transport
// a lone 'G' is not yet an HTTP request.
//
// The server binds loopback by default. To leave loopback, give it a
// shared secret (--auth-secret-file): connections must then answer the
// `ping` HMAC challenge before any non-ping request is served (protocol
// code "auth_required" until they do), and `GET /metrics` answers 403 —
// only /healthz stays open, so load balancers can probe liveness without
// holding the secret. An open server (no secret) behaves exactly as
// before and should stay on loopback.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "support/parallel.hpp"

namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is Server::port().
  /// Protocol worker threads (parse -> service -> render). They block on
  /// the Service's flights, so this bounds concurrent request *handling*;
  /// the Service's own pool bounds concurrent *solves* below it.
  /// <= 0 means all hardware threads.
  int workers = 0;
  /// Global cap on dispatched-but-unanswered requests; excess lines get
  /// an immediate `busy` reply instead of queueing unboundedly. 0 = off.
  int max_inflight = 256;
  /// Same cap per connection (one pipelining client cannot monopolize
  /// the pool). 0 = off.
  int max_inflight_per_connection = 32;
  /// Longest accepted request line; a peer exceeding it gets an error
  /// reply and its connection closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Per-connection output-queue cap: past it the reactor stops reading
  /// from the connection until the peer drains (a slow reader cannot
  /// buffer the server out of memory).
  std::size_t max_output_bytes = 8 << 20;
  /// Connections idle longer than this (no bytes, nothing in flight) are
  /// closed and counted. 0 = never.
  double idle_timeout_seconds = 0.0;
  /// Path to the deployment's shared-secret file (see fleet/auth).
  /// Nonempty = secured server: loaded at construction (throws when
  /// missing or empty) into `auth_secret`.
  std::string auth_secret_file;
  /// The shared secret itself; set directly by tests, or loaded from
  /// `auth_secret_file`. Empty = open server (the default).
  std::string auth_secret;
  ServiceOptions service;
};

class Server {
 public:
  /// Binds and listens immediately (throws support::Error on failure);
  /// serving starts with start() or serve_forever().
  explicit Server(ServerOptions options);
  Server(ServerOptions options, const engine::ExecutorRegistry& registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound port (resolves port 0).
  int port() const { return port_; }

  Service& service() { return *service_; }

  /// Transport-side counters (connections, busy refusals, idle closes);
  /// the `stats` admin kind reports the same numbers to clients.
  const TransportStats& transport_stats() const { return tstats_; }

  /// Runs the reactor on the calling thread until stop() — or a client's
  /// "shutdown" request — ends it. In-flight requests are drained and
  /// their replies delivered before it returns.
  void serve_forever();

  /// Runs the reactor on a background thread (tests, benches).
  void start();

  /// Leaves the reactor, drains in-flight replies, closes every
  /// connection, joins all threads. Idempotent. Async-signal-unsafe
  /// (use request_stop from handlers).
  void stop();

  /// Signal-handler-safe stop trigger: wakes the reactor via the eventfd
  /// and shuts the listening socket down; the owner then runs stop()
  /// normally.
  void request_stop();

  /// Currently open connections (reactor-owned; an idle server with no
  /// clients reports 0 — pinned by tests).
  std::size_t live_connections();

 private:
  /// One live client, owned by the reactor. Worker tasks hold a
  /// shared_ptr so a connection closed mid-request stays valid until its
  /// last completion is dropped.
  struct Connection {
    int fd = -1;
    /// What the first bytes turned out to be (kSniff until decidable).
    enum class Mode : std::uint8_t { kSniff, kNdjson, kHttp, kDrain };
    Mode mode = Mode::kSniff;
    std::string in;           ///< Unparsed input bytes.
    std::string out;          ///< Pending output; flushed from out_offset.
    std::size_t out_offset = 0;
    int inflight = 0;         ///< Dispatched lines, reply not yet queued.
    std::uint32_t events = 0; ///< Current epoll interest mask.
    bool paused = false;      ///< Reads suspended (output over cap).
    bool peer_eof = false;
    bool close_after_flush = false;
    bool drain_after_flush = false;  ///< HTTP: SHUT_WR, then read to EOF.
    bool shutdown_after_flush = false;  ///< Server stop once flushed.
    bool closing = false;     ///< Scheduled for close this reactor batch.
    std::atomic<bool> closed{false};  ///< Published to completion tasks.
    std::chrono::steady_clock::time_point last_activity;
    /// Challenge + verdict for secured servers (challenge minted at
    /// accept); workers reference it through their per-call Wire, and the
    /// ConnectionPtr they hold keeps it alive past any close.
    AuthSession auth;
  };
  using ConnectionPtr = std::shared_ptr<Connection>;

  /// A finished request travelling worker -> reactor.
  struct Completion {
    ConnectionPtr connection;
    std::string reply;
    bool shutdown = false;
  };

  void event_loop();
  void drain_connections();
  void accept_ready();
  void handle_event(Connection* connection, std::uint32_t events);
  void read_ready(Connection* connection);
  void process_input(const ConnectionPtr& connection);
  void dispatch_line(const ConnectionPtr& connection, std::string line);
  void handle_http_line(Connection* connection);
  void drain_completions();
  void enqueue_output(Connection* connection, const std::string& bytes);
  void flush_output(Connection* connection);
  /// Recomputes and applies the connection's epoll interest mask.
  void update_interest(Connection* connection);
  /// Marks the connection for close at the end of the current reactor
  /// batch (events already harvested for it must not touch a freed fd).
  void schedule_close(Connection* connection);
  void close_scheduled();
  void close_idle_connections();
  int poll_timeout_ms() const;

  ServerOptions options_;
  std::unique_ptr<Service> service_;
  support::ThreadPool workers_;
  Wire wire_;  ///< Limits + &tstats_, handed to every handle_request.
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions ready / stop requested.
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread reactor_thread_;
  std::mutex lifecycle_mutex_;  ///< Serializes stop() / ~Server.
  bool stopped_ = false;        ///< Under lifecycle_mutex_.

  // Reactor-owned (no lock): only the reactor thread touches these.
  std::unordered_map<int, ConnectionPtr> connections_;
  std::vector<Connection*> close_queue_;
  bool shutdown_pending_ = false;  ///< A shutdown reply is in some queue.

  // Worker -> reactor hand-off.
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  TransportStats tstats_;
};

}  // namespace serve
