// TCP transport of the analysis service.
//
// A deliberately small, dependency-free server: one listening socket, one
// accept loop, one std::thread per connection reading newline-delimited
// requests and writing the protocol's response lines. Concurrency control
// lives in the Service (its thread pool bounds simultaneous solves and
// single-flight coalesces duplicates), so connection threads are cheap —
// they mostly block on a flight or on the socket. Finished connections
// retire themselves to a reaper thread that joins them eagerly, so an
// idle server holds no parked threads.
//
// The same port speaks a sliver of HTTP for operability: a connection
// whose first line is an HTTP GET is answered once and closed —
// `GET /metrics` returns the Prometheus text exposition, `GET /healthz`
// returns "ok" — so a real Prometheus (or curl) can scrape the server
// without an NDJSON shim.
//
// The server binds loopback by default: the protocol is unauthenticated,
// so exposure beyond the host must be an explicit operator choice
// (--host=0.0.0.0) behind whatever transport security the deployment
// provides.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is Server::port().
  ServiceOptions service;
};

class Server {
 public:
  /// Binds and listens immediately (throws support::Error on failure);
  /// serving starts with start() or serve_forever().
  explicit Server(ServerOptions options);
  Server(ServerOptions options, const engine::ExecutorRegistry& registry);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually bound port (resolves port 0).
  int port() const { return port_; }

  Service& service() { return *service_; }

  /// Runs the accept loop on the calling thread until stop() — or a
  /// client's "shutdown" request — ends it.
  void serve_forever();

  /// Runs the accept loop on a background thread (tests, benches).
  void start();

  /// Leaves the accept loop, closes every connection, joins all threads.
  /// Idempotent. Async-signal-unsafe (use request_stop from handlers).
  void stop();

  /// Signal-handler-safe stop trigger: shuts the listening socket down so
  /// the accept loop exits; the owner then runs stop() normally.
  void request_stop();

  /// Connections whose thread has not been reaped yet (live plus a
  /// transient window of finished-but-unjoined ones). An idle server
  /// converges to 0 — pinned by tests.
  std::size_t live_connections();

 private:
  /// One live client. The fd is closed exactly once, always under
  /// connections_mutex_ (see stop() for why that discipline matters).
  struct Connection {
    int fd = -1;
    std::atomic<bool> closed{false};
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(Connection* connection);
  void close_connection(Connection* connection);
  /// Moves the (finished) connection from connections_ to the reaper's
  /// zombie list. Called by the connection's own thread as its last act.
  void retire_connection(Connection* connection);
  void reaper_loop();
  /// Answers one HTTP GET (/metrics, /healthz) and drains the socket.
  void handle_http(int fd, const std::string& request_line);

  ServerOptions options_;
  std::unique_ptr<Service> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::condition_variable reap_cv_;  ///< Zombies arrived / counts changed.
  std::vector<std::unique_ptr<Connection>> connections_;  ///< Live.
  std::vector<std::unique_ptr<Connection>> zombies_;  ///< Finished, unjoined.
  bool reaper_stop_ = false;  ///< Under connections_mutex_.
  std::thread reaper_thread_;
};

}  // namespace serve
