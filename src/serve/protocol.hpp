// The wire protocol of the analysis service: versioned newline-delimited
// JSON (protocol v1).
//
// One request per line, one response line per request. Requests and
// replies carry a protocol version field `v`; a missing `v` is treated as
// v1 for back-compat with pre-versioned clients, and unknown versions are
// rejected with a named `unsupported_version` error so future revisions
// can change semantics without silently confusing old peers. Requests
// name a job kind plus the same options the CLI subcommands take (same
// names, same defaults); the response's `body` is the rendered artifact,
// byte-identical to the direct CLI output.
//
//   -> {"v":1,"id":1,"kind":"threshold","gamma":0.5,"d":2,"f":1}
//   <- {"id":1,"ok":true,"v":1,"kind":"threshold","cached":false,
//       "source":"solve","seconds":2.41,"body":"attack becomes ...\n"}
//
// Replies are matched to requests by the echoed `id`, not by order: the
// event-driven transport dispatches pipelined lines to a worker pool and
// writes each reply as it completes, so a client pipelining several
// requests on one connection may see them answered out of order. Clients
// that send at most one request at a time (or no `id` at all) observe the
// classic in-order behavior.
//
// Analysis kinds — point, sweep, threshold, upper-bound, net-batch — are
// dispatched through the serving core (LRU, single-flight, store, solve).
// Admin kinds — ping, stats, metrics, trace-dump, shutdown — answer from
// the server itself. `ping` is the capability handshake: it advertises
// the protocol version, the supported job kinds (from the executor
// registry), the transport limits (max line length, in-flight caps, idle
// timeout), and the observability mode, so a session client can discover
// what it is talking to before pipelining work. `metrics` returns the
// Prometheus text exposition in `body`; `trace-dump` returns the flight
// recorder's recent spans as NDJSON in `body`. Any request may carry a
// `trace_id` (1-16 hex digits): the request's span tree adopts it and
// every reply echoes it back. Any failure (malformed JSON, unknown kind
// or field, out-of-range parameters, executor error) produces
// {"ok":false,"error":...} on the same line slot — machine-readable
// failures additionally carry a `code` ("unsupported_version",
// "auth_required"/"auth_failed" on secured servers, and the transport's
// overload replies use "busy") — and the connection stays usable.
//
// Secured servers (serve --auth-secret-file) extend the `ping` handshake
// into a challenge/response: the ping reply carries a per-connection
// `challenge`, the client answers with another ping whose `auth` field is
// HMAC-SHA256(secret, challenge) in hex, and until that verifies every
// non-ping request is refused with code "auth_required". See fleet/auth.
//
// This module is transport-free: handle_request maps a request line to a
// response line given a Service, so tests exercise the full protocol
// without sockets and the server stays a pure byte shuttle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "engine/generic.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace serve {

/// The protocol revision this build speaks (and assumes when a request
/// omits `v`).
inline constexpr int kProtocolVersion = 1;

/// Thrown on protocol-level violations (the message is the error reply;
/// `code`, when nonempty, becomes the reply's machine-readable `code`).
class ProtocolError : public support::InvalidArgument {
 public:
  explicit ProtocolError(std::string msg, std::string code = "")
      : support::InvalidArgument(std::move(msg)), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// What the first bytes of a connection turned out to be. Nonblocking
/// reads deliver partial lines as the common case, so classification must
/// be able to answer "not enough bytes yet": a lone 'G' is a prefix of
/// both "GET /metrics ..." and nothing a JSON request can start with, but
/// misclassifying it either way on the first byte would break whichever
/// peer sent the rest a syscall later.
enum class FirstLine : std::uint8_t {
  kNeedMore,  ///< Still a prefix of "GET " — read more before deciding.
  kHttpGet,   ///< An HTTP GET request line (scrape endpoints).
  kNdjson,    ///< Anything else: the NDJSON protocol.
};

/// Classifies the first bytes of a connection (see FirstLine). Decides as
/// early as the bytes allow: the first byte settles NDJSON for every JSON
/// request ('{' != 'G'), and four bytes settle HTTP.
FirstLine sniff_first_line(std::string_view buffer);

/// A parsed request: the echoed id (null when the client sent none), the
/// kind tag, and — for analysis kinds — the content-addressed job.
struct Request {
  Json id;
  std::string kind;
  engine::GenericJob job;  ///< Empty kind for admin requests.
  bool admin = false;  ///< ping | stats | metrics | trace-dump | shutdown.
  /// Client-supplied trace id (0 = none); the request's root span adopts
  /// it. NEVER part of the job identity — two requests with different
  /// trace ids for the same query coalesce and cache identically.
  std::uint64_t trace_id = 0;
  /// `ping`-only: the HMAC-SHA256 answer to the connection's auth
  /// challenge (empty = plain capability ping). Like trace_id, never part
  /// of any job identity.
  std::string auth;
};

/// Parses and validates one request line. Throws ProtocolError (or
/// JsonError / support::InvalidArgument from deeper validation) with a
/// client-safe message.
Request parse_request(const std::string& line);

/// The transport limits a server enforces, advertised by `ping` so
/// session clients can discover them instead of hardcoding. The defaults
/// here describe the transport-free test path (handle_request without a
/// Wire): effectively unlimited.
struct TransportLimits {
  std::size_t max_line_bytes = 1 << 20;  ///< Longest accepted request line.
  int max_inflight = 0;           ///< Global dispatch cap (0 = unlimited).
  int max_inflight_per_connection = 0;  ///< Per-connection cap (0 = unlim).
  double idle_timeout_seconds = 0.0;    ///< 0 = connections never expire.
};

/// Transport-side counters surfaced through the `stats` admin kind (the
/// Service's own counters cover the serving core; these cover the
/// reactor). All relaxed atomics — written by the reactor, read by any
/// worker rendering a stats reply.
struct TransportStats {
  std::atomic<std::uint64_t> accepted{0};     ///< Connections ever opened.
  std::atomic<std::uint64_t> busy{0};         ///< Lines refused with `busy`.
  std::atomic<std::uint64_t> idle_closed{0};  ///< Idle-timeout closes.
  std::atomic<std::int64_t> connections{0};   ///< Currently open.
  std::atomic<std::int64_t> inflight{0};      ///< Dispatched, not replied.
};

/// Per-connection authentication state on a secured server. The
/// transport mints one fresh `challenge` per connection at accept time;
/// the protocol flips `authenticated` once a `ping` carries the matching
/// HMAC-SHA256 answer. Atomic because pipelined lines from one
/// connection are handled on different pool workers.
struct AuthSession {
  std::string challenge;
  std::atomic<bool> authenticated{false};
};

/// What the transport tells the protocol about itself: the limits `ping`
/// advertises and the counters `stats` reports. Default-constructed for
/// transport-free embedders (tests): unlimited, no transport section.
///
/// A server is *secured* when `auth_secret` is nonempty AND an
/// AuthSession is attached: secured connections must answer the ping
/// challenge before any non-ping request is served (failures get the
/// machine-readable `auth_required` / `auth_failed` codes). The
/// transport-free default (no session) stays open.
struct Wire {
  TransportLimits limits;
  const TransportStats* stats = nullptr;
  /// Deployment shared secret; empty = open server (the default).
  std::string auth_secret;
  /// This connection's challenge/verdict state; null = no connection
  /// identity (transport-free path), never gated.
  AuthSession* auth = nullptr;
};

/// Response renderers; every returned string is one line ending in '\n'.
/// `trace_id` (16 hex digits; empty = omit) is echoed into the reply.
/// `code` (empty = omit) is the machine-readable failure class.
std::string render_result(const Json& id, const std::string& kind,
                          const QueryOutcome& outcome,
                          const std::string& trace_id = "");
std::string render_error(const Json& id, const std::string& message,
                         const std::string& trace_id = "",
                         const std::string& code = "");

/// The `busy` overload reply the transport sends when an in-flight cap is
/// hit (code "busy"; the id is echoed when the refused line carried one —
/// pipelined sessions need it to match the refusal to its request).
std::string render_busy(const std::string& line, const std::string& scope);

/// The reply line plus the one side effect a request can carry. The
/// transport must write `reply` to the client *before* acting on
/// `shutdown` — acting first would race the server teardown against the
/// in-flight response bytes.
struct HandledLine {
  std::string reply;
  bool shutdown = false;
};

/// The full request->response mapping: parse, dispatch to `service` (or
/// answer admin requests in place), render. Never throws — every failure
/// renders as an error reply. `wire` feeds the capability handshake and
/// the stats transport section.
HandledLine handle_request(Service& service, const std::string& line,
                           const Wire& wire = Wire{});

/// handle_request without the side-effect channel (tests, one-shot
/// embedders): a shutdown request is answered but has no effect.
std::string handle_line(Service& service, const std::string& line);

}  // namespace serve
