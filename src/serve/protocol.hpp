// The wire protocol of the analysis service: newline-delimited JSON.
//
// One request per line, one response line per request, processed in order
// per connection. Requests name a job kind plus the same options the CLI
// subcommands take (same names, same defaults); the response's `body` is
// the rendered artifact, byte-identical to the direct CLI output.
//
//   -> {"id":1,"kind":"threshold","gamma":0.5,"d":2,"f":1}
//   <- {"id":1,"ok":true,"kind":"threshold","cached":false,
//       "source":"solve","seconds":2.41,"body":"attack becomes ...\n"}
//
// Analysis kinds — point, sweep, threshold, upper-bound, net-batch — are
// dispatched through the serving core (LRU, single-flight, store, solve).
// Admin kinds — ping, stats, metrics, trace-dump, shutdown — answer from
// the server itself (`metrics` returns Prometheus text exposition in
// `body`; `trace-dump` returns the flight recorder's recent spans as
// NDJSON in `body`). Any request may carry a `trace_id` (1-16 hex
// digits): the request's span tree adopts it and every reply echoes it
// back, so a client can correlate its call with a later trace dump.
// Requests without one get a server-minted trace id on their span tree
// (not echoed — replies stay stable run to run; the id is discoverable
// via `trace-dump` and exemplars). Any failure (malformed JSON, unknown kind
// or field, out-of-range parameters, executor error) produces
// {"ok":false,"error":...} on the same line slot; the connection stays
// usable.
//
// This module is transport-free: handle_line maps a request line to a
// response line given a Service, so tests exercise the full protocol
// without sockets and the server stays a pure byte shuttle.
#pragma once

#include <cstdint>
#include <string>

#include "engine/generic.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace serve {

/// Thrown on protocol-level violations (the message is the error reply).
class ProtocolError : public support::InvalidArgument {
 public:
  explicit ProtocolError(std::string msg)
      : support::InvalidArgument(std::move(msg)) {}
};

/// A parsed request: the echoed id (null when the client sent none), the
/// kind tag, and — for analysis kinds — the content-addressed job.
struct Request {
  Json id;
  std::string kind;
  engine::GenericJob job;  ///< Empty kind for admin requests.
  bool admin = false;  ///< ping | stats | metrics | trace-dump | shutdown.
  /// Client-supplied trace id (0 = none); the request's root span adopts
  /// it. NEVER part of the job identity — two requests with different
  /// trace ids for the same query coalesce and cache identically.
  std::uint64_t trace_id = 0;
};

/// Parses and validates one request line. Throws ProtocolError (or
/// JsonError / support::InvalidArgument from deeper validation) with a
/// client-safe message.
Request parse_request(const std::string& line);

/// Response renderers; every returned string is one line ending in '\n'.
/// `trace_id` (16 hex digits; empty = omit) is echoed into the reply.
std::string render_result(const Json& id, const std::string& kind,
                          const QueryOutcome& outcome,
                          const std::string& trace_id = "");
std::string render_error(const Json& id, const std::string& message,
                         const std::string& trace_id = "");

/// The reply line plus the one side effect a request can carry. The
/// transport must write `reply` to the client *before* acting on
/// `shutdown` — acting first would race the server teardown against the
/// in-flight response bytes.
struct HandledLine {
  std::string reply;
  bool shutdown = false;
};

/// The full request->response mapping: parse, dispatch to `service` (or
/// answer admin requests in place), render. Never throws — every failure
/// renders as an error reply.
HandledLine handle_request(Service& service, const std::string& line);

/// handle_request without the side-effect channel (tests, one-shot
/// embedders): a shutdown request is answered but has no effect.
std::string handle_line(Service& service, const std::string& line);

}  // namespace serve
