// The wire protocol of the analysis service: newline-delimited JSON.
//
// One request per line, one response line per request, processed in order
// per connection. Requests name a job kind plus the same options the CLI
// subcommands take (same names, same defaults); the response's `body` is
// the rendered artifact, byte-identical to the direct CLI output.
//
//   -> {"id":1,"kind":"threshold","gamma":0.5,"d":2,"f":1}
//   <- {"id":1,"ok":true,"kind":"threshold","cached":false,
//       "source":"solve","seconds":2.41,"body":"attack becomes ...\n"}
//
// Analysis kinds — point, sweep, threshold, upper-bound, net-batch — are
// dispatched through the serving core (LRU, single-flight, store, solve).
// Admin kinds — ping, stats, metrics, shutdown — answer from the server
// itself (`metrics` returns Prometheus text exposition in `body`).
// Any failure (malformed JSON, unknown kind or field, out-of-range
// parameters, executor error) produces {"ok":false,"error":...} on the
// same line slot; the connection stays usable.
//
// This module is transport-free: handle_line maps a request line to a
// response line given a Service, so tests exercise the full protocol
// without sockets and the server stays a pure byte shuttle.
#pragma once

#include <string>

#include "engine/generic.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"

namespace serve {

/// Thrown on protocol-level violations (the message is the error reply).
class ProtocolError : public support::InvalidArgument {
 public:
  explicit ProtocolError(std::string msg)
      : support::InvalidArgument(std::move(msg)) {}
};

/// A parsed request: the echoed id (null when the client sent none), the
/// kind tag, and — for analysis kinds — the content-addressed job.
struct Request {
  Json id;
  std::string kind;
  engine::GenericJob job;  ///< Empty kind for admin requests.
  bool admin = false;      ///< ping | stats | metrics | shutdown.
};

/// Parses and validates one request line. Throws ProtocolError (or
/// JsonError / support::InvalidArgument from deeper validation) with a
/// client-safe message.
Request parse_request(const std::string& line);

/// Response renderers; every returned string is one line ending in '\n'.
std::string render_result(const Json& id, const std::string& kind,
                          const QueryOutcome& outcome);
std::string render_error(const Json& id, const std::string& message);

/// The reply line plus the one side effect a request can carry. The
/// transport must write `reply` to the client *before* acting on
/// `shutdown` — acting first would race the server teardown against the
/// in-flight response bytes.
struct HandledLine {
  std::string reply;
  bool shutdown = false;
};

/// The full request->response mapping: parse, dispatch to `service` (or
/// answer admin requests in place), render. Never throws — every failure
/// renders as an error reply.
HandledLine handle_request(Service& service, const std::string& line);

/// handle_request without the side-effect channel (tests, one-shot
/// embedders): a shutdown request is answered but has no effect.
std::string handle_line(Service& service, const std::string& line);

}  // namespace serve
