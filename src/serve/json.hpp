// Minimal dependency-free JSON value: parser and canonical writer.
//
// Exactly what the newline-delimited-JSON wire protocol needs and nothing
// more: the five JSON types with numbers held as doubles (every protocol
// field fits — integers up to 2^53 round-trip exactly), object keys in
// insertion order, full string escaping, and precise parse errors with a
// byte offset. No streaming, no comments, no extensions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace serve {

/// Thrown on malformed JSON text or on type-mismatched field access; the
/// message is safe to echo back to the client verbatim.
class JsonError : public support::InvalidArgument {
 public:
  explicit JsonError(std::string msg)
      : support::InvalidArgument(std::move(msg)) {}
};

class Json;
using JsonMembers = std::vector<std::pair<std::string, Json>>;

/// One JSON value. Value semantics; cheap to move.
class Json {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Json() = default;  // null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(std::int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}

  static Json array(std::vector<Json> items);
  static Json object(JsonMembers members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const JsonMembers& as_object() const;

  /// Object member lookup; null when absent (objects reject duplicate
  /// keys at parse time, so lookup is unambiguous).
  const Json* find(const std::string& key) const;

  /// Serializes to compact JSON (no whitespace). Numbers render via the
  /// engine's canonical_double, integral values without an exponent or
  /// trailing ".0" — stable bytes for identical values.
  std::string dump() const;

  /// Parses exactly one JSON value spanning all of `text` (trailing
  /// whitespace allowed); throws JsonError otherwise.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  /// Array items or object members (indirect so Json stays movable while
  /// incomplete-type recursion resolves).
  std::shared_ptr<const std::vector<Json>> array_;
  std::shared_ptr<const JsonMembers> object_;
};

/// Escapes `text` as a JSON string literal, including the quotes.
std::string json_quote(const std::string& text);

}  // namespace serve
