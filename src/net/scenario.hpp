// The scenario registry: named, parameterized network configurations.
//
// A scenario family ("single-optimal", "hashrate-grid", ...) expands into
// one or more concrete Scenario points; the batch runner fans each point
// across seeds. Scenarios are plain data (copyable, no live agents) so a
// grid can be prepared once and executed from many threads; the strategy
// analyses a scenario needs (Algorithm 1 for "optimal", or a strategy
// file via analysis/strategy_io) are resolved once per scenario by
// prepare_scenario and shared immutably across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/mdp_miner.hpp"
#include "net/network.hpp"

namespace engine {
class Engine;
}

namespace net {

struct MinerSpec {
  enum class Kind : std::uint8_t { kHonest = 0, kSm1 = 1, kStrategy = 2 };

  Kind kind = Kind::kHonest;
  double weight = 1.0;  ///< Relative hashrate.

  // kStrategy only: the attack model the agent simulates and the strategy
  // it replays — "optimal" (Algorithm 1), "honest", "never-release", or
  // "file:<path>" for a strategy saved by `analyze --save-strategy`.
  selfish::AttackParams attack;
  std::string strategy = "optimal";
};

struct Scenario {
  std::string name;     ///< Registry family this point came from.
  std::string variant;  ///< Point label, e.g. "p=0.30 gamma=0.50 delay=0".
  std::vector<MinerSpec> miners;
  Topology topology;
  /// How blocks travel (direct origin-to-all vs. store-and-forward
  /// gossip). Deliberately *not* part of the variant label: a zero-delay
  /// gossip batch must render byte-identical CSV to its direct twin.
  PropagationMode propagation = PropagationMode::kDirect;
  TiePolicy tie_policy = TiePolicy::kGammaShared;
  double gamma = 0.5;
  double block_interval = 600.0;
  std::uint64_t blocks = 100'000;
  std::uint32_t warmup_heights = 200;
  int confirm_depth = 12;
  /// See NetworkConfig::lazy_clock_reschedule (default on; off restores
  /// the resample-after-every-event clock for A/B validation).
  bool lazy_clock_reschedule = true;

  /// Combined relative hashrate of the non-honest miners.
  double attacker_power() const;
};

/// Knobs shared by the registry families; every family reads the subset
/// it understands.
struct ScenarioOptions {
  double p = 0.3;            ///< Attacker hashrate share.
  double gamma = 0.5;        ///< Tie-race parameter.
  double delay = 0.0;        ///< One-way propagation delay (seconds).
  double block_interval = 600.0;
  std::uint64_t blocks = 100'000;
  int honest_miners = 3;     ///< Honest nodes sharing the honest power.
  int d = 2, f = 1, l = 4;   ///< Attack model for "optimal" strategies.
  std::string strategy = "optimal";  ///< Strategy of kStrategy attackers.
  /// Propagation mode applied to every family (gossip-delay forces
  /// kGossip regardless — it has nothing to show under direct).
  PropagationMode propagation = PropagationMode::kDirect;
  /// partition-attack: the split window as fractions of the expected run
  /// duration (blocks x block_interval), and the fraction of the honest
  /// miners cut off from the attacker's side.
  double partition_start = 0.25;
  double partition_stop = 0.45;
  double partition_fraction = 0.5;
  /// asymmetric-star: honest up-spoke (announce) delay = asymmetry x
  /// delay, honest down-spoke (listen) delay = delay.
  double asymmetry = 4.0;
  // Algorithm 1 precision is not a scenario property: pass it to
  // prepare_scenario / BatchOptions::epsilon.
};

/// Names understood by make_scenarios, in registry order.
std::vector<std::string> scenario_names();

/// One line per registered family: name + what it models.
std::string scenario_help();

/// Expands the named family into concrete scenario points (sweeps expand
/// into several). Throws support::InvalidArgument on an unknown name.
std::vector<Scenario> make_scenarios(const std::string& name,
                                     const ScenarioOptions& options);

/// A scenario with its strategy analyses resolved. models/policies run
/// parallel to scenario.miners (null for non-strategy miners) and are
/// immutable — safe to share across batch threads.
struct PreparedScenario {
  Scenario scenario;
  std::vector<std::shared_ptr<const selfish::SelfishModel>> models;
  std::vector<std::shared_ptr<const mdp::Policy>> policies;
  /// Exact ERRev the analysis predicts for the first "optimal" attacker
  /// (NaN when no such attacker) — the reference the zero-delay network
  /// must reproduce.
  double predicted_errev;
};

PreparedScenario prepare_scenario(const Scenario& scenario,
                                  double epsilon = 1e-3);

/// Prepares a whole grid at once: every "optimal" Algorithm 1 analysis
/// across the grid is submitted to `engine` as one deduplicated batch
/// (parallel across warm-start chains, served from the engine's store
/// when cached). The prepared scenarios — including predicted_errev — are
/// identical for a given grid at any engine thread count, so batch output
/// stays bit-identical no matter how preparation was parallelized.
std::vector<PreparedScenario> prepare_scenarios(
    const std::vector<Scenario>& scenarios, double epsilon,
    engine::Engine& engine);

/// Instantiates fresh agents and executes one run. Thread-safe across
/// distinct calls on one PreparedScenario.
NetworkResult run_scenario(const PreparedScenario& prepared,
                           std::uint64_t seed);

}  // namespace net
