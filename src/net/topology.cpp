#include "net/topology.hpp"

#include <utility>

namespace net {

Topology Topology::complete(std::size_t nodes) {
  SM_REQUIRE(nodes > 0, "topology needs at least one node");
  Topology t;
  t.nodes_ = nodes;
  t.links_.assign(nodes * nodes, 0.0);
  return t;
}

Topology Topology::uniform(std::size_t nodes, double delay) {
  SM_REQUIRE(delay >= 0.0, "negative propagation delay");
  Topology t = complete(nodes);
  t.links_.assign(nodes * nodes, delay);
  for (std::size_t i = 0; i < nodes; ++i) t.links_[i * nodes + i] = 0.0;
  t.finish_links();
  return t;
}

Topology Topology::star(const std::vector<double>& spoke_delays) {
  return star_asymmetric(spoke_delays, spoke_delays);
}

Topology Topology::star_asymmetric(const std::vector<double>& up,
                                   const std::vector<double>& down) {
  const std::size_t nodes = up.size();
  SM_REQUIRE(down.size() == nodes,
             "asymmetric star needs matching up/down spoke lists, got ",
             up.size(), " vs ", down.size());
  Topology t = complete(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    SM_REQUIRE(up[i] >= 0.0 && down[i] >= 0.0, "negative spoke delay");
    for (std::size_t j = 0; j < nodes; ++j) {
      if (i != j) t.links_[i * nodes + j] = up[i] + down[j];
    }
  }
  t.finish_links();
  return t;
}

Topology Topology::line(const std::vector<double>& hop_delays) {
  const std::size_t nodes = hop_delays.size() + 1;
  Topology t;
  t.nodes_ = nodes;
  t.links_.assign(nodes * nodes, kNoLink);
  for (std::size_t i = 0; i < nodes; ++i) t.links_[i * nodes + i] = 0.0;
  for (std::size_t i = 0; i + 1 < nodes; ++i) {
    SM_REQUIRE(hop_delays[i] >= 0.0, "negative hop delay");
    t.links_[i * nodes + (i + 1)] = hop_delays[i];
    t.links_[(i + 1) * nodes + i] = hop_delays[i];
  }
  t.finish_links();
  return t;
}

Topology Topology::from_matrix(std::vector<std::vector<double>> matrix) {
  const std::size_t nodes = matrix.size();
  Topology t = complete(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    SM_REQUIRE(matrix[i].size() == nodes, "delay matrix must be square");
    for (std::size_t j = 0; j < nodes; ++j) {
      if (i == j) continue;
      SM_REQUIRE(matrix[i][j] >= 0.0 && matrix[i][j] != kNoLink,
                 "invalid propagation delay");
      t.links_[i * nodes + j] = matrix[i][j];
    }
  }
  t.finish_links();
  return t;
}

Topology Topology::from_links(std::vector<std::vector<double>> links) {
  const std::size_t nodes = links.size();
  SM_REQUIRE(nodes > 0, "topology needs at least one node");
  Topology t;
  t.nodes_ = nodes;
  t.links_.assign(nodes * nodes, kNoLink);
  for (std::size_t i = 0; i < nodes; ++i) {
    SM_REQUIRE(links[i].size() == nodes, "link matrix must be square");
    for (std::size_t j = 0; j < nodes; ++j) {
      if (i == j) {
        t.links_[i * nodes + j] = 0.0;
        continue;
      }
      SM_REQUIRE(links[i][j] >= 0.0, "negative propagation delay");
      t.links_[i * nodes + j] = links[i][j];
    }
  }
  t.finish_links();
  return t;
}

void Topology::finish_links() {
  const std::size_t n = nodes_;
  delays_ = links_;
  // Floyd–Warshall: the effective (direct-mode) delay is the cheapest
  // relay path — exactly what a store-and-forward network with instant
  // forwarding would achieve, so Direct and Gossip agree on arrival
  // times whenever no partition interferes.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double ik = delays_[i * n + k];
      if (ik == kNoLink) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double kj = delays_[k * n + j];
        if (kj == kNoLink) continue;
        double& ij = delays_[i * n + j];
        if (ik + kj < ij) ij = ik + kj;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      SM_REQUIRE(delays_[i * n + j] != kNoLink,
                 "topology is not strongly connected: no path from ", i,
                 " to ", j);
    }
  }
  neighbors_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && links_[i * n + j] != kNoLink) {
        neighbors_[i].push_back(static_cast<NodeId>(j));
      }
    }
  }
}

double Topology::max_delay() const {
  double worst = 0.0;
  for (double d : delays_) {
    if (d > worst) worst = d;
  }
  return worst;
}

void Topology::add_partition(PartitionWindow window) {
  SM_REQUIRE(window.group.size() == nodes_, "partition groups cover ",
             window.group.size(), " nodes, topology has ", nodes_);
  SM_REQUIRE(window.start >= 0.0 && window.end > window.start,
             "partition window must satisfy 0 <= start < end");
  partitions_.push_back(std::move(window));
}

double Topology::next_heal(NodeId from, NodeId to, double at) const {
  SM_REQUIRE(from < nodes_ && to < nodes_, "topology node out of range");
  // Fixed point: jumping to one window's end may land inside another
  // (overlapping or abutting) window, so rescan until nothing cuts.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const PartitionWindow& w : partitions_) {
      if (at >= w.start && at < w.end && w.group[from] != w.group[to]) {
        at = w.end;
        moved = true;
      }
    }
  }
  return at;
}

bool Topology::cut_slow(NodeId from, NodeId to, double at) const {
  for (const PartitionWindow& w : partitions_) {
    if (at >= w.start && at < w.end && w.group[from] != w.group[to]) {
      return true;
    }
  }
  return false;
}

}  // namespace net
