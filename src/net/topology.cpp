#include "net/topology.hpp"

#include <utility>

namespace net {

Topology Topology::uniform(std::size_t nodes, double delay) {
  SM_REQUIRE(nodes > 0, "topology needs at least one node");
  SM_REQUIRE(delay >= 0.0, "negative propagation delay");
  Topology t;
  t.nodes_ = nodes;
  t.delays_.assign(nodes * nodes, delay);
  for (std::size_t i = 0; i < nodes; ++i) t.delays_[i * nodes + i] = 0.0;
  return t;
}

Topology Topology::star(const std::vector<double>& spoke_delays) {
  const std::size_t nodes = spoke_delays.size();
  SM_REQUIRE(nodes > 0, "topology needs at least one node");
  Topology t;
  t.nodes_ = nodes;
  t.delays_.assign(nodes * nodes, 0.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    SM_REQUIRE(spoke_delays[i] >= 0.0, "negative spoke delay");
    for (std::size_t j = 0; j < nodes; ++j) {
      if (i != j) t.delays_[i * nodes + j] = spoke_delays[i] + spoke_delays[j];
    }
  }
  return t;
}

Topology Topology::from_matrix(std::vector<std::vector<double>> matrix) {
  const std::size_t nodes = matrix.size();
  SM_REQUIRE(nodes > 0, "topology needs at least one node");
  Topology t;
  t.nodes_ = nodes;
  t.delays_.assign(nodes * nodes, 0.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    SM_REQUIRE(matrix[i].size() == nodes, "delay matrix must be square");
    for (std::size_t j = 0; j < nodes; ++j) {
      if (i == j) continue;
      SM_REQUIRE(matrix[i][j] >= 0.0, "negative propagation delay");
      t.delays_[i * nodes + j] = matrix[i][j];
    }
  }
  return t;
}

double Topology::max_delay() const {
  double worst = 0.0;
  for (double d : delays_) {
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace net
