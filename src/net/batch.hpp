// The batch runner: fans a scenario-grid x seed matrix across a thread
// pool and aggregates per-point statistics with confidence intervals.
//
// Determinism contract: each run's seed is a pure function of the base
// seed and the run's position in the grid, and aggregation happens in
// grid order after all runs complete — so the aggregated results are
// bit-identical whether the batch executes on 1 thread or N.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/scenario.hpp"
#include "support/stats.hpp"

namespace net {

struct BatchOptions {
  int runs_per_scenario = 8;
  int threads = 1;  ///< <= 0 means all hardware threads.
  std::uint64_t base_seed = 0x5eedULL;
  double epsilon = 1e-3;  ///< Algorithm 1 precision for "optimal" attackers.
  /// Experiment-engine cache directory for the per-point Algorithm 1
  /// preparations; empty = prepare in memory only (no resume across
  /// processes). Preparation fans out on `threads` either way.
  std::string cache_dir;
};

/// Aggregated statistics of one scenario point across its seeds.
struct ScenarioAggregate {
  std::string name;
  std::string variant;
  int runs = 0;
  double attacker_power = 0.0;   ///< Configured hashrate of the attackers.
  double predicted_errev = 0.0;  ///< Analysis prediction (NaN if none).

  support::RunningStat attacker_share;  ///< Canonical share of attackers.
  support::RunningStat stale_rate;
  /// Measured over runs with at least one resolved tie race.
  support::RunningStat effective_gamma;
  /// Worst end-to-end propagation of a published block, per run. Mode-
  /// agnostic (gossip matches direct on a static topology), so it is safe
  /// in the CSV that the CI byte-compares across propagation modes.
  support::RunningStat worst_propagation;
  std::vector<support::RunningStat> miner_share;  ///< Per miner.
  std::uint64_t total_races = 0;
  std::uint64_t total_events = 0;
  // Transport breakdown across all runs of the point (mode-dependent:
  // relays and duplicates only exist under gossip; cut sends only with
  // partition windows). Reported in tables/benches, not the CSV.
  std::uint64_t total_relays = 0;
  std::uint64_t total_syncs = 0;
  std::uint64_t total_cut_sends = 0;
};

/// Prepares every scenario (strategy analyses run once, shared across
/// seeds and threads), executes the full grid on the pool, aggregates.
std::vector<ScenarioAggregate> run_batch(
    const std::vector<Scenario>& scenarios, const BatchOptions& options);

/// CSV rendering of a batch (one row per scenario point) for plotting.
void write_batch_csv(const std::vector<ScenarioAggregate>& aggregates,
                     std::ostream& out);

/// The seed of run `run_index` of scenario `scenario_index` — exposed so
/// tests can reproduce an individual batch run exactly.
std::uint64_t batch_run_seed(std::uint64_t base_seed,
                             std::size_t scenario_index,
                             std::size_t run_index);

}  // namespace net
