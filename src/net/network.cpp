#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/event.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace net {

namespace {

/// Simulator throughput metrics, registered at static init so a fresh
/// `metrics` scrape lists the net family before any run.
struct NetMetrics {
  obs::Counter& runs = obs::counter(
      "selfish_net_runs_total", "Network simulations completed");
  obs::Counter& events = obs::counter(
      "selfish_net_events_total", "Discrete events processed across runs");
  obs::Gauge& queue_high_water = obs::gauge(
      "selfish_net_queue_high_water",
      "Largest event-queue depth seen by any run (process high-water)");
  obs::Histogram& run_seconds = obs::histogram(
      "selfish_net_run_seconds", "Wall time of one network simulation",
      obs::exponential_buckets(1e-4, 4.0, 12));
};

NetMetrics& net_metrics() {
  static NetMetrics metrics;
  return metrics;
}

[[maybe_unused]] const NetMetrics& g_registered_net_metrics = net_metrics();

class Simulator {
 public:
  Simulator(const NetworkConfig& config, std::vector<MinerSetup> miners)
      : config_(config), miners_(std::move(miners)) {
    const std::size_t n = miners_.size();
    SM_REQUIRE(n >= 1, "network needs at least one miner");
    SM_REQUIRE(config_.topology.num_nodes() == n,
               "topology has ", config_.topology.num_nodes(),
               " nodes for ", n, " miners");
    SM_REQUIRE(config_.block_interval > 0.0, "block interval must be > 0");
    double total = 0.0;
    for (const MinerSetup& m : miners_) {
      SM_REQUIRE(m.agent != nullptr, "null miner agent");
      SM_REQUIRE(m.weight >= 0.0, "negative miner weight");
      total += m.weight;
    }
    SM_REQUIRE(total > 0.0, "total hashrate must be positive");
    total_weight_ = total;

    rngs_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      miners_[i].agent->attach(static_cast<NodeId>(i));
      rngs_.push_back(support::Rng::for_stream(config_.seed,
                                               static_cast<std::uint64_t>(i)));
    }
    generation_.assign(n, 0);
    armed_lanes_.assign(n, 0);
    known_.resize(n);
    orphans_.resize(n);
    sync_pending_.resize(n);
    result_.canonical.assign(n, 0);
    result_.mined.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) schedule_mining(static_cast<NodeId>(i));
  }

  NetworkResult run() {
    while (!queue_.empty() && result_.mine_events < config_.blocks) {
      note_queue_depth();
      const Event event = queue_.pop();
      if (event.kind == EventKind::kMine) {
        if (event.generation != generation_[event.node]) continue;  // stale
        now_ = event.time;
        ++result_.events;
        handle_mine(event.node);
      } else if (event.kind == EventKind::kReannounce) {
        handle_reannounce(event);
      } else {
        process_arrival(event);
      }
      result_.sim_time = now_;
    }
    // Mining budget exhausted: drain the in-flight arrivals (discarding
    // pending mine events — no new blocks are found) so accounting and
    // convergence are measured on a quiesced network instead of whatever
    // the last mine event left mid-air. Terminates: arrivals spawn new
    // arrivals only for newly accepted blocks, relays happen once per
    // (node, block), and sync fetches walk finite ancestries.
    while (!queue_.empty()) {
      note_queue_depth();
      const Event event = queue_.pop();
      if (event.kind == EventKind::kMine) continue;
      if (event.kind == EventKind::kReannounce) {
        handle_reannounce(event);
      } else {
        process_arrival(event);
      }
      result_.sim_time = now_;
    }
    finalize();
    return std::move(result_);
  }

 private:
  /// Samples the backlog at every pop: pushes only happen while handling
  /// the previous event, so the pre-pop size bounds the run's depth.
  /// Part of NetworkResult (a deterministic simulation statistic), not an
  /// obs-only quantity.
  void note_queue_depth() {
    const std::uint64_t depth = static_cast<std::uint64_t>(queue_.size());
    if (depth > result_.queue_high_water) result_.queue_high_water = depth;
  }

  void process_arrival(const Event& event) {
    now_ = event.time;
    ++result_.events;
    if (event.kind == EventKind::kRelay) ++result_.relay_arrivals;
    if (event.kind == EventKind::kSync) ++result_.sync_arrivals;
    handle_delivery(event.node, event.from, event.block);
  }

  // ------------------------------------------------------------- mining

  double rate_of(NodeId node) const {
    const double lanes =
        static_cast<double>(miners_[node].agent->lanes());
    return miners_[node].weight / total_weight_ * lanes /
           config_.block_interval;
  }

  /// (Re)arms `node`'s exponential clock from `now_`, invalidating any
  /// pending mine event. Thanks to memorylessness, re-drawing the
  /// remaining waiting time at any event is distribution-preserving, so
  /// rescheduling is always *correct*; maybe_reschedule decides when it
  /// is *necessary*.
  void schedule_mining(NodeId node) {
    ++generation_[node];
    armed_lanes_[node] = miners_[node].agent->lanes();
    const double rate = rate_of(node);
    if (rate <= 0.0) return;  // zero hashrate or no lanes: clock parked
    const double u = rngs_[node].next_double();
    const double wait = -std::log1p(-u) / rate;
    Event event;
    event.time = now_ + wait;
    event.kind = EventKind::kMine;
    event.node = node;
    event.generation = generation_[node];
    queue_.push(event);
  }

  void handle_mine(NodeId node) {
    ++result_.mine_events;
    ++result_.mined[node];
    const std::uint32_t lanes = miners_[node].agent->lanes();
    SM_ENSURE(lanes > 0, "mining event on a node with no lanes");
    const std::uint32_t lane =
        lanes == 1 ? 0
                   : static_cast<std::uint32_t>(rngs_[node].next_below(lanes));
    const std::size_t arena_before = arena_.size();
    outbox_.clear();
    MinerContext ctx{arena_, rngs_[node], now_, outbox_};
    miners_[node].agent->on_mined(lane, ctx);
    // Every block the agent minted is known to it (broadcast or withheld).
    for (std::size_t b = arena_before; b < arena_.size(); ++b) {
      mark_known(node, static_cast<BlockId>(b));
    }
    resolve_race(node, arena_before);
    broadcast(node);
    schedule_mining(node);
  }

  // ----------------------------------------------------------- delivery

  /// Fans the origin's outbox out to the network. Direct mode sends to
  /// every other node with the effective (shortest-path) delay; gossip
  /// mode sends only to the origin's topology neighbors with the per-hop
  /// link delay — the receivers forward on first receipt (relay()).
  void broadcast(NodeId from) {
    if (outbox_.empty()) return;
    for (const BlockId block : outbox_) {
      note_first_broadcast(block);
      if (config_.propagation == PropagationMode::kGossip) {
        for (const NodeId to : config_.topology.neighbors(from)) {
          send(EventKind::kDeliver, from, to, block,
               config_.topology.link_delay(from, to));
        }
      } else {
        for (NodeId to = 0; to < miners_.size(); ++to) {
          if (to == from) continue;
          send(EventKind::kDeliver, from, to, block,
               config_.topology.delay(from, to));
        }
      }
    }
    outbox_.clear();
  }

  /// Gossip forwarding: `node` just accepted `block` and forwards it
  /// along its own links (skipping the hop it came from — everyone else
  /// deduplicates on first receipt anyway, the skip only trims traffic).
  void relay(NodeId node, NodeId came_from, BlockId block) {
    for (const NodeId to : config_.topology.neighbors(node)) {
      if (to == came_from) continue;
      send(EventKind::kRelay, node, to, block,
           config_.topology.link_delay(node, to));
    }
  }

  /// Schedules one block arrival unless the edge is cut by an active
  /// partition window. Cuts apply at *send* time: a hop whose forward
  /// moment falls inside a split window is dropped, messages already in
  /// flight when a window opens still arrive. Returns whether the
  /// message was actually scheduled.
  bool send(EventKind kind, NodeId from, NodeId to, BlockId block,
            double delay) {
    if (config_.topology.cut(from, to, now_)) {
      ++result_.cut_sends;
      if (config_.reannounce_interval > 0.0) {
        // Retry once the cutting window(s) should have healed — never
        // earlier than one interval out, never while a currently-known
        // window still cuts the edge. A retry that lands inside a window
        // opened later re-enters this branch and reschedules past *its*
        // end, so every retry strictly advances past at least one window
        // and the chain of retries terminates.
        Event retry;
        retry.time = std::max(now_ + config_.reannounce_interval,
                              config_.topology.next_heal(from, to, now_));
        retry.kind = EventKind::kReannounce;
        retry.node = to;
        retry.from = from;
        retry.block = block;
        queue_.push(retry);
      }
      return false;
    }
    Event event;
    event.time = now_ + delay;
    event.kind = kind;
    event.node = to;
    event.from = from;
    event.block = block;
    queue_.push(event);
    return true;
  }

  /// A cut send's timer fired: re-offer the block to the original
  /// destination as a fresh kDeliver. If the receiver learned the block
  /// through another path meanwhile, the arrival dedups; if the edge is
  /// cut again (a later window), send() schedules the next retry.
  void handle_reannounce(const Event& event) {
    now_ = event.time;
    ++result_.events;
    ++result_.reannounce_events;
    send(EventKind::kDeliver, event.from, event.node, event.block,
         hop_delay(event.from, event.node));
  }

  bool knows(NodeId node, BlockId block) const {
    if (block == kGenesis) return true;
    if (arena_.get(block).miner == node) return true;
    const auto& flags = known_[node];
    return block < flags.size() && flags[block] != 0;
  }

  void mark_known(NodeId node, BlockId block) {
    auto& flags = known_[node];
    if (flags.size() <= block) flags.resize(arena_.size(), 0);
    flags[block] = 1;
  }

  void handle_delivery(NodeId node, NodeId from, BlockId block) {
    if (knows(node, block)) {
      ++result_.duplicate_arrivals;  // e.g. re-released or relayed copies
      return;
    }
    const BlockId parent = arena_.get(block).parent;
    if (!knows(node, parent)) {
      // Out-of-order arrival: park until the parent shows up, and pull
      // the missing ancestor from the sender (it accepted the block, so
      // it knows the whole ancestry). One round trip per block; if the
      // parent is itself an orphan here, its arrival re-enters this path
      // and fetches the next ancestor — recursive sync down to the first
      // common block. This is what lets partitioned sides reconverge
      // after a heal.
      auto& parked = orphans_[node][parent];
      if (std::find(parked.begin(), parked.end(), block) != parked.end()) {
        // Another relayed copy of an already-parked block (common right
        // after a heal, one copy per forwarding neighbor): its ancestor
        // fetch is already in flight — don't start a second sync storm.
        ++result_.duplicate_arrivals;
        return;
      }
      // One kSync round trip per missing parent, not per orphan child —
      // but only a fetch that was actually *scheduled* counts as in
      // flight: a fetch dropped on a partition-cut edge must leave the
      // retry path open, or the next child arriving after the heal could
      // never recover the parent and the sides would stay forked.
      parked.push_back(block);
      if (from != kNoNode && sync_pending_[node].count(parent) == 0 &&
          send(EventKind::kSync, from, node, parent,
               hop_delay(node, from) + hop_delay(from, node))) {
        sync_pending_[node].insert(parent);
      }
      return;
    }
    deliver_chain(node, from, block);
    maybe_reschedule(node);  // lane count may have changed
  }

  /// One-way delay used for sync round trips: the link delay between
  /// adjacent nodes under gossip, the effective delay otherwise (under
  /// gossip a sync partner is normally a neighbor; the effective delay
  /// covers the degenerate cases).
  double hop_delay(NodeId from, NodeId to) const {
    if (config_.propagation == PropagationMode::kGossip &&
        config_.topology.has_link(from, to)) {
      return config_.topology.link_delay(from, to);
    }
    return config_.topology.delay(from, to);
  }

  /// Post-delivery clock maintenance. Lazy mode re-arms only when the
  /// handled events changed the node's lane count (the pending event's
  /// waiting time stays valid while the rate is unchanged); legacy mode
  /// re-draws unconditionally.
  void maybe_reschedule(NodeId node) {
    if (config_.lazy_clock_reschedule &&
        miners_[node].agent->lanes() == armed_lanes_[node]) {
      return;
    }
    schedule_mining(node);
  }

  /// Delivers `block` and any parked descendants that became deliverable.
  /// `from` is the sender of the triggering arrival; unparked descendants
  /// lost their sender when parked (kNoNode — their relays skip no hop).
  void deliver_chain(NodeId node, NodeId from, BlockId block) {
    std::vector<std::pair<BlockId, NodeId>> pending{{block, from}};
    while (!pending.empty()) {
      const auto [next, sender] = pending.back();
      pending.pop_back();
      if (knows(node, next)) continue;  // parked twice via duplicate sends
      deliver_one(node, sender, next);
      auto& parked = orphans_[node];
      const auto it = parked.find(next);
      if (it != parked.end()) {
        // Reverse: the work stack pops from the back, and parked children
        // must be processed in arrival order.
        for (auto r = it->second.rbegin(); r != it->second.rend(); ++r) {
          pending.emplace_back(*r, kNoNode);
        }
        parked.erase(it);
      }
    }
  }

  void deliver_one(NodeId node, NodeId from, BlockId block) {
    ++result_.deliveries;
    sync_pending_[node].erase(block);  // the awaited ancestor arrived
    note_propagation(block);
    Miner& agent = *miners_[node].agent;
    const BlockId tip_before = agent.tip();
    detect_race(node, block, tip_before);
    outbox_.clear();
    MinerContext ctx{arena_, rngs_[node], now_, outbox_};
    const std::size_t arena_before = arena_.size();
    agent.on_block(block, ctx);
    // A delivery above the race height means the attacker published a
    // longer chain (an override in flight): the race was never settled by
    // the honest network's branch choice — drop the sample. Honest blocks
    // above the race height cannot reach here: they resolve the race at
    // their mine event, before broadcast.
    if (race_active_ && arena_.height(block) > race_height_) {
      race_active_ = false;
    }
    mark_known(node, block);
    for (std::size_t b = arena_before; b < arena_.size(); ++b) {
      mark_known(node, static_cast<BlockId>(b));
    }
    if (config_.propagation == PropagationMode::kGossip) {
      relay(node, from, block);
    }
    broadcast(node);
  }

  // ------------------------------------------------- propagation stats

  /// Records the moment a block first enters the transport (its release:
  /// mined-and-announced for honest blocks, publication for withheld
  /// attacker blocks).
  void note_first_broadcast(BlockId block) {
    if (first_sent_.size() < arena_.size()) {
      first_sent_.resize(arena_.size(), -1.0);
    }
    if (first_sent_[block] < 0.0) first_sent_[block] = now_;
  }

  void note_propagation(BlockId block) {
    if (block >= first_sent_.size() || first_sent_[block] < 0.0) return;
    const double age = now_ - first_sent_[block];
    if (age > result_.worst_propagation) result_.worst_propagation = age;
  }

  // -------------------------------------------------- effective gamma

  /// A tie race starts when an attacker-mined block reaches an honest
  /// node already holding a *sibling* tip (the classical tip-vs-tip
  /// race; deeper equal-length releases are overrides-in-flight, not
  /// races, and are excluded to keep the statistic comparable to gamma).
  void detect_race(NodeId node, BlockId block, BlockId tip_before) {
    if (!miners_[node].honest || race_active_) return;
    if (block == tip_before ||
        arena_.get(block).parent != arena_.get(tip_before).parent) {
      return;
    }
    const NodeId challenger_miner = arena_.get(block).miner;
    if (challenger_miner == kNoNode || miners_[challenger_miner].honest) {
      return;
    }
    race_active_ = true;
    race_height_ = arena_.height(block);
    race_challenger_ = block;
    ++result_.races;
  }

  /// The first block mined above the race height settles the measurement.
  /// Gamma is the share of *honest* power mining on the challenger during
  /// the race, so only an honest block resolves it: challenger point iff
  /// that block extends the challenger. An attacker block above the race
  /// height preempts the race instead (the attacker settled it by mining,
  /// not the honest network's branch choice) — the sample is discarded.
  void resolve_race(NodeId node, std::size_t arena_before) {
    if (!race_active_) return;
    for (std::size_t b = arena_before; b < arena_.size(); ++b) {
      const BlockId id = static_cast<BlockId>(b);
      if (arena_.height(id) <= race_height_) continue;
      race_active_ = false;
      if (!miners_[node].honest) return;  // preempted, not measured
      ++result_.races_resolved;
      if (arena_.ancestor_at(id, race_height_) == race_challenger_) {
        ++result_.races_challenger_won;
      }
      return;
    }
  }

  // --------------------------------------------------------- accounting

  void finalize() {
    // The canonical chain is the best tip the *honest* part of the
    // network holds (withheld attacker blocks are not canonical). Ties
    // break toward the smallest block id — deterministic and
    // first-created.
    BlockId best = kGenesis;
    bool any_honest = false;
    for (const MinerSetup& m : miners_) {
      if (!m.honest) continue;
      any_honest = true;
      best = better_tip(best, m.agent->tip());
    }
    if (!any_honest) {
      for (const MinerSetup& m : miners_) {
        best = better_tip(best, m.agent->tip());
      }
    }
    result_.tip_height = arena_.height(best);
    result_.arena_blocks = static_cast<std::uint64_t>(arena_.size()) - 1;
    for (const MinerSetup& m : miners_) {
      result_.wasted.push_back(m.agent->wasted_blocks());
      result_.final_tips.push_back(m.agent->tip());
    }
    // Convergence is an *honest*-network property: attackers expose
    // their private tips, which legitimately diverge. `any_honest` and
    // `best` already implement the same honest-first fallback.
    result_.converged = true;
    BlockId reference = best;
    bool reference_set = false;
    for (std::size_t i = 0; i < miners_.size(); ++i) {
      if (any_honest && !miners_[i].honest) continue;
      if (!reference_set) {
        reference = result_.final_tips[i];
        reference_set = true;
      } else if (result_.final_tips[i] != reference) {
        result_.converged = false;
      }
    }

    const std::uint32_t top =
        result_.tip_height >
                static_cast<std::uint32_t>(config_.confirm_depth)
            ? result_.tip_height -
                  static_cast<std::uint32_t>(config_.confirm_depth)
            : 0;
    BlockId cursor = best;
    while (arena_.height(cursor) > top) cursor = arena_.get(cursor).parent;
    while (arena_.height(cursor) > config_.warmup_heights) {
      const NodeId owner = arena_.get(cursor).miner;
      SM_ENSURE(owner != kNoNode, "counted block without a miner");
      ++result_.canonical[owner];
      ++result_.counted;
      cursor = arena_.get(cursor).parent;
    }
  }

  BlockId better_tip(BlockId a, BlockId b) const {
    if (arena_.height(a) != arena_.height(b)) {
      return arena_.height(a) > arena_.height(b) ? a : b;
    }
    return a < b ? a : b;
  }

  NetworkConfig config_;
  std::vector<MinerSetup> miners_;
  double total_weight_ = 0.0;

  BlockArena arena_;
  EventQueue queue_;
  double now_ = 0.0;
  std::vector<support::Rng> rngs_;
  std::vector<std::uint64_t> generation_;
  std::vector<std::uint32_t> armed_lanes_;  ///< Lanes when last armed.
  std::vector<std::vector<char>> known_;  ///< Per node, indexed by block.
  std::vector<std::unordered_map<BlockId, std::vector<BlockId>>> orphans_;
  /// Per node: parents with a scheduled (not cut) kSync fetch in flight.
  std::vector<std::unordered_set<BlockId>> sync_pending_;
  std::vector<BlockId> outbox_;
  std::vector<double> first_sent_;  ///< Block -> first broadcast time (-1
                                    ///< = never entered the transport).

  bool race_active_ = false;
  std::uint32_t race_height_ = 0;
  BlockId race_challenger_ = kGenesis;

  NetworkResult result_;
};

}  // namespace

const char* to_string(PropagationMode mode) {
  switch (mode) {
    case PropagationMode::kDirect: return "direct";
    case PropagationMode::kGossip: return "gossip";
  }
  return "?";
}

PropagationMode propagation_from_string(const std::string& name) {
  if (name == "direct") return PropagationMode::kDirect;
  if (name == "gossip") return PropagationMode::kGossip;
  throw support::InvalidArgument("unknown propagation mode: " + name +
                                 " (expected direct | gossip)");
}

NetworkResult run_network(const NetworkConfig& config,
                          std::vector<MinerSetup> miners) {
  obs::Span span("net.run");
  const support::Timer timer;
  Simulator simulator(config, std::move(miners));
  NetworkResult result = simulator.run();
  if (obs::enabled()) {
    NetMetrics& metrics = net_metrics();
    metrics.runs.add(1);
    metrics.events.add(result.events);
    metrics.queue_high_water.max_of(
        static_cast<std::int64_t>(result.queue_high_water));
    metrics.run_seconds.observe(timer.seconds());
  }
  span.attr("events", serve::Json(static_cast<std::int64_t>(result.events)));
  span.attr("blocks", serve::Json(
      static_cast<std::int64_t>(result.mine_events)));
  return result;
}

}  // namespace net
