// Building blocks of the discrete-event network simulator: the shared
// block arena (a tree of blocks annotated with the mining node) and the
// time-ordered event queue.
//
// Determinism contract: events are ordered by (time, sequence number),
// where the sequence number is assigned at push time. Block-arrival times
// are continuous exponential draws, so exact time ties only arise from
// same-instant deliveries (e.g. a zero-delay broadcast); those resolve in
// push order, which the simulator makes deterministic. Replaying the same
// scenario with the same seed therefore yields the exact same event trace.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "support/check.hpp"

namespace net {

using BlockId = std::uint32_t;
using NodeId = std::uint32_t;

inline constexpr BlockId kGenesis = 0;
inline constexpr NodeId kNoNode = 0xffffffffu;

struct Block {
  BlockId parent = kGenesis;
  std::uint32_t height = 0;
  NodeId miner = kNoNode;  ///< kNoNode for genesis.
  /// Tie-race outcome pinned at release time (TiePolicy::kGammaShared):
  /// when true, a node receiving this block at the same height as its
  /// current tip switches to it; sampled once by the releasing miner so
  /// the whole network resolves the race consistently.
  bool wins_tie = false;
};

/// Append-only tree of every block mined during one run, shared by all
/// nodes (per-node *knowledge* of blocks is tracked by the simulator).
class BlockArena {
 public:
  BlockArena() { blocks_.push_back(Block{}); }  // genesis at id 0

  BlockId add(BlockId parent, NodeId miner, bool wins_tie = false) {
    SM_REQUIRE(parent < blocks_.size(), "unknown parent block ", parent);
    Block block;
    block.parent = parent;
    block.height = blocks_[parent].height + 1;
    block.miner = miner;
    block.wins_tie = wins_tie;
    blocks_.push_back(block);
    return static_cast<BlockId>(blocks_.size() - 1);
  }

  const Block& get(BlockId id) const {
    SM_REQUIRE(id < blocks_.size(), "unknown block ", id);
    return blocks_[id];
  }

  /// Pins the tie-race outcome of an already-mined block; called by an
  /// attacker at *release* time (the coin belongs to the release, not the
  /// mining event — a withheld block may be released into a tie long after
  /// it was found).
  void set_wins_tie(BlockId id, bool wins) {
    SM_REQUIRE(id < blocks_.size() && id != kGenesis,
               "cannot set tie flag on block ", id);
    blocks_[id].wins_tie = wins;
  }

  std::uint32_t height(BlockId id) const { return get(id).height; }
  std::size_t size() const { return blocks_.size(); }

  /// The ancestor of `tip` at exactly `height`; requires
  /// height <= height(tip).
  BlockId ancestor_at(BlockId tip, std::uint32_t height) const {
    SM_REQUIRE(this->height(tip) >= height, "ancestor above tip");
    while (blocks_[tip].height > height) tip = blocks_[tip].parent;
    return tip;
  }

 private:
  std::vector<Block> blocks_;
};

enum class EventKind : std::uint8_t {
  kMine = 0,     ///< A node's mining clock fires (it finds a block).
  kDeliver = 1,  ///< A block broadcast by its origin arrives at a node.
  kRelay = 2,    ///< A store-and-forward hop arrives (gossip mode): the
                 ///< sender accepted the block earlier and forwarded it
                 ///< along one of its topology links.
  kSync = 3,     ///< A parent block fetched in response to an orphaned
                 ///< arrival (the receiver pulled the missing ancestor
                 ///< from the sender; one round trip per block).
  kReannounce = 4,  ///< Timer retry of a send dropped on a partition-cut
                    ///< edge: the original sender re-offers the block
                    ///< once the cutting window should have healed, so
                    ///< orphans survive repeated overlapping splits.
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< Assigned by the queue; total-order tiebreak.
  EventKind kind = EventKind::kMine;
  NodeId node = 0;  ///< The node the event happens at.
  /// kMine: schedule generation — stale when it no longer matches the
  /// node's current generation (the node rescheduled in the meantime).
  std::uint64_t generation = 0;
  /// Arrivals: the arriving block.
  BlockId block = kGenesis;
  /// Arrivals: the node the block came from (the broadcast origin for
  /// kDeliver, the forwarding hop for kRelay, the fetch responder for
  /// kSync); kNoNode for kMine.
  NodeId from = kNoNode;
};

/// Min-heap over (time, seq). Push assigns monotonically increasing
/// sequence numbers, so equal-time events pop in insertion order.
class EventQueue {
 public:
  void push(Event event) {
    event.seq = next_seq_++;
    heap_.push(event);
  }

  Event pop() {
    SM_REQUIRE(!heap_.empty(), "pop from an empty event queue");
    Event out = heap_.top();
    heap_.pop();
    return out;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace net
