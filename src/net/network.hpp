// The continuous-time discrete-event network simulator.
//
// Every miner runs an independent exponential mining clock whose rate is
// weight_i / W * lanes_i / block_interval — competing exponential clocks
// make the winner of each "step" exactly the paper's (p, k)-mining model
// (§2.1), while per-link propagation delays and local chain views add the
// network realism the abstract model collapses into gamma. Blocks are
// broadcast to every other node with the topology's one-way delays,
// delivered in order (a block is handed to an agent only once its parent
// is known there; out-of-order arrivals are parked), and deduplicated.
//
// Beyond per-miner revenue the simulator measures the *effective gamma*:
// the fraction of attacker tie races whose next honest block extends the
// attacker's branch — the operational meaning of the paper's gamma
// parameter, here an emergent property of topology and tie policy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/miner.hpp"
#include "net/topology.hpp"

namespace net {

struct MinerSetup {
  std::unique_ptr<Miner> agent;
  double weight = 1.0;  ///< Relative hashrate (normalized internally).
  bool honest = true;   ///< Honest nodes anchor accounting & race stats.
};

struct NetworkConfig {
  Topology topology;             ///< Must match the number of miners.
  double block_interval = 600.0; ///< Mean time between blocks at one lane
                                 ///< per unit weight (seconds).
  std::uint64_t blocks = 100'000;   ///< Mining events to simulate (incl.
                                    ///< blocks wasted on capped forks).
  std::uint32_t warmup_heights = 100;  ///< Chain prefix excluded from
                                       ///< revenue accounting.
  int confirm_depth = 12;  ///< Contested suffix excluded from accounting.
  std::uint64_t seed = 1;  ///< Per-miner streams derive from this.
  /// Re-arm a miner's exponential clock on a delivery only when the
  /// delivery changed its live lane count (and hence its rate). Both
  /// modes sample the same process — re-drawing the remaining wait of an
  /// unchanged-rate exponential clock is distribution-preserving by
  /// memorylessness — but the lazy mode skips one RNG draw plus one
  /// heap push/pop per delivered block, which dominates event-loop cost
  /// at scale. Off = the original resample-after-every-event behavior
  /// (kept for A/B validation; tests pin the statistical equivalence).
  bool lazy_clock_reschedule = true;
};

struct NetworkResult {
  std::uint64_t events = 0;       ///< Events processed (mine + deliver).
  std::uint64_t mine_events = 0;  ///< Blocks found, including wasted ones.
  std::uint64_t arena_blocks = 0; ///< Blocks actually created (excl. genesis).
  double sim_time = 0.0;          ///< Clock at the last processed event.
  std::uint32_t tip_height = 0;   ///< Height of the final canonical tip.

  /// Canonical blocks per miner inside the accounting window
  /// (warmup_heights, tip_height - confirm_depth].
  std::vector<std::uint64_t> canonical;
  std::uint64_t counted = 0;  ///< Window length = sum of canonical.
  /// Mining events per miner (a proxy for work; includes wasted blocks).
  std::vector<std::uint64_t> mined;
  /// Proofs mined into capped forks and discarded, per miner (non-zero
  /// only for NaS multi-fork attackers).
  std::vector<std::uint64_t> wasted;

  // Attacker tie races (challenger block mined by a non-honest node
  // arriving at the height of an honest node's current tip).
  std::uint64_t races = 0;                 ///< Races started.
  std::uint64_t races_resolved = 0;        ///< Next honest block arrived.
  std::uint64_t races_challenger_won = 0;  ///< ... on the attacker branch.

  /// Share of the counted canonical window owned by `node`; 0 if empty.
  double share(NodeId node) const {
    return counted == 0 ? 0.0
                        : static_cast<double>(canonical[node]) /
                              static_cast<double>(counted);
  }

  /// Empirical gamma: challenger wins over resolved races; 0 if no races
  /// resolved.
  double effective_gamma() const {
    return races_resolved == 0
               ? 0.0
               : static_cast<double>(races_challenger_won) /
                     static_cast<double>(races_resolved);
  }

  /// Fraction of created blocks that did not end up on the canonical
  /// chain (whole run, warmup included); 0 when nothing was mined.
  double stale_rate() const {
    return arena_blocks == 0
               ? 0.0
               : 1.0 - static_cast<double>(tip_height) /
                           static_cast<double>(arena_blocks);
  }
};

/// Runs one network simulation to completion. Deterministic: the same
/// config and agents with the same seed produce the same event trace.
NetworkResult run_network(const NetworkConfig& config,
                          std::vector<MinerSetup> miners);

}  // namespace net
