// The continuous-time discrete-event network simulator.
//
// Every miner runs an independent exponential mining clock whose rate is
// weight_i / W * lanes_i / block_interval — competing exponential clocks
// make the winner of each "step" exactly the paper's (p, k)-mining model
// (§2.1), while per-link propagation delays and local chain views add the
// network realism the abstract model collapses into gamma. Blocks travel
// either directly origin-to-all with the topology's effective one-way
// delays (PropagationMode::kDirect) or store-and-forward along topology
// links with per-hop delays and per-node forwarding on first receipt
// (kGossip); either way a block is handed to an agent only once its
// parent is known there (out-of-order arrivals are parked, and a missing
// ancestor is pulled from the sender — one round trip per block), and
// duplicates are dropped. Timed partition windows on the topology cut
// edges between miner groups at send time; after a window heals the
// sides reconverge through the ancestor-fetch path.
//
// Beyond per-miner revenue the simulator measures the *effective gamma*:
// the fraction of attacker tie races whose next honest block extends the
// attacker's branch — the operational meaning of the paper's gamma
// parameter, here an emergent property of topology and tie policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/miner.hpp"
#include "net/topology.hpp"

namespace net {

struct MinerSetup {
  std::unique_ptr<Miner> agent;
  double weight = 1.0;  ///< Relative hashrate (normalized internally).
  bool honest = true;   ///< Honest nodes anchor accounting & race stats.
};

/// How a published block travels the network.
enum class PropagationMode : std::uint8_t {
  /// The origin sends the block to every other node directly, paying the
  /// topology's effective (shortest-path) delay per destination — the
  /// idealized broadcast primitive of the original simulator.
  kDirect = 0,
  /// Store-and-forward: the origin sends only to its topology neighbors;
  /// each node, on *first* receipt of a block, forwards it along its own
  /// links (dedup drops later copies). Arrival times match kDirect on a
  /// static topology (the effective matrix is the shortest relay path),
  /// but hops interact with partitions — a relay path that crosses a cut
  /// edge at forward time is blocked — and relay traffic is measurable.
  kGossip = 1,
};

const char* to_string(PropagationMode mode);

/// Parses "direct" | "gossip" (throws support::InvalidArgument otherwise).
PropagationMode propagation_from_string(const std::string& name);

struct NetworkConfig {
  Topology topology;             ///< Must match the number of miners.
  PropagationMode propagation = PropagationMode::kDirect;
  double block_interval = 600.0; ///< Mean time between blocks at one lane
                                 ///< per unit weight (seconds).
  std::uint64_t blocks = 100'000;   ///< Mining events to simulate (incl.
                                    ///< blocks wasted on capped forks);
                                    ///< in-flight deliveries are drained
                                    ///< after the last one (no new blocks
                                    ///< are mined while draining).
  std::uint32_t warmup_heights = 100;  ///< Chain prefix excluded from
                                       ///< revenue accounting.
  int confirm_depth = 12;  ///< Contested suffix excluded from accounting.
  std::uint64_t seed = 1;  ///< Per-miner streams derive from this.
  /// Re-arm a miner's exponential clock on a delivery only when the
  /// delivery changed its live lane count (and hence its rate). Both
  /// modes sample the same process — re-drawing the remaining wait of an
  /// unchanged-rate exponential clock is distribution-preserving by
  /// memorylessness — but the lazy mode skips one RNG draw plus one
  /// heap push/pop per delivered block, which dominates event-loop cost
  /// at scale. Off = the original resample-after-every-event behavior
  /// (kept for A/B validation; tests pin the statistical equivalence).
  bool lazy_clock_reschedule = true;
  /// When > 0, a send dropped on a partition-cut edge is retried: the
  /// sender re-announces the block to the same destination at
  /// max(now + interval, heal time of the cutting windows). Each retry
  /// that lands inside a *later* split window reschedules past that
  /// window's end too, so announcements survive repeated overlapping
  /// splits instead of relying on a post-heal block to trigger the
  /// ancestor-fetch path. 0 (default) disables retries — existing runs
  /// stay bit-identical.
  double reannounce_interval = 0.0;
};

struct NetworkResult {
  std::uint64_t events = 0;       ///< Events processed (mine + arrivals).
  std::uint64_t mine_events = 0;  ///< Blocks found, including wasted ones.
  std::uint64_t arena_blocks = 0; ///< Blocks actually created (excl. genesis).
  double sim_time = 0.0;          ///< Clock at the last processed event.
  std::uint32_t tip_height = 0;   ///< Height of the final canonical tip.

  // Propagation accounting. `deliveries` counts first receipts (a block
  // handed to an agent), identical across propagation modes on a static
  // topology; the rest break down the transport overhead and are
  // mode-dependent (relays and duplicates exist only under gossip).
  std::uint64_t deliveries = 0;        ///< First receipts (any arrival kind).
  std::uint64_t relay_arrivals = 0;    ///< kRelay arrivals processed.
  std::uint64_t sync_arrivals = 0;     ///< kSync parent fetches delivered.
  std::uint64_t duplicate_arrivals = 0;///< Arrivals dropped as known.
  std::uint64_t cut_sends = 0;         ///< Sends dropped by partition cuts.
  std::uint64_t reannounce_events = 0; ///< Timer re-announces fired for
                                       ///< cut sends (reannounce_interval
                                       ///< > 0 only).
  /// Largest event-queue size observed while the run drained — how deep
  /// the in-flight backlog got (bursts after a partition heal dominate).
  std::uint64_t queue_high_water = 0;
  /// Largest (first receipt time - first broadcast time) over all first
  /// receipts: the worst end-to-end propagation of any published block.
  double worst_propagation = 0.0;

  /// Per-miner fork-choice tip when the run ended.
  std::vector<BlockId> final_tips;
  /// True when every *honest* miner ended on the same tip (attackers
  /// legitimately hold private leads) — the post-heal convergence
  /// criterion. Falls back to all miners when none is honest.
  bool converged = false;

  /// Canonical blocks per miner inside the accounting window
  /// (warmup_heights, tip_height - confirm_depth].
  std::vector<std::uint64_t> canonical;
  std::uint64_t counted = 0;  ///< Window length = sum of canonical.
  /// Mining events per miner (a proxy for work; includes wasted blocks).
  std::vector<std::uint64_t> mined;
  /// Proofs mined into capped forks and discarded, per miner (non-zero
  /// only for NaS multi-fork attackers).
  std::vector<std::uint64_t> wasted;

  // Attacker tie races (challenger block mined by a non-honest node
  // arriving at the height of an honest node's current tip).
  std::uint64_t races = 0;                 ///< Races started.
  std::uint64_t races_resolved = 0;        ///< Next honest block arrived.
  std::uint64_t races_challenger_won = 0;  ///< ... on the attacker branch.

  /// Share of the counted canonical window owned by `node`; 0 if empty.
  double share(NodeId node) const {
    return counted == 0 ? 0.0
                        : static_cast<double>(canonical[node]) /
                              static_cast<double>(counted);
  }

  /// Empirical gamma: challenger wins over resolved races; 0 if no races
  /// resolved.
  double effective_gamma() const {
    return races_resolved == 0
               ? 0.0
               : static_cast<double>(races_challenger_won) /
                     static_cast<double>(races_resolved);
  }

  /// Fraction of created blocks that did not end up on the canonical
  /// chain (whole run, warmup included); 0 when nothing was mined.
  double stale_rate() const {
    return arena_blocks == 0
               ? 0.0
               : 1.0 - static_cast<double>(tip_height) /
                           static_cast<double>(arena_blocks);
  }
};

/// Runs one network simulation to completion. Deterministic: the same
/// config and agents with the same seed produce the same event trace.
NetworkResult run_network(const NetworkConfig& config,
                          std::vector<MinerSetup> miners);

}  // namespace net
