// Miner agents of the network simulator.
//
// Each agent maintains a *local* view of the chain (its fork-choice tip
// plus whatever private bookkeeping its strategy needs) and reacts to two
// stimuli: its own mining clock firing, and a foreign block arriving. The
// simulator guarantees that a block is delivered only after its parent is
// known to the receiving node, and that equal-time deliveries preserve
// broadcast order — so agents never see chains out of order.
//
// Mining model: agent i mines at rate weight_i / W * lanes_i / interval.
// Honest miners and the PoW-style SM1 attacker always expose one lane; the
// efficient-proof-system attacker (MdpStrategyMiner) exposes one lane per
// live mining target — exactly the sigma-target (p, k)-mining model of
// paper §2.1, whose per-step win probabilities p/(1-p+p*sigma) emerge from
// the competing exponential clocks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/event.hpp"
#include "support/rng.hpp"

namespace net {

/// How a node reacts to receiving a block at the same height as its
/// current tip (a tie). The paper's gamma is the probability that the
/// network ends up extending the adversary's branch after a tie race;
/// each policy realizes it differently.
enum class TiePolicy : std::uint8_t {
  /// Never switch — the first-seen rule. Gamma is whatever the topology
  /// induces (0 in a zero-delay network, since the honest block is always
  /// delivered before the adversary's reactive release).
  kFirstSeen = 0,
  /// Switch iff the arriving block's wins_tie flag is set. The releasing
  /// miner samples the flag once per tie release with probability gamma,
  /// so the whole network switches together — this is exactly the MDP
  /// model's atomic gamma tie race, and the mode under which the
  /// zero-delay network reproduces the MDP-predicted ERRev.
  kGammaShared = 1,
  /// Every node flips its own gamma coin on every tie. The honest hash
  /// power splits across the branches and the race is resolved by the
  /// next block found — the classical Eyal–Sirer race semantics (the
  /// closed-form SM1 revenue assumes this mode).
  kGammaPerMiner = 2,
};

const char* to_string(TiePolicy policy);

/// Everything an agent may touch while handling one event. The outbox
/// collects blocks to broadcast, in order; the simulator fans them out to
/// every other node with the topology's delays after the handler returns.
struct MinerContext {
  BlockArena& arena;
  support::Rng& rng;  ///< This miner's private stream.
  double time = 0.0;
  std::vector<BlockId>& outbox;
};

class Miner {
 public:
  virtual ~Miner() = default;

  /// Concurrent mining lanes backing this agent's current rate. Re-read by
  /// the simulator after every event the agent handles.
  virtual std::uint32_t lanes() const { return 1; }

  /// The agent's mining clock fired; `lane` is uniform in [0, lanes()).
  virtual void on_mined(std::uint32_t lane, MinerContext& ctx) = 0;

  /// A foreign block arrived (parent guaranteed known).
  virtual void on_block(BlockId block, MinerContext& ctx) = 0;

  /// The agent's current fork-choice tip (what it mines on, for honest
  /// agents; attackers mine on private tips but still expose their public
  /// view here — the simulator uses tips only for accounting and race
  /// detection).
  virtual BlockId tip() const = 0;

  /// Proofs this agent mined into capped forks and threw away (only the
  /// NaS multi-fork attacker wastes work; collected into
  /// NetworkResult::wasted at the end of a run).
  virtual std::uint64_t wasted_blocks() const { return 0; }

  NodeId id() const { return id_; }
  void attach(NodeId id) { id_ = id; }

 private:
  NodeId id_ = kNoNode;
};

/// Longest-chain honest miner with the configured tie policy.
std::unique_ptr<Miner> make_honest_miner(TiePolicy policy, double gamma);

/// The classic Eyal–Sirer SM1 selfish miner (single private chain, PoW
/// semantics: one lane, lead-based publish rules, abandons on a lost
/// race). Treats every other node's blocks as "honest".
std::unique_ptr<Miner> make_sm1_miner(TiePolicy policy, double gamma);

}  // namespace net
