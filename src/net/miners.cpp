// Agent implementations: longest-chain honest miner, the classic SM1
// (Eyal–Sirer) selfish miner, and the MDP-strategy attacker that mirrors
// the concrete protocol world of sim/simulator.cpp over network events.
#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "net/mdp_miner.hpp"
#include "net/miner.hpp"
#include "selfish/actions.hpp"
#include "sim/strategies.hpp"
#include "support/check.hpp"

namespace net {

namespace {

/// True when `ancestor` lies on the path from `block` to genesis.
bool descends_from(const BlockArena& arena, BlockId block, BlockId ancestor) {
  const std::uint32_t target = arena.height(ancestor);
  if (arena.height(block) < target) return false;
  return arena.ancestor_at(block, target) == ancestor;
}

// ----------------------------------------------------------------- honest

class HonestMiner final : public Miner {
 public:
  HonestMiner(TiePolicy policy, double gamma)
      : policy_(policy), gamma_(gamma) {}

  void on_mined(std::uint32_t /*lane*/, MinerContext& ctx) override {
    tip_ = ctx.arena.add(tip_, id());
    ctx.outbox.push_back(tip_);
  }

  void on_block(BlockId block, MinerContext& ctx) override {
    const std::uint32_t h = ctx.arena.height(block);
    const std::uint32_t mine = ctx.arena.height(tip_);
    if (h > mine) {
      tip_ = block;
      return;
    }
    if (h != mine || block == tip_) return;
    switch (policy_) {
      case TiePolicy::kFirstSeen:
        break;
      case TiePolicy::kGammaShared:
        // The releasing attacker pinned the race outcome on the block;
        // applies to ties at any fork depth (the MDP model's deep tie
        // releases included).
        if (ctx.arena.get(block).wins_tie) tip_ = block;
        break;
      case TiePolicy::kGammaPerMiner:
        // The classical Eyal–Sirer race is tip-vs-tip: two siblings
        // competing for the same parent. Deeper equal-length forks (e.g.
        // an SM1 attacker's published prefix during a retreat) follow
        // first-seen — gamma models who wins the one-block propagation
        // race, not a willingness to reorganize history.
        if (ctx.arena.get(block).parent == ctx.arena.get(tip_).parent &&
            ctx.rng.bernoulli(gamma_)) {
          tip_ = block;
        }
        break;
    }
  }

  BlockId tip() const override { return tip_; }

 private:
  TiePolicy policy_;
  double gamma_;
  BlockId tip_ = kGenesis;
};

// -------------------------------------------------------------------- SM1

/// Eyal–Sirer selfish mining: one private chain, lead-based publishing.
/// All foreign blocks count as the "honest" rival chain, which makes the
/// agent well-defined in multi-attacker scenarios too.
class Sm1Miner final : public Miner {
 public:
  Sm1Miner(TiePolicy policy, double gamma) : policy_(policy), gamma_(gamma) {}

  void on_mined(std::uint32_t /*lane*/, MinerContext& ctx) override {
    const BlockId mined = ctx.arena.add(private_tip(), id());
    private_.push_back(mined);
    if (racing_) {
      // We extended our fully published tie branch: publishing makes it
      // strictly longer, so the whole network adopts it.
      publish_up_to(private_.size(), ctx);
      reset_onto_private_tip(ctx.arena);
    }
    // Otherwise withhold (classic SM1 never publishes on its own find).
  }

  void on_block(BlockId block, MinerContext& ctx) override {
    // The network built on our published blocks?
    if (published_ > 0 &&
        descends_from(ctx.arena, block, private_[published_ - 1])) {
      if (descends_from(ctx.arena, block, private_.back())) {
        // It extends our full branch: our blocks won — adopt wholesale.
        adopt(ctx.arena, block);
        return;
      }
      // It extends the published prefix but forks off our withheld
      // suffix. The prefix is canonical on every branch now, so re-root
      // the attack there and treat the block as ordinary rival growth
      // (below) — abandoning the withheld lead here would throw away a
      // winning branch.
      fork_root_ = private_[published_ - 1];
      private_.erase(private_.begin(),
                     private_.begin() +
                         static_cast<std::ptrdiff_t>(published_));
      published_ = 0;
      public_tip_ = fork_root_;
      public_height_ = ctx.arena.height(fork_root_);
      racing_ = false;
    }
    const std::uint32_t h = ctx.arena.height(block);
    if (h <= public_height_) return;  // stale or tying rival: first-seen
    const int lead_prev = static_cast<int>(private_height(ctx.arena)) -
                          static_cast<int>(public_height_);
    public_tip_ = block;
    public_height_ = h;
    racing_ = false;
    if (private_.empty() || lead_prev <= 0) {
      adopt(ctx.arena, block);  // we lost (or never forked): give up
      return;
    }
    if (lead_prev == 1) {
      // Lead shrank to 0: publish everything and race the rival head-on.
      const bool shared_coin = policy_ == TiePolicy::kGammaShared;
      const bool win = shared_coin && ctx.rng.bernoulli(gamma_);
      publish_up_to(private_.size(), ctx, /*tie_wins=*/win);
      if (win) {
        reset_onto_private_tip(ctx.arena);  // the network switched to us
      } else {
        racing_ = true;  // resolved by whoever mines next
      }
      return;
    }
    if (lead_prev == 2) {
      // Publishing the whole branch beats the rival by one: all adopt.
      publish_up_to(private_.size(), ctx);
      reset_onto_private_tip(ctx.arena);
      return;
    }
    // Comfortable lead: reveal just the first unpublished block.
    publish_up_to(published_ + 1, ctx);
  }

  BlockId tip() const override {
    return private_.empty() ? public_tip_ : private_.back();
  }

 private:
  BlockId private_tip() const {
    return private_.empty() ? fork_root_ : private_.back();
  }

  std::uint32_t private_height(const BlockArena& arena) const {
    return arena.height(private_tip());
  }

  /// Broadcasts private_[published_ .. upto); marks the last published
  /// block's tie flag when this publish creates a shared-coin tie race.
  void publish_up_to(std::size_t upto, MinerContext& ctx,
                     bool tie_wins = false) {
    SM_ENSURE(upto <= private_.size(), "publishing more than we mined");
    for (std::size_t i = published_; i < upto; ++i) {
      ctx.outbox.push_back(private_[i]);
    }
    if (tie_wins && upto > published_) {
      ctx.arena.set_wins_tie(private_[upto - 1], true);
    }
    published_ = std::max(published_, upto);
  }

  /// Our published branch became canonical: continue from its tip.
  void reset_onto_private_tip(const BlockArena& arena) {
    SM_ENSURE(!private_.empty(), "no private branch to reset onto");
    fork_root_ = private_.back();
    public_tip_ = fork_root_;
    public_height_ = arena.height(fork_root_);
    private_.clear();
    published_ = 0;
    racing_ = false;
  }

  /// The rival chain won: abandon the private branch and re-fork at `b`.
  void adopt(const BlockArena& arena, BlockId b) {
    fork_root_ = b;
    public_tip_ = b;
    public_height_ = arena.height(b);
    private_.clear();
    published_ = 0;
    racing_ = false;
  }

  TiePolicy policy_;
  double gamma_;
  BlockId fork_root_ = kGenesis;    ///< Common base of both chains.
  BlockId public_tip_ = kGenesis;   ///< Best rival tip seen.
  std::uint32_t public_height_ = 0;
  std::vector<BlockId> private_;    ///< Our blocks above fork_root_.
  std::size_t published_ = 0;       ///< Broadcast prefix of private_.
  bool racing_ = false;  ///< Fully published and tied with the rival.
};

// ----------------------------------------------------- MDP strategy replay

/// Mirrors sim/simulator.cpp's World over the network arena: local public
/// chain (index = height), live private forks of the (d, f, l) model, and
/// the exact release/acceptance semantics of DESIGN.md §3.
class MdpStrategyMiner final : public Miner {
 public:
  MdpStrategyMiner(const StrategyMinerConfig& config,
                   std::shared_ptr<const selfish::SelfishModel> model,
                   std::shared_ptr<const mdp::Policy> policy)
      : params_(config.params),
        tie_policy_(config.tie_policy),
        gamma_(config.gamma),
        model_(std::move(model)),
        policy_(std::move(policy)) {
    params_.validate();
    SM_REQUIRE(tie_policy_ != TiePolicy::kGammaPerMiner,
               "the MDP-strategy agent needs a tie outcome known at "
               "release time: use kGammaShared (or kFirstSeen for gamma=0)");
    if (config.strategy == "optimal") {
      SM_REQUIRE(model_ != nullptr && policy_ != nullptr,
                 "strategy 'optimal' needs a prepared model and policy");
      strategy_ = std::make_unique<sim::MdpPolicyStrategy>(*model_, *policy_);
    } else {
      strategy_ = sim::make_builtin_strategy(config.strategy);
    }
    public_chain_.push_back(kGenesis);
  }

  std::uint32_t lanes() const override {
    return static_cast<std::uint32_t>(mining_targets().size());
  }

  void on_mined(std::uint32_t lane, MinerContext& ctx) override {
    arena_ = &ctx.arena;
    const auto targets = mining_targets();
    SM_ENSURE(lane < targets.size(), "mining lane out of range");
    apply_win(targets[lane], ctx.arena);
    decide(selfish::StepType::kAdversaryFound, kGenesis, ctx);
  }

  void on_block(BlockId block, MinerContext& ctx) override {
    arena_ = &ctx.arena;
    const std::uint32_t h = ctx.arena.height(block);
    if (ctx.arena.get(block).parent == public_chain_.back()) {
      // The pending-honest decision point of the abstract model: a block
      // extending our public tip arrived and we may match or override it
      // before (from our point of view) incorporating it.
      decide(selfish::StepType::kHonestFound, block, ctx);
      return;
    }
    if (h > local_height()) {
      adopt_rival_chain(block, ctx.arena);
    }
    // Equal or lower rival blocks: first-seen, nothing to do.
  }

  BlockId tip() const override { return public_chain_.back(); }

  std::uint64_t wasted_blocks() const override { return wasted_; }

 private:
  struct Fork {
    BlockId root = kGenesis;
    std::vector<BlockId> blocks;  ///< blocks[0] is the child of root.
    std::size_t length() const { return blocks.size(); }
  };

  struct Target {
    bool new_fork = false;
    int depth = 0;
    std::size_t fork_index = 0;
  };

  std::uint32_t local_height() const {
    return static_cast<std::uint32_t>(public_chain_.size()) - 1;
  }

  int depth_of_root(BlockId root, const BlockArena& arena) const {
    return static_cast<int>(local_height() - arena.height(root)) + 1;
  }

  /// Live forks at `depth`, longest first (index = canonical slot).
  std::vector<std::size_t> forks_at_depth(int depth,
                                          const BlockArena& arena) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < forks_.size(); ++i) {
      if (depth_of_root(forks_[i].root, arena) == depth) out.push_back(i);
    }
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
      return forks_[a].length() > forks_[b].length();
    });
    return out;
  }

  /// One lane per live fork (capped forks still occupy a proof lane) plus
  /// one new-fork lane per depth with a free slot and an existing root —
  /// mirroring World::mining_targets (the early-chain root guard only
  /// matters below height d, inside the warmup window).
  std::vector<Target> mining_targets() const {
    std::vector<Target> targets;
    std::array<int, selfish::kMaxDepth + 1> count_at_depth{};
    for (std::size_t i = 0; i < forks_.size(); ++i) {
      const int depth = depth_of_root(forks_[i].root, *arena_);
      count_at_depth[depth] += 1;
      targets.push_back(Target{false, depth, i});
    }
    for (int depth = 1; depth <= params_.d; ++depth) {
      if (count_at_depth[depth] < params_.f &&
          static_cast<std::uint32_t>(depth) <= local_height() + 1) {
        targets.push_back(Target{true, depth, 0});
      }
    }
    return targets;
  }

  void apply_win(const Target& target, BlockArena& arena) {
    if (target.new_fork) {
      const std::uint32_t root_height =
          local_height() - static_cast<std::uint32_t>(target.depth - 1);
      Fork fork;
      fork.root = public_chain_[root_height];
      fork.blocks.push_back(arena.add(fork.root, id()));
      forks_.push_back(std::move(fork));
      return;
    }
    Fork& fork = forks_[target.fork_index];
    if (static_cast<int>(fork.length()) >= params_.l) {
      ++wasted_;  // mined into a capped fork: the proof is thrown away
      return;
    }
    const BlockId fork_tip = fork.blocks.empty() ? fork.root
                                                 : fork.blocks.back();
    fork.blocks.push_back(arena.add(fork_tip, id()));
  }

  /// Canonical abstract (C, O, type) view of the local world.
  selfish::State view(selfish::StepType type, const BlockArena& arena) const {
    selfish::State s{};
    for (int depth = 1; depth <= params_.d; ++depth) {
      const auto at_depth = forks_at_depth(depth, arena);
      SM_ENSURE(static_cast<int>(at_depth.size()) <= params_.f,
                "more live forks at one depth than slots");
      for (std::size_t j = 0; j < at_depth.size(); ++j) {
        s.c[depth - 1][j] =
            static_cast<std::uint8_t>(forks_[at_depth[j]].length());
      }
    }
    for (int depth = 1; depth <= params_.d - 1; ++depth) {
      if (static_cast<std::uint32_t>(depth) > local_height()) continue;
      const std::uint32_t height = local_height() - (depth - 1);
      if (height == 0) continue;  // genesis counts as honest
      if (arena.get(public_chain_[height]).miner == id()) {
        s.owner_bits |= static_cast<std::uint8_t>(1u << (depth - 1));
      }
    }
    s.type = type;
    s.canonicalize(params_);
    return s;
  }

  /// Consults the strategy at a decision point and executes its action.
  /// `pending` is the just-arrived honest block for kHonestFound (not yet
  /// part of the local public chain, exactly like World's pending).
  void decide(selfish::StepType type, BlockId pending, MinerContext& ctx) {
    arena_ = &ctx.arena;
    const selfish::Action action = strategy_->decide(view(type, ctx.arena));
    if (action.kind == selfish::Action::Kind::kMine) {
      if (type == selfish::StepType::kHonestFound) incorporate(pending, ctx);
      return;
    }
    const int i = action.depth;
    const int k = action.length;
    if (type == selfish::StepType::kAdversaryFound) {
      SM_REQUIRE(k >= i, "release shorter than the public chain");
      release(i, action.slot, k, ctx);
      return;
    }
    if (k >= i + 1) {
      // Override: strictly longer than the pending block's chain, so the
      // network adopts unconditionally and the pending block is orphaned.
      release(i, action.slot, k, ctx);
      return;
    }
    SM_REQUIRE(k == i, "release shorter than the public chain");
    // Tie race. The coin is sampled here (kGammaShared) or implicitly
    // always lost (kFirstSeen); the released blocks are broadcast either
    // way — the network has seen them, it just may not adopt them.
    const bool win = tie_policy_ == TiePolicy::kGammaShared &&
                     ctx.rng.bernoulli(gamma_);
    if (win) {
      release(i, action.slot, k, ctx, /*tie_wins=*/true);
    } else {
      // Lost race: broadcast the challenged prefix without restructuring —
      // the fork survives intact one depth deeper (the paper's non-burn
      // fork-choice rule) and may be re-released longer later.
      broadcast_fork_prefix(i, action.slot, k, ctx);
      incorporate(pending, ctx);
    }
  }

  void incorporate(BlockId pending, MinerContext& ctx) {
    public_chain_.push_back(pending);
    prune_forks(ctx.arena);
  }

  /// Publishes the first k blocks of the fork at (depth, slot): truncates
  /// the local public chain to the fork's root, appends the released
  /// blocks, re-roots the unreleased remainder, and broadcasts.
  void release(int depth, int slot, int k, MinerContext& ctx,
               bool tie_wins = false) {
    const auto at_depth = forks_at_depth(depth, ctx.arena);
    SM_REQUIRE(slot >= 0 && slot < static_cast<int>(at_depth.size()),
               "no fork in slot ", slot, " at depth ", depth);
    const Fork fork = forks_[at_depth[slot]];
    forks_.erase(forks_.begin() + static_cast<std::ptrdiff_t>(at_depth[slot]));
    SM_ENSURE(static_cast<int>(fork.length()) >= k, "fork shorter than k");

    const std::uint32_t root_height = ctx.arena.height(fork.root);
    public_chain_.resize(root_height + 1);
    for (int b = 0; b < k; ++b) public_chain_.push_back(fork.blocks[b]);
    if (static_cast<int>(fork.length()) > k) {
      Fork remainder;
      remainder.root = public_chain_.back();
      remainder.blocks.assign(fork.blocks.begin() + k, fork.blocks.end());
      forks_.push_back(std::move(remainder));
    }
    if (tie_wins) ctx.arena.set_wins_tie(public_chain_.back(), true);
    for (int b = 0; b < k; ++b) ctx.outbox.push_back(fork.blocks[b]);
    prune_forks(ctx.arena);
  }

  /// Broadcasts the first k blocks of a fork without publishing them into
  /// the local chain (a tie release that lost its coin).
  void broadcast_fork_prefix(int depth, int slot, int k, MinerContext& ctx) {
    const auto at_depth = forks_at_depth(depth, ctx.arena);
    SM_REQUIRE(slot >= 0 && slot < static_cast<int>(at_depth.size()),
               "no fork in slot ", slot, " at depth ", depth);
    const Fork& fork = forks_[at_depth[slot]];
    SM_ENSURE(static_cast<int>(fork.length()) >= k, "fork shorter than k");
    for (int b = 0; b < k; ++b) ctx.outbox.push_back(fork.blocks[b]);
  }

  /// A rival chain overtook our local view (only possible with delays or
  /// competing attackers): rebuild the public chain along its ancestry.
  void adopt_rival_chain(BlockId new_tip, const BlockArena& arena) {
    const std::uint32_t h = arena.height(new_tip);
    std::vector<BlockId> path;  // new_tip down to (excluding) common base
    BlockId cursor = new_tip;
    while (true) {
      const std::uint32_t ch = arena.height(cursor);
      if (ch <= local_height() && ch < public_chain_.size() &&
          public_chain_[ch] == cursor) {
        break;  // cursor is on our chain: common ancestor found
      }
      SM_ENSURE(cursor != kGenesis, "rival chain does not meet genesis");
      path.push_back(cursor);
      cursor = arena.get(cursor).parent;
    }
    public_chain_.resize(arena.height(cursor) + 1);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      public_chain_.push_back(*it);
    }
    SM_ENSURE(local_height() == h, "rival adoption height mismatch");
    prune_forks(arena);
  }

  /// Drops forks whose root fell out of the depth-d window or was
  /// orphaned by a chain rewrite.
  void prune_forks(const BlockArena& arena) {
    std::erase_if(forks_, [&](const Fork& fork) {
      const std::uint32_t root_height = arena.height(fork.root);
      if (root_height + static_cast<std::uint32_t>(params_.d) <
          local_height() + 1) {
        return true;
      }
      return public_chain_[root_height] != fork.root;
    });
  }

  selfish::AttackParams params_;
  TiePolicy tie_policy_;
  double gamma_;
  std::shared_ptr<const selfish::SelfishModel> model_;
  std::shared_ptr<const mdp::Policy> policy_;
  std::unique_ptr<sim::Strategy> strategy_;
  const BlockArena* arena_ = nullptr;  ///< For lanes() between events.
  std::vector<BlockId> public_chain_;  ///< Index = height.
  std::vector<Fork> forks_;
  std::uint64_t wasted_ = 0;
};

}  // namespace

const char* to_string(TiePolicy policy) {
  switch (policy) {
    case TiePolicy::kFirstSeen: return "first-seen";
    case TiePolicy::kGammaShared: return "gamma-shared";
    case TiePolicy::kGammaPerMiner: return "gamma-per-miner";
  }
  return "?";
}

std::unique_ptr<Miner> make_honest_miner(TiePolicy policy, double gamma) {
  return std::make_unique<HonestMiner>(policy, gamma);
}

std::unique_ptr<Miner> make_sm1_miner(TiePolicy policy, double gamma) {
  return std::make_unique<Sm1Miner>(policy, gamma);
}

std::unique_ptr<Miner> make_strategy_miner(
    const StrategyMinerConfig& config,
    std::shared_ptr<const selfish::SelfishModel> model,
    std::shared_ptr<const mdp::Policy> policy) {
  return std::make_unique<MdpStrategyMiner>(config, std::move(model),
                                            std::move(policy));
}

}  // namespace net
