// The efficient-proof-system attacker agent: replays a sim::Strategy
// (typically the optimal policy computed by Algorithm 1, or one loaded
// from a strategy file via analysis/strategy_io) inside the network
// simulator.
//
// The agent mirrors the concrete protocol world of sim/simulator.cpp over
// the network's shared block arena: it keeps its local public chain plus
// the live private forks of the (d, f, l) model, exposes one mining lane
// per live target (NaS multi-fork mining), derives the canonical abstract
// (C, O, type) view at every decision point, and executes the strategy's
// release actions as real broadcasts. In a zero-delay network under
// TiePolicy::kGammaShared this reproduces the MDP's semantics exactly, so
// the measured relative revenue converges to the analysis-predicted ERRev
// — the subsystem's key correctness hook (tests/test_net_validation.cpp).
#pragma once

#include <memory>
#include <string>

#include "mdp/markov_chain.hpp"
#include "net/miner.hpp"
#include "selfish/build.hpp"

namespace net {

struct StrategyMinerConfig {
  selfish::AttackParams params;  ///< Must match the model when policy-backed.
  /// "optimal" replays `policy` on `model`; "honest" / "never-release" use
  /// the policy-free builtin strategies (model may then be null).
  std::string strategy = "optimal";
  /// Tie policy the *network* runs under. kGammaPerMiner is rejected: the
  /// agent's bookkeeping must know a tie race's outcome at release time,
  /// which only the shared-coin (or first-seen, i.e. gamma = 0) modes
  /// provide.
  TiePolicy tie_policy = TiePolicy::kGammaShared;
  double gamma = 0.5;  ///< Tie coin; should match params.gamma.
};

/// Builds the strategy-replaying attacker. `model` and `policy` are shared
/// so batch runs across threads can reuse one analysis result.
std::unique_ptr<Miner> make_strategy_miner(
    const StrategyMinerConfig& config,
    std::shared_ptr<const selfish::SelfishModel> model,
    std::shared_ptr<const mdp::Policy> policy);

}  // namespace net
