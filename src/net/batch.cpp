#include "net/batch.hpp"

#include <cmath>
#include <ostream>

#include "engine/engine.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace net {

std::uint64_t batch_run_seed(std::uint64_t base_seed,
                             std::size_t scenario_index,
                             std::size_t run_index) {
  // splitmix over a position-dependent state: independent of thread
  // scheduling and of how many scenarios precede this one in other grids.
  std::uint64_t state = base_seed ^
                        (static_cast<std::uint64_t>(scenario_index) *
                         0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(run_index) *
                         0xbf58476d1ce4e5b9ULL);
  return support::splitmix64_next(state);
}

std::vector<ScenarioAggregate> run_batch(
    const std::vector<Scenario>& scenarios, const BatchOptions& options) {
  SM_REQUIRE(options.runs_per_scenario >= 1, "need at least one run");
  const std::size_t num_scenarios = scenarios.size();
  const std::size_t runs =
      static_cast<std::size_t>(options.runs_per_scenario);

  // Strategy analyses can dominate wall-clock for "optimal" attackers;
  // resolve them once per scenario, up front, shared by every seed. The
  // engine fans the per-point Algorithm 1 runs across the same worker
  // budget the simulation runs use, and serves repeats from its store
  // when the batch has a cache directory.
  engine::EngineOptions engine_options;
  engine_options.cache_dir = options.cache_dir;
  engine_options.threads = options.threads;
  engine::Engine engine(engine_options);
  const std::vector<PreparedScenario> prepared =
      prepare_scenarios(scenarios, options.epsilon, engine);

  // Flat grid: run index = scenario * runs + seed slot.
  std::vector<NetworkResult> results(num_scenarios * runs);
  support::parallel_for(
      results.size(), options.threads, [&](std::size_t i) {
        const std::size_t s = i / runs;
        const std::size_t r = i % runs;
        results[i] = run_scenario(
            prepared[s], batch_run_seed(options.base_seed, s, r));
      });

  // Sequential, grid-ordered aggregation: identical for any thread count.
  std::vector<ScenarioAggregate> aggregates(num_scenarios);
  for (std::size_t s = 0; s < num_scenarios; ++s) {
    ScenarioAggregate& agg = aggregates[s];
    agg.name = scenarios[s].name;
    agg.variant = scenarios[s].variant;
    agg.attacker_power = scenarios[s].attacker_power();
    agg.predicted_errev = prepared[s].predicted_errev;
    agg.miner_share.resize(scenarios[s].miners.size());
    for (std::size_t r = 0; r < runs; ++r) {
      const NetworkResult& result = results[s * runs + r];
      ++agg.runs;
      double attacker = 0.0;
      for (std::size_t m = 0; m < scenarios[s].miners.size(); ++m) {
        const double share = result.share(static_cast<NodeId>(m));
        agg.miner_share[m].add(share);
        if (scenarios[s].miners[m].kind != MinerSpec::Kind::kHonest) {
          attacker += share;
        }
      }
      agg.attacker_share.add(attacker);
      agg.stale_rate.add(result.stale_rate());
      if (result.races_resolved > 0) {
        agg.effective_gamma.add(result.effective_gamma());
      }
      agg.worst_propagation.add(result.worst_propagation);
      agg.total_races += result.races;
      agg.total_events += result.events;
      agg.total_relays += result.relay_arrivals;
      agg.total_syncs += result.sync_arrivals;
      agg.total_cut_sends += result.cut_sends;
    }
  }
  return aggregates;
}

void write_batch_csv(const std::vector<ScenarioAggregate>& aggregates,
                     std::ostream& out) {
  support::CsvWriter csv(out);
  csv.header({"scenario", "variant", "runs", "attacker_power",
              "predicted_errev", "attacker_share", "attacker_share_ci95",
              "stale_rate", "effective_gamma", "effective_gamma_ci95",
              "races", "worst_propagation"});
  for (const ScenarioAggregate& agg : aggregates) {
    csv.row({agg.name, agg.variant, std::to_string(agg.runs),
             support::format_double(agg.attacker_power, 6),
             std::isnan(agg.predicted_errev)
                 ? ""
                 : support::format_double(agg.predicted_errev, 6),
             support::format_double(agg.attacker_share.mean(), 6),
             support::format_double(agg.attacker_share.ci95_halfwidth(), 6),
             support::format_double(agg.stale_rate.mean(), 6),
             agg.effective_gamma.count() == 0
                 ? ""  // no resolved races: no data, not gamma = 0
                 : support::format_double(agg.effective_gamma.mean(), 6),
             agg.effective_gamma.count() == 0
                 ? ""
                 : support::format_double(
                       agg.effective_gamma.ci95_halfwidth(), 6),
             std::to_string(agg.total_races),
             support::format_double(agg.worst_propagation.mean(), 6)});
  }
}

}  // namespace net
