// Propagation topology: a link graph with per-edge one-way delays, the
// effective (shortest-path) per-pair delay matrix derived from it, and an
// optional schedule of timed partition windows.
//
// Delays are in the same time unit as the scenario's block interval
// (conventionally seconds). Direct-broadcast mode sends origin-to-all
// using the effective matrix delay(i, j); gossip mode store-and-forwards
// along the links, paying link_delay per hop. Delays need not be
// symmetric (link_delay(i, j) != link_delay(j, i) models asymmetric
// up/down links). Zero delays model the abstract instant-propagation
// network of the MDP analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/event.hpp"

namespace net {

/// Sentinel for "no direct link between these two nodes" in a link
/// matrix handed to Topology::from_links.
inline constexpr double kNoLink = std::numeric_limits<double>::infinity();

/// A timed network split: while active (start <= t < end), every edge
/// between nodes of *different* groups is cut — sends across it are
/// dropped at send time. At `end` the split heals; nodes resynchronize
/// organically (the next block crossing a healed edge triggers recursive
/// parent fetches, see network.cpp).
struct PartitionWindow {
  double start = 0.0;
  double end = 0.0;
  /// group[node] = side of the split this node is on (any small ints).
  std::vector<std::uint8_t> group;
};

class Topology {
 public:
  Topology() = default;

  /// All distinct pairs share one delay (a complete graph); delay 0 is the
  /// abstract instant-broadcast network.
  static Topology uniform(std::size_t nodes, double delay);

  /// Star: every node hangs off a virtual hub by its spoke delay, so
  /// delay(i, j) = spoke[i] + spoke[j]. Models one well-connected miner
  /// (small spoke) vs. poorly connected ones (large spokes).
  static Topology star(const std::vector<double>& spoke_delays);

  /// Asymmetric star: node i announces through an `up` spoke and listens
  /// through a `down` spoke, so delay(i, j) = up[i] + down[j]. Models
  /// ADSL-style links (slow uplink, fast downlink) and connectivity
  /// advantages that differ by direction.
  static Topology star_asymmetric(const std::vector<double>& up,
                                  const std::vector<double>& down);

  /// Line (path graph): n = hop_delays.size() + 1 nodes chained
  /// 0 - 1 - ... - n-1, with hop_delays[i] on the (i, i+1) edge (both
  /// directions). The only non-complete builtin: gossip relays hop by
  /// hop; direct mode uses the summed shortest-path delays.
  static Topology line(const std::vector<double>& hop_delays);

  /// Explicit link matrix over a complete graph: matrix[i][j] = one-way
  /// delay of the edge from i to j (diagonal ignored). The *effective*
  /// direct-mode delays are the all-pairs shortest paths over these
  /// edges — a triangle-inequality-violating entry is tightened to its
  /// best relay route, keeping direct and gossip arrival times
  /// consistent (metric matrices round-trip unchanged).
  static Topology from_matrix(std::vector<std::vector<double>> matrix);

  /// Explicit *link* matrix: links[i][j] = one-way delay of the direct
  /// edge from i to j, or kNoLink for no edge. The effective per-pair
  /// delays are the all-pairs shortest paths; the graph must be strongly
  /// connected (every node reachable from every other).
  static Topology from_links(std::vector<std::vector<double>> links);

  std::size_t num_nodes() const { return nodes_; }

  /// Effective one-way delay from `from` to `to` (shortest path over the
  /// links) — what direct-broadcast mode charges per delivery.
  double delay(NodeId from, NodeId to) const {
    SM_REQUIRE(from < nodes_ && to < nodes_, "topology node out of range");
    return delays_[from * nodes_ + to];
  }

  /// One-hop delay of the direct edge from `from` to `to`; kNoLink when
  /// the nodes are not adjacent — what gossip mode charges per hop.
  double link_delay(NodeId from, NodeId to) const {
    SM_REQUIRE(from < nodes_ && to < nodes_, "topology node out of range");
    return links_[from * nodes_ + to];
  }

  bool has_link(NodeId from, NodeId to) const {
    return link_delay(from, to) != kNoLink;
  }

  /// Nodes adjacent to `from` (outgoing links), ascending.
  const std::vector<NodeId>& neighbors(NodeId from) const {
    SM_REQUIRE(from < nodes_, "topology node out of range");
    return neighbors_[from];
  }

  /// Largest pairwise effective delay (0 for <= 1 nodes) — used to size
  /// warmups.
  double max_delay() const;

  // ------------------------------------------------------- partitions

  /// Registers a split/heal window. Windows may overlap; an edge is cut
  /// whenever any active window separates its endpoints.
  void add_partition(PartitionWindow window);

  /// True when the edge from -> to is cut at time `at` by some window.
  bool cut(NodeId from, NodeId to, double at) const {
    if (partitions_.empty()) return false;
    return cut_slow(from, to, at);
  }

  const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }

  /// Earliest time >= `at` when the edge from -> to is not cut by any
  /// window. Scans to a fixed point, so overlapping or back-to-back
  /// windows chain correctly: [5, 8) overlapped by [7, 12) heals at 12,
  /// not 8. Returns `at` unchanged when the edge is currently open.
  double next_heal(NodeId from, NodeId to, double at) const;

 private:
  static Topology complete(std::size_t nodes);
  void finish_links();  ///< Derives delays_ (shortest paths) + neighbors_.
  bool cut_slow(NodeId from, NodeId to, double at) const;

  std::size_t nodes_ = 0;
  std::vector<double> delays_;  ///< Row-major effective nodes_ x nodes_.
  std::vector<double> links_;   ///< Row-major per-edge; kNoLink = no edge.
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<PartitionWindow> partitions_;
};

}  // namespace net
