// Propagation topology: a dense per-pair one-way delay matrix.
//
// Delays are in the same time unit as the scenario's block interval
// (conventionally seconds). A broadcast from node i reaches node j after
// delay(i, j); delays need not be symmetric. Zero delays model the
// abstract instant-propagation network of the MDP analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "net/event.hpp"

namespace net {

class Topology {
 public:
  Topology() = default;

  /// All distinct pairs share one delay (a complete graph); delay 0 is the
  /// abstract instant-broadcast network.
  static Topology uniform(std::size_t nodes, double delay);

  /// Star: every node hangs off a virtual hub by its spoke delay, so
  /// delay(i, j) = spoke[i] + spoke[j]. Models one well-connected miner
  /// (small spoke) vs. poorly connected ones (large spokes).
  static Topology star(const std::vector<double>& spoke_delays);

  /// Explicit matrix[i][j] = one-way delay from i to j (diagonal ignored).
  static Topology from_matrix(std::vector<std::vector<double>> matrix);

  std::size_t num_nodes() const { return nodes_; }
  double delay(NodeId from, NodeId to) const {
    SM_REQUIRE(from < nodes_ && to < nodes_, "topology node out of range");
    return delays_[from * nodes_ + to];
  }

  /// Largest pairwise delay (0 for <= 1 nodes) — used to size warmups.
  double max_delay() const;

 private:
  std::size_t nodes_ = 0;
  std::vector<double> delays_;  ///< Row-major nodes_ x nodes_.
};

}  // namespace net
