#include "net/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "analysis/strategy_io.hpp"
#include "engine/engine.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"

namespace net {

namespace {

std::string format(const char* fmt, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, v);
  return buffer;
}

/// Honest nodes sharing `power` equally.
std::vector<MinerSpec> honest_pool(int count, double power) {
  SM_REQUIRE(count >= 1, "need at least one honest miner");
  std::vector<MinerSpec> specs;
  for (int i = 0; i < count; ++i) {
    MinerSpec spec;
    spec.kind = MinerSpec::Kind::kHonest;
    spec.weight = power / count;
    specs.push_back(spec);
  }
  return specs;
}

Scenario base_scenario(const ScenarioOptions& o) {
  Scenario s;
  s.gamma = o.gamma;
  s.block_interval = o.block_interval;
  s.blocks = o.blocks;
  s.propagation = o.propagation;
  // Let the chain outgrow startup transients (and any delay-induced skew)
  // before counting; the window still covers the vast majority of a run.
  s.warmup_heights = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(o.blocks / 20 + 16, 100'000));
  return s;
}

std::string point_label(const ScenarioOptions& o, double p, double delay) {
  return "p=" + format("%.2f", p) + " gamma=" + format("%.2f", o.gamma) +
         " delay=" + format("%g", delay);
}

// ------------------------------------------------------------- families

std::vector<Scenario> family_honest_uniform(const ScenarioOptions& o) {
  Scenario s = base_scenario(o);
  s.name = "honest-uniform";
  s.variant = "delay=" + format("%g", o.delay);
  const int n = std::max(2, o.honest_miners);
  // Deliberately skewed hashrates: revenue proportionality is only an
  // interesting check when the weights differ.
  for (int i = 0; i < n; ++i) {
    MinerSpec spec;
    spec.kind = MinerSpec::Kind::kHonest;
    spec.weight = static_cast<double>(n - i);
    s.miners.push_back(spec);
  }
  s.topology = Topology::uniform(s.miners.size(), o.delay);
  s.tie_policy = TiePolicy::kFirstSeen;
  s.gamma = 0.0;
  return {s};
}

Scenario single_attacker(const ScenarioOptions& o, MinerSpec attacker,
                         TiePolicy tie, double delay) {
  Scenario s = base_scenario(o);
  s.miners.push_back(std::move(attacker));
  for (MinerSpec& spec : honest_pool(o.honest_miners, 1.0 - o.p)) {
    s.miners.push_back(std::move(spec));
  }
  s.topology = Topology::uniform(s.miners.size(), delay);
  s.tie_policy = tie;
  return s;
}

MinerSpec sm1_spec(double p) {
  MinerSpec spec;
  spec.kind = MinerSpec::Kind::kSm1;
  spec.weight = p;
  return spec;
}

MinerSpec strategy_spec(const ScenarioOptions& o) {
  MinerSpec spec;
  spec.kind = MinerSpec::Kind::kStrategy;
  spec.weight = o.p;
  spec.strategy = o.strategy;
  spec.attack = selfish::AttackParams{.p = o.p, .gamma = o.gamma, .d = o.d,
                                      .f = o.f, .l = o.l};
  return spec;
}

std::vector<Scenario> family_single_sm1(const ScenarioOptions& o) {
  Scenario s = single_attacker(o, sm1_spec(o.p),
                               TiePolicy::kGammaPerMiner, o.delay);
  s.name = "single-sm1";
  s.variant = point_label(o, o.p, o.delay);
  return {s};
}

std::vector<Scenario> family_single_optimal(const ScenarioOptions& o) {
  // kGammaShared realizes the MDP's atomic tie race, which the strategy
  // agent requires; with zero delay this scenario must reproduce the
  // analysis-predicted ERRev (the subsystem's correctness anchor).
  Scenario s = single_attacker(o, strategy_spec(o),
                               TiePolicy::kGammaShared, o.delay);
  s.name = "single-optimal";
  s.variant = point_label(o, o.p, o.delay) +
              " d=" + std::to_string(o.d) + " f=" + std::to_string(o.f);
  return {s};
}

std::vector<Scenario> family_sm1_delay_sweep(const ScenarioOptions& o) {
  std::vector<Scenario> out;
  for (const double fraction : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    ScenarioOptions point = o;
    point.delay = fraction * o.block_interval;
    Scenario s = single_attacker(point, sm1_spec(o.p),
                                 TiePolicy::kGammaPerMiner, point.delay);
    s.name = "sm1-delay-sweep";
    s.variant = point_label(point, o.p, point.delay);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> family_two_sm1(const ScenarioOptions& o) {
  SM_REQUIRE(2.0 * o.p < 0.9, "two attackers with p=", o.p,
             " leave too little honest power");
  Scenario s = base_scenario(o);
  s.name = "two-sm1";
  s.variant = point_label(o, o.p, o.delay) + " x2";
  s.miners.push_back(sm1_spec(o.p));
  s.miners.push_back(sm1_spec(o.p));
  for (MinerSpec& spec : honest_pool(o.honest_miners, 1.0 - 2.0 * o.p)) {
    s.miners.push_back(std::move(spec));
  }
  s.topology = Topology::uniform(s.miners.size(), o.delay);
  s.tie_policy = TiePolicy::kGammaPerMiner;
  return {s};
}

std::vector<Scenario> family_hashrate_grid(const ScenarioOptions& o) {
  std::vector<Scenario> out;
  for (double p = 0.10; p < 0.46; p += 0.05) {
    ScenarioOptions point = o;
    point.p = p;
    Scenario s = single_attacker(point, sm1_spec(p),
                                 TiePolicy::kGammaPerMiner, o.delay);
    s.name = "hashrate-grid";
    s.variant = point_label(point, p, o.delay);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> family_star(const ScenarioOptions& o) {
  // The attacker sits at the hub (zero spoke); honest miners hang off
  // increasingly long spokes. Measures how a connectivity advantage
  // shows up as effective gamma.
  Scenario s = base_scenario(o);
  s.name = "star";
  s.variant = point_label(o, o.p, o.delay);
  s.miners.push_back(sm1_spec(o.p));
  for (MinerSpec& spec : honest_pool(o.honest_miners, 1.0 - o.p)) {
    s.miners.push_back(std::move(spec));
  }
  std::vector<double> spokes;
  spokes.push_back(0.0);  // the attacker hub
  for (std::size_t i = 1; i < s.miners.size(); ++i) {
    spokes.push_back(o.delay * static_cast<double>(i));
  }
  s.topology = Topology::star(spokes);
  s.tie_policy = TiePolicy::kGammaPerMiner;
  return {s};
}

std::vector<Scenario> family_gossip_delay(const ScenarioOptions& o) {
  // Store-and-forward along a line of honest miners with the SM1
  // attacker at the far end: end-to-end propagation is the *sum* of the
  // per-hop delays, so gossip pays the network diameter where a direct
  // broadcast would pay one link. Sweeps the per-hop delay.
  std::vector<Scenario> out;
  for (const double fraction : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    const double hop = fraction * o.block_interval;
    Scenario s = base_scenario(o);
    s.name = "gossip-delay";
    s.variant = "p=" + format("%.2f", o.p) +
                " gamma=" + format("%.2f", o.gamma) +
                " hop=" + format("%g", hop);
    s.miners.push_back(sm1_spec(o.p));
    for (MinerSpec& spec : honest_pool(std::max(2, o.honest_miners),
                                       1.0 - o.p)) {
      s.miners.push_back(std::move(spec));
    }
    s.topology = Topology::line(
        std::vector<double>(s.miners.size() - 1, hop));
    s.propagation = PropagationMode::kGossip;
    s.tie_policy = TiePolicy::kGammaPerMiner;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Scenario> family_partition_attack(const ScenarioOptions& o) {
  // A timed split isolates part of the honest pool from the attacker's
  // side mid-run: the minority side mines a doomed branch (stale rate
  // jumps), the attacker races a weakened majority while the split is
  // active, and after the heal the sides reconverge through ancestor
  // sync. The window is given as fractions of the expected run duration.
  SM_REQUIRE(o.partition_fraction > 0.0 && o.partition_fraction < 1.0,
             "partition fraction must be in (0, 1), got ",
             o.partition_fraction);
  SM_REQUIRE(0.0 <= o.partition_start &&
                 o.partition_start < o.partition_stop,
             "partition window must satisfy 0 <= start < stop");
  Scenario s = base_scenario(o);
  s.name = "partition-attack";
  const int honest = std::max(2, o.honest_miners);
  const double expected_duration =
      static_cast<double>(o.blocks) * o.block_interval;
  PartitionWindow window;
  window.start = o.partition_start * expected_duration;
  window.end = o.partition_stop * expected_duration;
  s.variant = point_label(o, o.p, o.delay) + " split=" +
              format("%.2f", o.partition_start) + ".." +
              format("%.2f", o.partition_stop) + " frac=" +
              format("%.2f", o.partition_fraction);
  s.miners.push_back(sm1_spec(o.p));
  for (MinerSpec& spec : honest_pool(honest, 1.0 - o.p)) {
    s.miners.push_back(std::move(spec));
  }
  // The attacker and the leading honest miners stay on side 0; the last
  // ceil(fraction * honest) honest miners are cut off on side 1.
  const int isolated = std::min(
      honest - 1,
      std::max(1, static_cast<int>(
                      std::ceil(o.partition_fraction * honest))));
  window.group.assign(s.miners.size(), 0);
  for (int i = 0; i < isolated; ++i) {
    window.group[s.miners.size() - 1 - static_cast<std::size_t>(i)] = 1;
  }
  s.topology = Topology::uniform(s.miners.size(), o.delay);
  s.topology.add_partition(std::move(window));
  s.tie_policy = TiePolicy::kGammaPerMiner;
  return {s};
}

std::vector<Scenario> family_asymmetric_star(const ScenarioOptions& o) {
  // Asymmetric connectivity: the attacker sits at the hub with instant
  // spokes; honest miners announce through a slow uplink (asymmetry x
  // delay) but listen through a fast downlink (delay). The attacker's
  // releases land quickly while honest blocks crawl out — a connectivity
  // advantage that shows up directly in the effective gamma.
  SM_REQUIRE(o.asymmetry >= 1.0, "asymmetry factor must be >= 1, got ",
             o.asymmetry);
  Scenario s = base_scenario(o);
  s.name = "asymmetric-star";
  s.variant = point_label(o, o.p, o.delay) + " asym=" +
              format("%g", o.asymmetry);
  s.miners.push_back(sm1_spec(o.p));
  for (MinerSpec& spec : honest_pool(o.honest_miners, 1.0 - o.p)) {
    s.miners.push_back(std::move(spec));
  }
  std::vector<double> up{0.0}, down{0.0};  // the attacker hub
  for (std::size_t i = 1; i < s.miners.size(); ++i) {
    up.push_back(o.delay * o.asymmetry);
    down.push_back(o.delay);
  }
  s.topology = Topology::star_asymmetric(up, down);
  s.tie_policy = TiePolicy::kGammaPerMiner;
  return {s};
}

struct Family {
  const char* name;
  const char* description;
  std::vector<Scenario> (*build)(const ScenarioOptions&);
};

constexpr Family kFamilies[] = {
    {"honest-uniform",
     "honest miners only, skewed hashrates — revenue must track hashrate",
     family_honest_uniform},
    {"single-sm1",
     "one Eyal-Sirer SM1 attacker vs an honest pool (per-miner gamma ties)",
     family_single_sm1},
    {"single-optimal",
     "one MDP-strategy attacker (Algorithm 1 policy) vs an honest pool; "
     "at delay=0 reproduces the analysis-predicted ERRev",
     family_single_optimal},
    {"sm1-delay-sweep",
     "SM1 attacker across propagation delays 0..5% of the block interval",
     family_sm1_delay_sweep},
    {"two-sm1", "two competing SM1 attackers vs an honest pool",
     family_two_sm1},
    {"hashrate-grid",
     "SM1 attacker over p in {0.10..0.45} — the profitability frontier",
     family_hashrate_grid},
    {"star",
     "SM1 attacker at the hub of a star topology of honest miners",
     family_star},
    {"gossip-delay",
     "SM1 attacker at the end of a line of honest miners, gossip "
     "(store-and-forward) propagation, per-hop delay swept 0..5% of the "
     "block interval",
     family_gossip_delay},
    {"partition-attack",
     "SM1 attacker vs an honest pool with a timed network split that "
     "isolates part of the honest power mid-run (heals before the end)",
     family_partition_attack},
    {"asymmetric-star",
     "SM1 attacker at the hub of an asymmetric star: honest miners "
     "announce slowly (asymmetry x delay up) but listen fast (delay down)",
     family_asymmetric_star},
};

}  // namespace

double Scenario::attacker_power() const {
  double attacker = 0.0;
  double total = 0.0;
  for (const MinerSpec& spec : miners) {
    total += spec.weight;
    if (spec.kind != MinerSpec::Kind::kHonest) attacker += spec.weight;
  }
  return total == 0.0 ? 0.0 : attacker / total;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const Family& family : kFamilies) names.emplace_back(family.name);
  return names;
}

std::string scenario_help() {
  std::string out;
  for (const Family& family : kFamilies) {
    out += "  ";
    out += family.name;
    out += ": ";
    out += family.description;
    out += "\n";
  }
  return out;
}

std::vector<Scenario> make_scenarios(const std::string& name,
                                     const ScenarioOptions& options) {
  for (const Family& family : kFamilies) {
    if (name == family.name) return family.build(options);
  }
  throw support::InvalidArgument("unknown scenario: " + name +
                                 "\nknown scenarios:\n" + scenario_help());
}

std::vector<PreparedScenario> prepare_scenarios(
    const std::vector<Scenario>& scenarios, double epsilon,
    engine::Engine& engine) {
  // Collect every distinct "optimal" analysis across the grid into one
  // engine batch. The engine deduplicates and plans warm-start chains
  // itself, but deduplicating here too keeps the (scenario, miner) →
  // outcome bookkeeping simple.
  analysis::AnalysisOptions analysis_options;
  analysis_options.epsilon = epsilon;
  std::vector<engine::AnalysisJob> jobs;
  std::map<std::string, std::size_t> job_index;
  for (const Scenario& scenario : scenarios) {
    for (const MinerSpec& spec : scenario.miners) {
      if (spec.kind != MinerSpec::Kind::kStrategy) continue;
      if (spec.strategy != "optimal") continue;
      const std::string id = spec.attack.to_string();
      if (job_index.emplace(id, jobs.size()).second) {
        engine::AnalysisJob job;
        job.params = spec.attack;
        job.options = analysis_options;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<engine::JobOutcome> outcomes =
      engine.run(jobs, /*keep_models=*/true);
  // One shared policy per outcome, like the models: every scenario (and
  // every identical attacker within one) aliases it instead of copying.
  std::vector<std::shared_ptr<const mdp::Policy>> shared_policies(
      outcomes.size());
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    shared_policies[j] =
        std::make_shared<const mdp::Policy>(outcomes[j].result.policy);
  }

  std::vector<PreparedScenario> prepared_grid;
  prepared_grid.reserve(scenarios.size());
  // Strategy-file analyses are not engine jobs (nothing to solve); they
  // are still deduplicated across the grid.
  std::map<std::string,
           std::pair<std::shared_ptr<const selfish::SelfishModel>,
                     std::shared_ptr<const mdp::Policy>>>
      file_cache;
  for (const Scenario& scenario : scenarios) {
    PreparedScenario prepared;
    prepared.scenario = scenario;
    prepared.models.assign(scenario.miners.size(), nullptr);
    prepared.policies.assign(scenario.miners.size(), nullptr);
    prepared.predicted_errev = std::numeric_limits<double>::quiet_NaN();

    for (std::size_t i = 0; i < scenario.miners.size(); ++i) {
      const MinerSpec& spec = scenario.miners[i];
      if (spec.kind != MinerSpec::Kind::kStrategy) continue;
      if (spec.strategy == "honest" || spec.strategy == "never-release") {
        continue;  // policy-free; the agent builds the strategy itself
      }
      if (spec.strategy == "optimal") {
        const std::size_t j = job_index.at(spec.attack.to_string());
        const engine::JobOutcome& outcome = outcomes[j];
        prepared.models[i] = outcome.model;
        prepared.policies[i] = shared_policies[j];
        if (std::isnan(prepared.predicted_errev)) {
          // analyze() already evaluated the exact ERRev of the policy.
          prepared.predicted_errev = outcome.result.errev_of_policy;
        }
        continue;
      }
      SM_REQUIRE(spec.strategy.rfind("file:", 0) == 0, "unknown strategy: ",
                 spec.strategy,
                 " (expected optimal | honest | never-release | "
                 "file:<path>)");
      const std::string key = spec.attack.to_string() + "|" + spec.strategy;
      auto it = file_cache.find(key);
      if (it == file_cache.end()) {
        auto model = std::make_shared<selfish::SelfishModel>(
            selfish::build_model(spec.attack));
        auto policy = std::make_shared<const mdp::Policy>(
            analysis::load_strategy_file(*model, spec.strategy.substr(5)));
        it = file_cache
                 .emplace(key, std::make_pair(std::move(model),
                                              std::move(policy)))
                 .first;
      }
      prepared.models[i] = it->second.first;
      prepared.policies[i] = it->second.second;
      if (std::isnan(prepared.predicted_errev)) {
        prepared.predicted_errev =
            analysis::exact_errev(*prepared.models[i], *prepared.policies[i]);
      }
    }
    prepared_grid.push_back(std::move(prepared));
  }
  return prepared_grid;
}

PreparedScenario prepare_scenario(const Scenario& scenario, double epsilon) {
  engine::Engine engine{engine::EngineOptions{}};
  return std::move(
      prepare_scenarios({scenario}, epsilon, engine).front());
}

NetworkResult run_scenario(const PreparedScenario& prepared,
                           std::uint64_t seed) {
  const Scenario& scenario = prepared.scenario;
  std::vector<MinerSetup> setups;
  setups.reserve(scenario.miners.size());
  for (std::size_t i = 0; i < scenario.miners.size(); ++i) {
    const MinerSpec& spec = scenario.miners[i];
    MinerSetup setup;
    setup.weight = spec.weight;
    switch (spec.kind) {
      case MinerSpec::Kind::kHonest:
        setup.agent = make_honest_miner(scenario.tie_policy, scenario.gamma);
        setup.honest = true;
        break;
      case MinerSpec::Kind::kSm1:
        setup.agent = make_sm1_miner(scenario.tie_policy, scenario.gamma);
        setup.honest = false;
        break;
      case MinerSpec::Kind::kStrategy: {
        StrategyMinerConfig config;
        config.params = spec.attack;
        config.strategy =
            spec.strategy.rfind("file:", 0) == 0 ? "optimal" : spec.strategy;
        config.tie_policy = scenario.tie_policy;
        config.gamma = scenario.gamma;
        setup.agent = make_strategy_miner(config, prepared.models[i],
                                          prepared.policies[i]);
        setup.honest = false;
        break;
      }
    }
    setups.push_back(std::move(setup));
  }

  NetworkConfig config;
  config.topology = scenario.topology;
  config.propagation = scenario.propagation;
  config.block_interval = scenario.block_interval;
  config.blocks = scenario.blocks;
  config.warmup_heights = scenario.warmup_heights;
  config.confirm_depth = scenario.confirm_depth;
  config.seed = seed;
  config.lazy_clock_reschedule = scenario.lazy_clock_reschedule;
  return run_network(config, std::move(setups));
}

}  // namespace net
