#include "chain/mining.hpp"

#include "support/check.hpp"

namespace chain {

MiningModel::MiningModel(double p) : p_(p) {
  SM_REQUIRE(p >= 0.0 && p <= 1.0, "adversary resource p out of [0,1]: ", p);
}

double MiningModel::adversary_target_prob(std::uint32_t sigma) const {
  if (sigma == 0) return 0.0;
  return p_ / (1.0 - p_ + p_ * static_cast<double>(sigma));
}

double MiningModel::honest_prob(std::uint32_t sigma) const {
  if (sigma == 0) return 1.0;
  return (1.0 - p_) / (1.0 - p_ + p_ * static_cast<double>(sigma));
}

MiningModel::Outcome MiningModel::sample_step(support::Rng& rng,
                                              std::uint32_t sigma) const {
  Outcome outcome;
  if (sigma == 0) return outcome;
  const double per_target = adversary_target_prob(sigma);
  const double adv_total = per_target * static_cast<double>(sigma);
  const double u = rng.next_double();
  if (u < adv_total) {
    outcome.adversary_won = true;
    // Targets are exchangeable: the winner is uniform among them.
    outcome.target =
        static_cast<std::uint32_t>(rng.next_below(sigma));
  }
  return outcome;
}

}  // namespace chain
