#include "chain/stats.hpp"

#include "support/check.hpp"

namespace chain {

WindowQuality window_quality(const std::vector<Owner>& owners,
                             std::size_t window) {
  SM_REQUIRE(window >= 1, "window length must be at least 1");
  WindowQuality quality;
  if (owners.size() < window) return quality;  // vacuous

  std::size_t honest_in_window = 0;
  for (std::size_t i = 0; i < window; ++i) {
    honest_in_window += owners[i] == Owner::kHonest;
  }
  double sum = 0.0;
  double worst = 1.0;
  std::size_t windows = 0;
  for (std::size_t start = 0;; ++start) {
    const double fraction =
        static_cast<double>(honest_in_window) / static_cast<double>(window);
    sum += fraction;
    if (fraction < worst) worst = fraction;
    ++windows;
    if (start + window >= owners.size()) break;
    honest_in_window -= owners[start] == Owner::kHonest;
    honest_in_window += owners[start + window] == Owner::kHonest;
  }
  quality.worst = worst;
  quality.average = sum / static_cast<double>(windows);
  quality.windows = windows;
  return quality;
}

OwnershipCount count_segment(const BlockStore& store, BlockId ancestor,
                             BlockId tip) {
  SM_REQUIRE(store.is_ancestor(ancestor, tip),
             "count_segment requires blocks on one chain");
  OwnershipCount count;
  for (BlockId cur = tip; cur != ancestor; cur = store.get(cur).parent) {
    if (store.get(cur).owner == Owner::kAdversary) {
      ++count.adversary;
    } else {
      ++count.honest;
    }
  }
  return count;
}

}  // namespace chain
