// Basic block types shared by the chain substrate and the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace chain {

/// Index of a block inside a BlockStore arena.
using BlockId = std::uint32_t;

inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/// Who mined a block. The adversarial coalition is modeled as one miner.
enum class Owner : std::uint8_t { kHonest = 0, kAdversary = 1 };

/// A block in the tree of all blocks ever mined (public or private).
/// Identity is positional (arena index); `parent == kNoBlock` only for
/// the genesis block.
struct Block {
  BlockId parent = kNoBlock;
  std::uint64_t height = 0;  ///< Genesis has height 0.
  Owner owner = Owner::kHonest;
};

}  // namespace chain
