// The paper's discrete-time (p, k)-mining probability model (§2.1).
//
// At each time step the adversary concurrently mines on σ targets while the
// honest miners mine on the single tip of the public chain. Each adversary
// target wins the step with probability p/(1−p+p·σ) and the honest miners
// win with probability (1−p)/(1−p+p·σ); exactly one party succeeds per step.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace chain {

class MiningModel {
 public:
  /// `p` is the adversary's relative resource, in [0, 1].
  explicit MiningModel(double p);

  double p() const { return p_; }

  /// Probability that one specific adversary target wins the step when the
  /// adversary mines on `sigma` targets.
  double adversary_target_prob(std::uint32_t sigma) const;

  /// Probability that the honest miners win the step.
  double honest_prob(std::uint32_t sigma) const;

  /// Outcome of one mining step.
  struct Outcome {
    bool adversary_won = false;
    std::uint32_t target = 0;  ///< Winning target index in [0, σ) if so.
  };

  /// Samples one step given `sigma` adversary targets (sigma may be 0, in
  /// which case the honest miners win with probability 1).
  Outcome sample_step(support::Rng& rng, std::uint32_t sigma) const;

 private:
  double p_;
};

}  // namespace chain
