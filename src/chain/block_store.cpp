#include "chain/block_store.hpp"

#include "support/check.hpp"

namespace chain {

BlockStore::BlockStore() {
  blocks_.push_back(Block{kNoBlock, 0, Owner::kHonest});
}

BlockId BlockStore::add_block(BlockId parent, Owner owner) {
  SM_REQUIRE(parent < blocks_.size(), "unknown parent block ", parent);
  const Block& p = blocks_[parent];
  blocks_.push_back(Block{parent, p.height + 1, owner});
  return static_cast<BlockId>(blocks_.size() - 1);
}

const Block& BlockStore::get(BlockId id) const {
  SM_REQUIRE(id < blocks_.size(), "unknown block ", id);
  return blocks_[id];
}

BlockId BlockStore::ancestor_at_height(BlockId tip,
                                       std::uint64_t height) const {
  BlockId cur = tip;
  SM_REQUIRE(get(cur).height >= height,
             "requested ancestor above the tip height");
  while (get(cur).height > height) cur = get(cur).parent;
  return cur;
}

bool BlockStore::is_ancestor(BlockId ancestor, BlockId descendant) const {
  const std::uint64_t target = get(ancestor).height;
  if (get(descendant).height < target) return false;
  return ancestor_at_height(descendant, target) == ancestor;
}

std::uint64_t BlockStore::adversary_blocks_between(BlockId ancestor,
                                                   BlockId tip) const {
  SM_REQUIRE(is_ancestor(ancestor, tip), "blocks are not on one chain");
  std::uint64_t count = 0;
  for (BlockId cur = tip; cur != ancestor; cur = get(cur).parent) {
    if (get(cur).owner == Owner::kAdversary) ++count;
  }
  return count;
}

}  // namespace chain
