// Chain-quality accounting over a finished (or snapshotted) chain.
#pragma once

#include <cstdint>

#include "chain/block_store.hpp"

namespace chain {

/// Counts of main-chain blocks by owner over a chain segment.
struct OwnershipCount {
  std::uint64_t honest = 0;
  std::uint64_t adversary = 0;

  std::uint64_t total() const { return honest + adversary; }

  /// The adversary's relative revenue over the segment; 0 if empty.
  double relative_revenue() const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(adversary) / static_cast<double>(t);
  }

  /// Chain quality = 1 − relative revenue (paper §2.2); 1 if empty.
  double chain_quality() const { return 1.0 - relative_revenue(); }
};

/// Counts block ownership on the path from `tip` down to (excluding)
/// `ancestor`. Requires `ancestor` to be an ancestor of `tip`.
OwnershipCount count_segment(const BlockStore& store, BlockId ancestor,
                             BlockId tip);

/// (μ, ℓ)-chain quality of a finished owner sequence (paper §2.2): a chain
/// satisfies (μ, ℓ)-chain quality when every window of ℓ consecutive
/// blocks contains at least a μ fraction of honest blocks. `worst` is the
/// largest such μ for the given sequence — the guarantee it actually
/// provides; `average` is the mean honest fraction across all windows.
struct WindowQuality {
  double worst = 1.0;
  double average = 1.0;
  std::size_t windows = 0;
};

/// Computes the sliding-window quality of `owners` (oldest block first)
/// for windows of length `window`. Requires window ≥ 1; sequences shorter
/// than the window yield zero windows and the vacuous quality 1.
WindowQuality window_quality(const std::vector<Owner>& owners,
                             std::size_t window);

}  // namespace chain
