// Arena of blocks forming a tree rooted at genesis.
//
// The simulator mines blocks (public and private) into one shared store;
// chains are identified by their tip block. The store supports the ancestry
// queries needed for fork-choice and chain-quality accounting.
#pragma once

#include <vector>

#include "chain/block.hpp"

namespace chain {

class BlockStore {
 public:
  /// Creates a store holding only the genesis block (honest by convention).
  BlockStore();

  /// Appends a block under `parent`; returns its id.
  BlockId add_block(BlockId parent, Owner owner);

  const Block& get(BlockId id) const;
  std::uint64_t height(BlockId id) const { return get(id).height; }
  std::size_t size() const { return blocks_.size(); }
  BlockId genesis() const { return 0; }

  /// The ancestor of `tip` at exactly `height`; requires
  /// height ≤ height(tip).
  BlockId ancestor_at_height(BlockId tip, std::uint64_t height) const;

  /// True if `ancestor` lies on the path from `descendant` to genesis
  /// (a block is its own ancestor).
  bool is_ancestor(BlockId ancestor, BlockId descendant) const;

  /// Number of adversary-owned blocks strictly above `ancestor` on the
  /// path to `tip` (requires is_ancestor(ancestor, tip)).
  std::uint64_t adversary_blocks_between(BlockId ancestor, BlockId tip) const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace chain
