#include "mdp/solve.hpp"

#include "mdp/dense_solver.hpp"
#include "support/check.hpp"

namespace mdp {

SolverMethod parse_solver_method(const std::string& name) {
  if (name == "vi") return SolverMethod::kValueIteration;
  if (name == "gs" || name == "vi-gs") return SolverMethod::kGaussSeidel;
  if (name == "pi") return SolverMethod::kPolicyIteration;
  if (name == "dense") return SolverMethod::kDensePolicyIteration;
  throw support::InvalidArgument("unknown solver method: " + name +
                                 " (expected vi | gs | pi | dense)");
}

std::string to_string(SolverMethod method) {
  switch (method) {
    case SolverMethod::kValueIteration: return "vi";
    case SolverMethod::kGaussSeidel: return "gs";
    case SolverMethod::kPolicyIteration: return "pi";
    case SolverMethod::kDensePolicyIteration: return "dense";
  }
  return "?";
}

MeanPayoffResult solve_mean_payoff(const Mdp& mdp,
                                   const std::vector<double>& action_reward,
                                   const SolveOptions& options,
                                   const std::vector<double>* warm_start) {
  SM_REQUIRE(options.tuning.sweep_mode == SweepMode::kOrdered,
             "sweep mode ", to_string(options.tuning.sweep_mode),
             " requires the kernel solve path (the legacy AoS reference "
             "implements only ordered sweeps)");
  switch (options.method) {
    case SolverMethod::kValueIteration:
      return value_iteration(mdp, action_reward, options.mean_payoff,
                             warm_start);
    case SolverMethod::kGaussSeidel:
      return gauss_seidel_value_iteration(mdp, action_reward,
                                          options.mean_payoff, warm_start);
    case SolverMethod::kPolicyIteration: {
      PolicyIterationOptions pi_options;
      pi_options.evaluation = options.mean_payoff;
      const PolicyIterationResult pi =
          policy_iteration(mdp, action_reward, pi_options);
      MeanPayoffResult result;
      result.gain = pi.gain;
      result.gain_lo = pi.gain_lo;
      result.gain_hi = pi.gain_hi;
      result.policy = pi.policy;
      result.iterations = pi.rounds;
      result.converged = pi.converged;
      return result;
    }
    case SolverMethod::kDensePolicyIteration: {
      const DensePolicyIterationResult dp = dense_policy_iteration(
          mdp, action_reward, /*improve_tol=*/options.mean_payoff.tol * 1e-2);
      MeanPayoffResult result;
      result.gain = dp.gain;
      result.gain_lo = dp.gain;
      result.gain_hi = dp.gain;
      result.policy = dp.policy;
      result.iterations = dp.rounds;
      result.converged = dp.converged;
      return result;
    }
  }
  throw support::InternalError("unhandled solver method");
}

MeanPayoffResult solve_mean_payoff(const BellmanKernel& kernel, double beta,
                                   const SolveOptions& options,
                                   const std::vector<double>* warm_start) {
  switch (options.method) {
    case SolverMethod::kValueIteration:
      return kernel.value_iteration(beta, options.mean_payoff, warm_start,
                                    options.threads, options.tuning);
    case SolverMethod::kGaussSeidel:
      return kernel.gauss_seidel(beta, options.mean_payoff, warm_start,
                                 options.threads, options.tuning);
    case SolverMethod::kPolicyIteration:
    case SolverMethod::kDensePolicyIteration: {
      // No SoA implementation: materialize the reward vector and take the
      // AoS path (identical numbers — the fused reward is beta_reward).
      std::vector<double> rewards;
      kernel.mdp().beta_rewards_into(beta, rewards);
      return solve_mean_payoff(kernel.mdp(), rewards, options, warm_start);
    }
  }
  throw support::InternalError("unhandled solver method");
}

}  // namespace mdp
