// Fixed-policy mean-payoff evaluation.
//
// Two complementary routines:
//  * evaluate_policy_gain — RVI restricted to one policy; returns certified
//    gain bounds and a bias (relative value) vector, used by Howard policy
//    iteration for its improvement step.
//  * evaluate_policy_counters — long-run rates of the two finalization
//    counters (adversary, honest) via one stationary-distribution solve;
//    the exact ERRev of a strategy is then g_A / (g_A + g_H).
#pragma once

#include <vector>

#include "mdp/markov_chain.hpp"
#include "mdp/mdp.hpp"
#include "mdp/value_iteration.hpp"

namespace mdp {

struct PolicyEvaluation {
  double gain = 0.0;
  double gain_lo = 0.0;
  double gain_hi = 0.0;
  std::vector<double> bias;  ///< Relative values h with h[0] = 0.
  int iterations = 0;
  bool converged = false;
};

/// Mean payoff of `policy` for `action_reward`, by relative value iteration
/// on the induced (lazy-transformed) Markov chain.
PolicyEvaluation evaluate_policy_gain(const Mdp& mdp, const Policy& policy,
                                      const std::vector<double>& action_reward,
                                      const MeanPayoffOptions& options = {},
                                      const std::vector<double>* warm_start = nullptr);

struct CounterRates {
  double adversary = 0.0;  ///< Long-run finalized adversary blocks / step.
  double honest = 0.0;     ///< Long-run finalized honest blocks / step.

  /// ERRev of the policy: adversary / (adversary + honest).
  /// Well-defined for the selfish-mining models, where the total
  /// finalization rate is bounded below by (1−p)/(1−p+p·d·f) > 0.
  double ratio() const { return adversary / (adversary + honest); }
};

/// Long-run rates of both finalization counters under `policy`.
CounterRates evaluate_policy_counters(const Mdp& mdp, const Policy& policy,
                                      const StationaryOptions& options = {});

}  // namespace mdp
