#include "mdp/builder.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mdp {

StateId MdpBuilder::add_state() {
  state_actions_.emplace_back();
  return static_cast<StateId>(state_actions_.size() - 1);
}

ActionId MdpBuilder::add_action(std::uint32_t label) {
  SM_REQUIRE(!state_actions_.empty(), "add_state before add_action");
  auto& actions = state_actions_.back();
  actions.push_back(PendingAction{label, {}});
  return action_count_++;
}

void MdpBuilder::add_transition(StateId target, double prob,
                                RewardCounts counts) {
  SM_REQUIRE(!state_actions_.empty() && !state_actions_.back().empty(),
             "add_action before add_transition");
  SM_REQUIRE(prob > 0.0 && prob <= 1.0 + 1e-12,
             "transition probability out of range: ", prob);
  auto& transitions = state_actions_.back().back().transitions;
  // Merge duplicates produced by canonicalization (several concrete
  // outcomes mapping to the same canonical successor).
  for (auto& t : transitions) {
    if (t.target == target && t.counts == counts) {
      t.prob += prob;
      return;
    }
  }
  transitions.push_back(PendingTransition{target, prob, counts});
}

Mdp MdpBuilder::build(StateId initial) {
  const StateId n = num_states();
  SM_REQUIRE(n > 0, "cannot build an empty MDP");
  SM_REQUIRE(initial < n, "initial state ", initial, " out of range ", n);

  Mdp m;
  m.initial_ = initial;
  m.action_begin_.reserve(n + 1);
  m.action_begin_.push_back(0);

  ActionId num_actions = 0;
  std::size_t num_transitions = 0;
  for (StateId s = 0; s < n; ++s) {
    SM_REQUIRE(!state_actions_[s].empty(), "state ", s, " has no actions");
    num_actions += static_cast<ActionId>(state_actions_[s].size());
    for (const auto& a : state_actions_[s]) {
      SM_REQUIRE(!a.transitions.empty(), "an action of state ", s,
                 " has no transitions");
      num_transitions += a.transitions.size();
    }
    m.action_begin_.push_back(num_actions);
  }

  m.action_state_.reserve(num_actions);
  m.action_label_.reserve(num_actions);
  m.tr_begin_.reserve(num_actions + 1);
  m.tr_begin_.push_back(0);
  m.transitions_.reserve(num_transitions);
  m.exp_adv_.reserve(num_actions);
  m.exp_hon_.reserve(num_actions);

  for (StateId s = 0; s < n; ++s) {
    for (const auto& a : state_actions_[s]) {
      double total = 0.0;
      for (const auto& t : a.transitions) {
        SM_REQUIRE(t.target < n, "transition target ", t.target,
                   " out of range ", n);
        total += t.prob;
      }
      SM_REQUIRE(std::fabs(total - 1.0) <= 1e-9,
                 "action probabilities of state ", s, " sum to ", total);

      double exp_adv = 0.0;
      double exp_hon = 0.0;
      for (const auto& t : a.transitions) {
        const double p = t.prob / total;  // exact renormalization
        m.transitions_.push_back(Transition{t.target, p, t.counts});
        exp_adv += p * t.counts.adversary;
        exp_hon += p * t.counts.honest;
      }
      m.action_state_.push_back(s);
      m.action_label_.push_back(a.label);
      m.tr_begin_.push_back(static_cast<std::uint32_t>(m.transitions_.size()));
      m.exp_adv_.push_back(exp_adv);
      m.exp_hon_.push_back(exp_hon);
    }
  }

  state_actions_.clear();
  state_actions_.shrink_to_fit();
  action_count_ = 0;
  return m;
}

}  // namespace mdp
