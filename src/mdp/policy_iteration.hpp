// Howard's policy iteration for mean-payoff (unichain) MDPs.
//
// Each round evaluates the current policy's gain and bias (via
// evaluate_policy_gain) and then improves greedily w.r.t. the bias.
// An action only replaces the incumbent when its Q-value exceeds the
// incumbent's by `improve_tol`, which prevents cycling on numerically
// tied actions. For unichain models this terminates at an optimal policy
// whose gain matches value iteration within the evaluation tolerance —
// used in tests to certify the VI results.
#pragma once

#include <vector>

#include "mdp/markov_chain.hpp"
#include "mdp/mdp.hpp"
#include "mdp/value_iteration.hpp"

namespace mdp {

struct PolicyIterationOptions {
  MeanPayoffOptions evaluation;   ///< RVI options for each evaluation.
  double improve_tol = 1e-9;      ///< Q improvement needed to switch action.
  int max_rounds = 1000;
};

struct PolicyIterationResult {
  double gain = 0.0;
  double gain_lo = 0.0;
  double gain_hi = 0.0;
  Policy policy;
  int rounds = 0;
  bool converged = false;
};

/// Runs Howard policy iteration starting from the per-state first action
/// (or `initial_policy` if provided).
PolicyIterationResult policy_iteration(const Mdp& mdp,
                                       const std::vector<double>& action_reward,
                                       const PolicyIterationOptions& options = {},
                                       const Policy* initial_policy = nullptr);

}  // namespace mdp
