#include "mdp/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "mdp/builder.hpp"
#include "support/check.hpp"

namespace mdp {

namespace {

constexpr std::uint64_t kMagic = 0x53454c4d44503031ULL;  // "SELMDP01"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SM_REQUIRE(in.good(), "truncated MDP stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
std::vector<T> read_vector(std::istream& in, std::uint64_t max_size) {
  const auto size = read_pod<std::uint64_t>(in);
  SM_REQUIRE(size <= max_size, "implausible vector size in MDP stream: ",
             size);
  std::vector<T> v(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    SM_REQUIRE(in.good(), "truncated MDP stream");
  }
  return v;
}

}  // namespace

void save_binary(const Mdp& m, std::ostream& out) {
  write_pod(out, kMagic);
  write_pod<std::uint32_t>(out, m.initial_state());

  // Flat per-action dump; the builder re-validates on load.
  write_pod<std::uint64_t>(out, m.num_states());
  std::vector<std::uint32_t> actions_per_state(m.num_states());
  for (StateId s = 0; s < m.num_states(); ++s) {
    actions_per_state[s] = m.num_actions_of(s);
  }
  write_vector(out, actions_per_state);

  std::vector<std::uint32_t> labels(m.num_actions());
  std::vector<std::uint32_t> transitions_per_action(m.num_actions());
  for (ActionId a = 0; a < m.num_actions(); ++a) {
    labels[a] = m.action_label(a);
    transitions_per_action[a] =
        static_cast<std::uint32_t>(m.transitions(a).size());
  }
  write_vector(out, labels);
  write_vector(out, transitions_per_action);

  std::vector<Transition> transitions;
  transitions.reserve(m.num_transitions());
  for (ActionId a = 0; a < m.num_actions(); ++a) {
    for (const Transition& t : m.transitions(a)) transitions.push_back(t);
  }
  write_vector(out, transitions);
}

Mdp load_binary(std::istream& in) {
  SM_REQUIRE(read_pod<std::uint64_t>(in) == kMagic,
             "not an MDP binary stream (bad magic)");
  const auto initial = read_pod<std::uint32_t>(in);
  const auto num_states = read_pod<std::uint64_t>(in);
  constexpr std::uint64_t kMax = 1ull << 33;  // sanity bound

  const auto actions_per_state = read_vector<std::uint32_t>(in, kMax);
  SM_REQUIRE(actions_per_state.size() == num_states,
             "state count mismatch in MDP stream");
  const auto labels = read_vector<std::uint32_t>(in, kMax);
  const auto transitions_per_action = read_vector<std::uint32_t>(in, kMax);
  SM_REQUIRE(labels.size() == transitions_per_action.size(),
             "action arrays disagree in MDP stream");
  const auto transitions = read_vector<Transition>(in, kMax);

  // Rebuild through the builder so every invariant (stochastic rows,
  // in-range targets, non-empty states) is re-checked.
  MdpBuilder builder;
  std::size_t action_cursor = 0;
  std::size_t transition_cursor = 0;
  for (std::uint64_t s = 0; s < num_states; ++s) {
    builder.add_state();
    for (std::uint32_t a = 0; a < actions_per_state[s]; ++a) {
      SM_REQUIRE(action_cursor < labels.size(),
                 "action payload shorter than the index");
      builder.add_action(labels[action_cursor]);
      const std::uint32_t fanout = transitions_per_action[action_cursor];
      ++action_cursor;
      for (std::uint32_t t = 0; t < fanout; ++t) {
        SM_REQUIRE(transition_cursor < transitions.size(),
                   "transition payload shorter than the index");
        const Transition& tr = transitions[transition_cursor++];
        builder.add_transition(tr.target, tr.prob, tr.counts);
      }
    }
  }
  SM_REQUIRE(action_cursor == labels.size(),
             "unused actions at the end of the MDP stream");
  SM_REQUIRE(transition_cursor == transitions.size(),
             "unused transitions at the end of the MDP stream");
  return builder.build(initial);
}

}  // namespace mdp
