// Unified facade over the mean-payoff solvers.
//
// Algorithm 1 and the sweep drivers address solvers through this facade so
// that the solver choice is a runtime parameter (mirroring the paper's use
// of an off-the-shelf model checker as a black box).
#pragma once

#include <string>

#include "mdp/bellman_kernel.hpp"
#include "mdp/mdp.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/value_iteration.hpp"

namespace mdp {

enum class SolverMethod {
  kValueIteration,        ///< Relative VI with aperiodicity transform.
  kGaussSeidel,           ///< In-place VI with synchronous certification.
  kPolicyIteration,       ///< Howard PI with iterative evaluation.
  kDensePolicyIteration,  ///< Howard PI with exact dense evaluation (small).
};

/// Parses "vi" | "gs" | "pi" | "dense"; throws otherwise.
SolverMethod parse_solver_method(const std::string& name);
std::string to_string(SolverMethod method);

struct SolveOptions {
  SolverMethod method = SolverMethod::kValueIteration;
  MeanPayoffOptions mean_payoff;  ///< Tolerances for VI / PI evaluation.
  /// Worker threads for the kernel's synchronous Bellman sweeps (0 = all
  /// hardware threads). Results are bit-identical at any thread count
  /// (test_mdp_kernel), so this is pure speed — the engine's job keys
  /// deliberately exclude it.
  int threads = 1;
  /// Route vi/gs solves through the SoA mdp::BellmanKernel (the fast
  /// path). Off = the legacy AoS reference implementation; both produce
  /// bit-identical results, so this knob too is excluded from job keys.
  bool use_kernel = true;
  /// Kernel speed/iterate-path knobs. `tuning.gather` and
  /// `tuning.prefetch_distance` are byte-identical speed knobs (excluded
  /// from job keys, like `threads`); `tuning.sweep_mode` selects the
  /// certified Gauss–Seidel iterate path and DOES participate in job
  /// identity (engine::solver_options_id renders it). The red-black mode
  /// requires the kernel gs path — the legacy AoS reference implements
  /// only ordered sweeps.
  KernelTuning tuning;
};

/// Maximizes the mean payoff of `mdp` for the per-action reward vector.
/// `warm_start` (value vector from a previous related solve) is honored by
/// the value-iteration method and ignored by the others. This entry walks
/// the legacy AoS arrays and ignores `threads`/`use_kernel`; it is the
/// reference path (build a BellmanKernel and use the overload below for
/// the optimized one).
MeanPayoffResult solve_mean_payoff(const Mdp& mdp,
                                   const std::vector<double>& action_reward,
                                   const SolveOptions& options = {},
                                   const std::vector<double>* warm_start = nullptr);

/// Kernel path: solves for the fused reward r_β on a prebuilt SoA view,
/// fanning sweeps over `options.threads` workers. vi/gs run on the
/// kernel; pi/dense have no SoA implementation and fall back to the AoS
/// path with a materialized beta_rewards vector. Bit-identical to the
/// reference overload at any thread count.
MeanPayoffResult solve_mean_payoff(const BellmanKernel& kernel, double beta,
                                   const SolveOptions& options = {},
                                   const std::vector<double>* warm_start = nullptr);

}  // namespace mdp
