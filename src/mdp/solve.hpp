// Unified facade over the mean-payoff solvers.
//
// Algorithm 1 and the sweep drivers address solvers through this facade so
// that the solver choice is a runtime parameter (mirroring the paper's use
// of an off-the-shelf model checker as a black box).
#pragma once

#include <string>

#include "mdp/mdp.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/value_iteration.hpp"

namespace mdp {

enum class SolverMethod {
  kValueIteration,        ///< Relative VI with aperiodicity transform.
  kGaussSeidel,           ///< In-place VI with synchronous certification.
  kPolicyIteration,       ///< Howard PI with iterative evaluation.
  kDensePolicyIteration,  ///< Howard PI with exact dense evaluation (small).
};

/// Parses "vi" | "gs" | "pi" | "dense"; throws otherwise.
SolverMethod parse_solver_method(const std::string& name);
std::string to_string(SolverMethod method);

struct SolveOptions {
  SolverMethod method = SolverMethod::kValueIteration;
  MeanPayoffOptions mean_payoff;  ///< Tolerances for VI / PI evaluation.
};

/// Maximizes the mean payoff of `mdp` for the per-action reward vector.
/// `warm_start` (value vector from a previous related solve) is honored by
/// the value-iteration method and ignored by the others.
MeanPayoffResult solve_mean_payoff(const Mdp& mdp,
                                   const std::vector<double>& action_reward,
                                   const SolveOptions& options = {},
                                   const std::vector<double>* warm_start = nullptr);

}  // namespace mdp
