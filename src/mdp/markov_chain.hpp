// Markov-chain analyses of an MDP under a fixed positional strategy.
//
// Used for (a) the exact ERRev of a computed strategy via the renewal
// ratio g_A / (g_A + g_H) and (b) structural sanity checks (reachability,
// unichain validation) exercised by the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "mdp/mdp.hpp"

namespace mdp {

/// A positional strategy: one global action id per state; the action must
/// belong to the state it is assigned to.
using Policy = std::vector<ActionId>;

/// Throws support::InvalidArgument unless `policy` assigns each state one
/// of its own actions.
void validate_policy(const Mdp& mdp, const Policy& policy);

/// States reachable from `from` under *some* action (BFS over all actions).
std::vector<bool> reachable_states(const Mdp& mdp, StateId from);

/// States reachable from `from` under the fixed `policy`.
std::vector<bool> reachable_states(const Mdp& mdp, const Policy& policy,
                                   StateId from);

struct StationaryOptions {
  double tol = 1e-12;       ///< L1 change at which power iteration stops.
  int max_iterations = 5'000'000;
  double tau = 0.5;         ///< Laziness: P' = τI + (1−τ)P (same fixpoint).
};

struct StationaryResult {
  std::vector<double> distribution;  ///< μ with μP = μ, Σμ = 1.
  int iterations = 0;
  bool converged = false;
};

/// Stationary distribution of the chain induced by `policy`, computed by
/// lazy power iteration started from the initial state. For a unichain
/// model this converges to the unique stationary distribution of the
/// recurrent class reachable from the initial state.
StationaryResult stationary_distribution(const Mdp& mdp, const Policy& policy,
                                         const StationaryOptions& options = {});

/// Long-run average of a per-action reward under `policy`:
/// Σ_s μ(s) · reward[policy(s)].
double policy_gain(const Mdp& mdp, const Policy& policy,
                   const std::vector<double>& action_reward,
                   const std::vector<double>& stationary);

}  // namespace mdp
