#include "mdp/policy_iteration.hpp"

#include "mdp/policy_evaluation.hpp"
#include "support/check.hpp"

namespace mdp {

PolicyIterationResult policy_iteration(const Mdp& mdp,
                                       const std::vector<double>& action_reward,
                                       const PolicyIterationOptions& options,
                                       const Policy* initial_policy) {
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size mismatch");
  const StateId n = mdp.num_states();

  PolicyIterationResult result;
  Policy& policy = result.policy;
  if (initial_policy != nullptr) {
    validate_policy(mdp, *initial_policy);
    policy = *initial_policy;
  } else {
    policy.resize(n);
    for (StateId s = 0; s < n; ++s) policy[s] = mdp.action_begin(s);
  }

  std::vector<double> bias;  // reused as warm start across rounds
  for (int round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;
    const PolicyEvaluation eval = evaluate_policy_gain(
        mdp, policy, action_reward, options.evaluation,
        bias.empty() ? nullptr : &bias);
    SM_ENSURE(eval.converged, "policy evaluation did not converge in round ",
              round);
    bias = eval.bias;
    result.gain = eval.gain;
    result.gain_lo = eval.gain_lo;
    result.gain_hi = eval.gain_hi;

    bool changed = false;
    for (StateId s = 0; s < n; ++s) {
      const ActionId incumbent = policy[s];
      double incumbent_q = action_reward[incumbent];
      for (const Transition& t : mdp.transitions(incumbent)) {
        incumbent_q += t.prob * bias[t.target];
      }
      double best_q = incumbent_q;
      ActionId best_a = incumbent;
      for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s); ++a) {
        if (a == incumbent) continue;
        double q = action_reward[a];
        for (const Transition& t : mdp.transitions(a)) {
          q += t.prob * bias[t.target];
        }
        if (q > best_q + options.improve_tol) {
          best_q = q;
          best_a = a;
        }
      }
      if (best_a != incumbent) {
        policy[s] = best_a;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace mdp
