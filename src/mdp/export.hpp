// Model export: PRISM/Storm explicit-state format and Graphviz DOT.
//
// The paper solves its MDPs with the Storm model checker; exporting our
// built models in Storm's explicit input format lets anyone replay a
// model through the paper's own toolchain and confirm our solvers agree
// (storm --explicit model.tra model.lab --transrew model.rew …).
//
// Format reference (PRISM/Storm "explicit" files):
//   .tra  — header "mdp", then one line per transition:
//           <state> <action-offset> <target> <probability>
//   .lab  — declares "init" and marks the initial state
//   .rew  — transition rewards: <state> <action-offset> <target> <reward>
//
// DOT export renders small models (a few hundred states) for inspection;
// an optional labeler maps state ids to human-readable names.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "mdp/mdp.hpp"

namespace mdp {

/// Writes the transition structure in Storm explicit .tra format.
void export_tra(const Mdp& mdp, std::ostream& out);

/// Writes the label file marking the initial state.
void export_lab(const Mdp& mdp, std::ostream& out);

/// Writes transition rewards for r_β = (1−β)·adv − β·hon at a fixed β.
void export_rew(const Mdp& mdp, double beta, std::ostream& out);

/// Optional state labeler for DOT output: id → display string.
using StateLabeler = std::function<std::string(StateId)>;

struct DotOptions {
  /// Refuse to render models larger than this (DOT becomes useless).
  StateId max_states = 500;
  StateLabeler labeler;  ///< Defaults to the numeric id.
};

/// Writes a Graphviz digraph: square nodes are states (initial doubled),
/// round points are action choices, edges carry probabilities and
/// finalization counters.
void export_dot(const Mdp& mdp, std::ostream& out,
                const DotOptions& options = {});

}  // namespace mdp
