#include "mdp/bellman_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "mdp/bellman_gather.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace mdp {

namespace {

/// Solver metric handles, registered once. The namespace-scope reference
/// below forces registration at static-init time so a fresh process's
/// `metrics` scrape already lists the mdp family at zero.
struct MdpMetrics {
  obs::Counter& solves = obs::counter(
      "selfish_mdp_solves_total", "Mean-payoff solves completed");
  obs::Counter& sweeps = obs::counter(
      "selfish_mdp_sweeps_total", "Synchronous Bellman backup sweeps run");
  obs::Counter& iterations = obs::counter(
      "selfish_mdp_iterations_total", "Solver iterations across all solves");
  obs::Gauge& bytes_per_sweep = obs::gauge(
      "selfish_mdp_bytes_per_sweep",
      "Bytes streamed by one backup sweep of the most recent model");
  obs::Histogram& sweep_seconds = obs::histogram(
      "selfish_mdp_sweep_seconds", "Wall time of one parallel backup sweep",
      obs::exponential_buckets(1e-5, 4.0, 12));
  obs::Histogram& achieved_gbps = obs::histogram(
      "selfish_mdp_achieved_gbps",
      "Memory bandwidth achieved by backup sweeps (roofline number)",
      obs::exponential_buckets(0.25, 2.0, 10));
};

MdpMetrics& mdp_metrics() {
  static MdpMetrics metrics;
  return metrics;
}

[[maybe_unused]] const MdpMetrics& g_registered_mdp_metrics = mdp_metrics();

/// Below this many states per worker, extra threads cost more in barrier
/// latency than they save; the sweep scheduler caps the worker count
/// accordingly (outputs are thread-count invariant either way). Low
/// enough that the d=2 test/CI models still exercise the parallel path.
constexpr StateId kMinStatesPerWorker = 256;

/// Transitions per hardware-gather tile. 4096 products occupy 32 KB of
/// scratch — L1-resident on anything current — so the ordered sum pass
/// immediately after the gather pass rereads them for free.
constexpr std::uint32_t kGatherTile = 4096;

/// Chunk partition over a contiguous index range for the synchronous
/// sweeps of one solve, fanned over a borrowed kernel-lifetime pool
/// (nullptr = serial). Chunks are contiguous ranges rounded up to whole
/// cache lines of doubles, so two workers never store into the same
/// 64-byte line of the 64-byte-aligned value buffers; several chunks per
/// worker so uneven action/transition counts balance out.
class SweepRunner {
 public:
  SweepRunner(StateId n, support::ThreadPool* pool) : pool_(pool) {
    const int workers = pool != nullptr ? pool->num_threads() : 1;
    const StateId num_chunks =
        workers > 1 ? static_cast<StateId>(workers) * 4 : 1;
    StateId chunk = std::max<StateId>(1, (n + num_chunks - 1) / num_chunks);
    constexpr StateId kLine = static_cast<StateId>(support::kDoublesPerLine);
    chunk = (chunk + kLine - 1) / kLine * kLine;
    for (StateId begin = 0; begin < n; begin += chunk) {
      bounds_.emplace_back(begin, std::min<StateId>(begin + chunk, n));
    }
    if (bounds_.empty()) bounds_.emplace_back(0, 0);
  }

  std::size_t num_chunks() const { return bounds_.size(); }
  std::pair<StateId, StateId> bounds(std::size_t c) const { return bounds_[c]; }

  /// Runs fn(chunk_index) over all chunks; returns after all finish.
  void run(const std::function<void(std::size_t)>& fn) const {
    if (pool_ == nullptr) {
      for (std::size_t c = 0; c < bounds_.size(); ++c) fn(c);
      return;
    }
    support::parallel_for(*pool_, bounds_.size(), fn);
  }

 private:
  std::vector<std::pair<StateId, StateId>> bounds_;
  support::ThreadPool* pool_;
};

void check_options(const MeanPayoffOptions& options) {
  SM_REQUIRE(options.tau > 0.0 && options.tau < 1.0,
             "tau must lie strictly inside (0,1): ", options.tau);
  SM_REQUIRE(options.tol > 0.0, "tolerance must be positive");
  SM_REQUIRE(options.max_iterations >= 1,
             "need at least one iteration, got ", options.max_iterations);
}

/// Resolved gather strategy for one solve: a hardware gather-product
/// kernel (nullptr = fused scalar loop) plus the prefetch lookahead.
struct GatherPlan {
  detail::GatherProductsFn fn = nullptr;
  int prefetch = 0;
};

/// The widest hardware gather compiled in and supported by this CPU
/// (nullptr when there is none).
detail::GatherProductsFn widest_gather_fn() {
  detail::GatherProductsFn fn = detail::avx512_gather_products();
  if (fn == nullptr) fn = detail::avx2_gather_products();
  return fn;
}

/// GatherMode::kAuto's resolution: the faster of the portable loop and
/// the widest available hardware gather, decided once per process by a
/// short calibration. "Widest ISA" alone is the wrong policy —
/// vgatherdpd is microcoded into scalar loads on several x86
/// implementations (and most virtualized CPUs), where the tile path
/// loses ~25% to the fused scalar loop — so auto measures instead of
/// assuming. All candidates are byte-identical (test_mdp_kernel pins
/// that), so only speed is at stake; the probe costs ~1 ms once.
detail::GatherProductsFn auto_gather_fn() {
  static const detail::GatherProductsFn chosen = []() {
    const detail::GatherProductsFn hw = widest_gather_fn();
    if (hw == nullptr) return hw;
    // A DRAM-unfriendly synthetic shaped like the big models' sweeps:
    // gather-products over a value array far past L2, indices from a
    // fixed LCG. Each candidate is timed as the kernel would actually
    // run it — the scalar route is the *fused* gather-multiply-sum loop
    // (no product store), the hardware route pays its real tile cost:
    // gather-multiply into scratch plus the summing reread. Best-of-3
    // each; the hardware path must win by >5% to displace scalar.
    constexpr std::uint32_t kValues = 1u << 20;    // 8 MB value array
    constexpr std::uint32_t kProducts = 1u << 16;
    std::vector<double> values(kValues, 1.0);
    std::vector<double> probs(kProducts, 0.5);
    std::vector<double> out(kProducts, 0.0);
    std::vector<StateId> targets(kProducts);
    std::uint32_t lcg = 0x9e3779b9u;
    for (StateId& target : targets) {
      lcg = lcg * 1664525u + 1013904223u;
      target = static_cast<StateId>(lcg % kValues);
    }
    volatile double sink = 0.0;
    const auto fused_seconds = [&]() {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        const support::Timer timer;
        double sum = 0.0;
        for (std::uint32_t i = 0; i < kProducts; ++i) {
          sum += probs[i] * values[targets[i]];
        }
        sink = sum;
        best = std::min(best, timer.seconds());
      }
      return best;
    };
    const auto tiled_seconds = [&](detail::GatherProductsFn fn) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 3; ++rep) {
        const support::Timer timer;
        fn(probs.data(), targets.data(), values.data(), out.data(),
           kProducts, 0);
        double sum = 0.0;
        for (std::uint32_t i = 0; i < kProducts; ++i) sum += out[i];
        sink = sum;
        best = std::min(best, timer.seconds());
      }
      return best;
    };
    return tiled_seconds(hw) < 0.95 * fused_seconds() ? hw : nullptr;
  }();
  return chosen;
}

GatherPlan resolve_plan(const KernelTuning& tuning) {
  SM_REQUIRE(tuning.prefetch_distance >= 0,
             "prefetch distance must be >= 0, got ",
             tuning.prefetch_distance);
  GatherPlan plan;
  plan.prefetch = tuning.prefetch_distance;
  switch (tuning.gather) {
    case GatherMode::kScalar:
      break;
    case GatherMode::kAvx2:
      plan.fn = detail::avx2_gather_products();
      SM_REQUIRE(plan.fn != nullptr,
                 "gather mode avx2 is not available on this build/CPU "
                 "(probe with gather_mode_available)");
      break;
    case GatherMode::kAvx512:
      plan.fn = detail::avx512_gather_products();
      SM_REQUIRE(plan.fn != nullptr,
                 "gather mode avx512 is not available on this build/CPU "
                 "(probe with gather_mode_available)");
      break;
    case GatherMode::kAuto:
      plan.fn = auto_gather_fn();
      break;
  }
  return plan;
}

}  // namespace

const char* to_string(SweepMode mode) {
  return mode == SweepMode::kRedBlack ? "redblack" : "ordered";
}

SweepMode parse_sweep_mode(const std::string& text) {
  if (text == "ordered") return SweepMode::kOrdered;
  if (text == "redblack" || text == "red-black") return SweepMode::kRedBlack;
  SM_REQUIRE(false, "unknown sweep mode '", text,
             "' (expected ordered|redblack)");
  return SweepMode::kOrdered;
}

const char* to_string(GatherMode mode) {
  switch (mode) {
    case GatherMode::kScalar:
      return "scalar";
    case GatherMode::kAvx2:
      return "avx2";
    case GatherMode::kAvx512:
      return "avx512";
    case GatherMode::kAuto:
      break;
  }
  return "auto";
}

GatherMode parse_gather_mode(const std::string& text) {
  if (text == "auto") return GatherMode::kAuto;
  if (text == "scalar") return GatherMode::kScalar;
  if (text == "avx2") return GatherMode::kAvx2;
  if (text == "avx512") return GatherMode::kAvx512;
  SM_REQUIRE(false, "unknown gather mode '", text,
             "' (expected auto|scalar|avx2|avx512)");
  return GatherMode::kAuto;
}

bool gather_mode_available(GatherMode mode) {
  switch (mode) {
    case GatherMode::kAvx2:
      return detail::avx2_gather_products() != nullptr;
    case GatherMode::kAvx512:
      return detail::avx512_gather_products() != nullptr;
    case GatherMode::kAuto:
    case GatherMode::kScalar:
      break;
  }
  return true;
}

/// Raw-pointer snapshot of the kernel's hot arrays, hoisted once per
/// solve so the backup helper below inlines into the sweep loops with
/// all base pointers in registers — matching the codegen of the legacy
/// path's inline free function (a member function reading through
/// this->mdp_ measurably did not).
struct BellmanKernelView {
  const ActionId* action_begin;   ///< Size num_states + 1.
  const std::uint32_t* tr_begin;  ///< Size num_actions + 1.
  const StateId* targets;
  const double* probs;
  const double* reward;

  explicit BellmanKernelView(const BellmanKernel& kernel)
      : action_begin(kernel.action_begin_.data()),
        tr_begin(kernel.tr_begin_.data()),
        targets(kernel.targets_.data()),
        probs(kernel.probs_.data()),
        reward(kernel.reward_.data()) {}
};

namespace {

/// Best Q-value over the actions of `s` against `values` and the fused
/// rewards; writes the arg-max (lowest index wins ties) to `best_action`.
/// Bit-identical to the legacy bellman_best on beta_rewards(beta).
inline double bellman_best(const BellmanKernelView& k, const double* values,
                           StateId s, ActionId* best_action) {
  double best = -std::numeric_limits<double>::infinity();
  ActionId best_a = kInvalidAction;
  const ActionId a_end = k.action_begin[s + 1];
  for (ActionId a = k.action_begin[s]; a < a_end; ++a) {
    double q = k.reward[a];
    const std::uint32_t t_end = k.tr_begin[a + 1];
    for (std::uint32_t i = k.tr_begin[a]; i < t_end; ++i) {
      q += k.probs[i] * values[k.targets[i]];
    }
    // Branchless arg-max: the update is data-dependent and mispredicts
    // on ~every other action, which on a 1-wide memory-bound sweep costs
    // more than the select. Identical semantics (strict >, ties keep the
    // earlier action) — byte-identical results.
    const bool better = q > best;
    best = better ? q : best;
    best_a = better ? a : best_a;
  }
  *best_action = best_a;
  return best;
}

/// bellman_best with a software-prefetched value stream: each iteration
/// hints the gather `dist` transitions ahead (clamped to the sweep's
/// transition window [*, t_limit) so the tail never reads out of
/// bounds). Prefetch is semantically a no-op — the arithmetic, and hence
/// the result, is byte-identical to bellman_best.
inline double bellman_best_prefetch(const BellmanKernelView& k,
                                    const double* values, StateId s,
                                    ActionId* best_action, std::uint32_t dist,
                                    std::uint32_t t_limit) {
  double best = -std::numeric_limits<double>::infinity();
  ActionId best_a = kInvalidAction;
  const ActionId a_end = k.action_begin[s + 1];
  for (ActionId a = k.action_begin[s]; a < a_end; ++a) {
    double q = k.reward[a];
    const std::uint32_t t_end = k.tr_begin[a + 1];
    for (std::uint32_t i = k.tr_begin[a]; i < t_end; ++i) {
      const std::uint32_t ahead = i + dist;
      __builtin_prefetch(&values[k.targets[ahead < t_limit ? ahead
                                                           : t_limit - 1]]);
      q += k.probs[i] * values[k.targets[i]];
    }
    // Branchless arg-max: the update is data-dependent and mispredicts
    // on ~every other action, which on a 1-wide memory-bound sweep costs
    // more than the select. Identical semantics (strict >, ties keep the
    // earlier action) — byte-identical results.
    const bool better = q > best;
    best = better ? q : best;
    best_a = better ? a : best_a;
  }
  *best_action = best_a;
  return best;
}

/// Best Q-value of `s` from pre-gathered products: prod[i - base] holds
/// probs[i]·values[targets[i]] for the tile starting at transition
/// `base`. The sum runs in the same scalar order as bellman_best and the
/// per-element products are computed by IEEE multiplication either way
/// (the solver TUs compile with -ffp-contract=off, so neither path fuses
/// into an FMA) — byte-identical results.
inline double bellman_best_products(const BellmanKernelView& k,
                                    const double* prod, std::uint32_t base,
                                    StateId s, ActionId* best_action) {
  double best = -std::numeric_limits<double>::infinity();
  ActionId best_a = kInvalidAction;
  const ActionId a_end = k.action_begin[s + 1];
  for (ActionId a = k.action_begin[s]; a < a_end; ++a) {
    double q = k.reward[a];
    const std::uint32_t t_end = k.tr_begin[a + 1];
    for (std::uint32_t i = k.tr_begin[a]; i < t_end; ++i) {
      q += prod[i - base];
    }
    // Branchless arg-max: the update is data-dependent and mispredicts
    // on ~every other action, which on a 1-wide memory-bound sweep costs
    // more than the select. Identical semantics (strict >, ties keep the
    // earlier action) — byte-identical results.
    const bool better = q > best;
    best = better ? q : best;
    best_a = better ? a : best_a;
  }
  *best_action = best_a;
  return best;
}

/// Synchronous backup over the contiguous state range [begin, end)
/// against the frozen `values`, routing the v[targets[i]] gather through
/// the plan: hardware gather-product tiles, the prefetched scalar loop,
/// or the plain loop. Calls per_state(s, bellman, best_action) for every
/// state in ascending order. All three routes are byte-identical.
template <typename PerState>
inline void backup_states(const BellmanKernelView& k, const double* values,
                          StateId begin, StateId end, const GatherPlan& plan,
                          double* prod, PerState&& per_state) {
  if (begin >= end) return;
  ActionId best_a = kInvalidAction;
  if (plan.fn != nullptr) {
    // Two-phase tiles: gather+multiply a run of whole states (~kGatherTile
    // transitions) into L1-resident scratch, then sum per state in scalar
    // program order. A state wider than a tile gets a tile of its own
    // (prod is sized for the widest state in the model).
    StateId s = begin;
    while (s < end) {
      const std::uint32_t t0 = k.tr_begin[k.action_begin[s]];
      StateId tile_end = s + 1;
      while (tile_end < end &&
             k.tr_begin[k.action_begin[tile_end + 1]] - t0 <= kGatherTile) {
        ++tile_end;
      }
      const std::uint32_t t1 = k.tr_begin[k.action_begin[tile_end]];
      plan.fn(k.probs + t0, k.targets + t0, values, prod, t1 - t0,
              plan.prefetch);
      for (StateId s2 = s; s2 < tile_end; ++s2) {
        const double q = bellman_best_products(k, prod, t0, s2, &best_a);
        per_state(s2, q, best_a);
      }
      s = tile_end;
    }
    return;
  }
  if (plan.prefetch > 0) {
    const std::uint32_t dist = static_cast<std::uint32_t>(plan.prefetch);
    const std::uint32_t t_limit = k.tr_begin[k.action_begin[end]];
    for (StateId s = begin; s < end; ++s) {
      const double q =
          bellman_best_prefetch(k, values, s, &best_a, dist, t_limit);
      per_state(s, q, best_a);
    }
    return;
  }
  for (StateId s = begin; s < end; ++s) {
    const double q = bellman_best(k, values, s, &best_a);
    per_state(s, q, best_a);
  }
}

}  // namespace

BellmanKernel::BellmanKernel(const Mdp& mdp) : mdp_(&mdp) {
  const StateId num_states = mdp.num_states();
  const ActionId num_actions = mdp.num_actions();
  action_begin_.resize(num_states + 1);
  for (StateId s = 0; s < num_states; ++s) {
    action_begin_[s] = mdp.action_begin(s);
  }
  action_begin_[num_states] = num_actions;
  tr_begin_.resize(num_actions + 1);
  targets_.resize(mdp.num_transitions());
  probs_.resize(mdp.num_transitions());
  adv_.resize(num_actions);
  tot_.resize(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    tr_begin_[a] = mdp.transition_begin(a);
    adv_[a] = mdp.expected_adversary(a);
    // Same sum Mdp::beta_reward evaluates, frozen once: reward(a, β)
    // reproduces beta_reward(a, β) bit for bit.
    tot_[a] = mdp.expected_adversary(a) + mdp.expected_honest(a);
    std::uint32_t i = mdp.transition_begin(a);
    for (const Transition& t : mdp.transitions(a)) {
      targets_[i] = t.target;
      probs_[i] = t.prob;
      ++i;
    }
  }
  tr_begin_[num_actions] = static_cast<std::uint32_t>(mdp.num_transitions());
  for (StateId s = 0; s < num_states; ++s) {
    const std::uint32_t width =
        tr_begin_[action_begin_[s + 1]] - tr_begin_[action_begin_[s]];
    max_state_transitions_ = std::max(max_state_transitions_, width);
  }
}

BellmanKernel::~BellmanKernel() = default;

std::size_t BellmanKernel::memory_bytes() const {
  return action_begin_.capacity() * sizeof(ActionId) +
         tr_begin_.capacity() * sizeof(std::uint32_t) +
         targets_.capacity() * sizeof(StateId) +
         probs_.capacity() * sizeof(double) +
         adv_.capacity() * sizeof(double) + tot_.capacity() * sizeof(double) +
         reward_.padded_size() * sizeof(double);
}

std::size_t BellmanKernel::bytes_per_sweep() const {
  // Per transition: target id + probability + the v[target] gather.
  // Per action: fused reward + CSR offset. Per state: action offset +
  // v[s] read + v_next[s] write. Compulsory traffic only — a lower bound
  // on actual traffic (gathers that miss cost whole cache lines), which
  // keeps the derived GB/s number conservative.
  return targets_.size() * (sizeof(StateId) + 2 * sizeof(double)) +
         adv_.size() * (sizeof(double) + sizeof(std::uint32_t)) +
         (action_begin_.size() - 1) * (sizeof(ActionId) + 2 * sizeof(double));
}

void BellmanKernel::fuse_rewards(double beta) const {
  const ActionId num_actions = static_cast<ActionId>(adv_.size());
  reward_.resize(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    reward_[a] = adv_[a] - beta * tot_[a];
  }
}

void BellmanKernel::init_values(const std::vector<double>* warm_start) const {
  const StateId n = mdp_->num_states();
  if (warm_start != nullptr) {
    // warm_start->size() is std::size_t, n is a 32-bit StateId; widen n
    // explicitly so the comparison is exact, and reject mismatches loudly
    // — silently cold-starting here would hide a caller passing values
    // from a different model.
    SM_REQUIRE(warm_start->size() == static_cast<std::size_t>(n),
               "warm-start vector has ", warm_start->size(),
               " entries but the model has ", n,
               " states; pass values from the same model or nullptr");
    v_.assign(*warm_start);
  } else {
    v_.assign(static_cast<std::size_t>(n), 0.0);
  }
  v_next_.assign(static_cast<std::size_t>(n), 0.0);
}

support::ThreadPool* BellmanKernel::sweep_pool(int threads) const {
  const StateId n = mdp_->num_states();
  int workers = support::resolve_thread_count(threads);
  workers = static_cast<int>(std::min<StateId>(
      static_cast<StateId>(workers),
      std::max<StateId>(1, n / kMinStatesPerWorker)));
  if (workers <= 1) return nullptr;
  // The pool outlives the solve: across the ~30 β-solves of one
  // analysis the resolved width is stable, so threads spawn exactly once.
  if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<support::ThreadPool>(workers);
  }
  return pool_.get();
}

void BellmanKernel::ensure_products(std::size_t num_chunks,
                                    bool gather_active) const {
  if (!gather_active) return;
  const std::size_t tile =
      std::max<std::size_t>(kGatherTile, max_state_transitions_);
  if (prod_.size() < num_chunks) prod_.resize(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) prod_[c].resize(tile);
}

MeanPayoffResult BellmanKernel::value_iteration(
    double beta, const MeanPayoffOptions& options,
    const std::vector<double>* warm_start, int threads,
    const KernelTuning& tuning) const {
  const StateId n = mdp_->num_states();
  check_options(options);
  const GatherPlan plan = resolve_plan(tuning);
  fuse_rewards(beta);
  init_values(warm_start);
  const BellmanKernelView kview(*this);

  MeanPayoffResult result;
  result.policy.assign(n, kInvalidAction);
  double* const v = v_.data();
  double* const v_next = v_next_.data();
  ActionId* const policy = result.policy.data();

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  const SweepRunner sweep(n, sweep_pool(threads));
  ensure_products(sweep.num_chunks(), plan.fn != nullptr);
  std::vector<double> chunk_lo(sweep.num_chunks());
  std::vector<double> chunk_hi(sweep.num_chunks());

  // Observe-only roofline bookkeeping: timing covers the backup sweep
  // alone (the bandwidth-bound phase), and the timer itself is skipped
  // when observability is off so the hot loop stays untouched.
  obs::Span span("mdp.value_iteration");
  const bool observe = obs::enabled();
  const double sweep_bytes = static_cast<double>(bytes_per_sweep());
  if (observe) mdp_metrics().bytes_per_sweep.set(
      static_cast<std::int64_t>(sweep_bytes));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    support::Timer sweep_timer;
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      double* const prod = plan.fn != nullptr ? prod_[c].data() : nullptr;
      backup_states(kview, v, begin, end, plan, prod,
                    [&](StateId s, double bellman, ActionId best_a) {
        // Lazy update = value iteration on the transformed (aperiodic)
        // MDP.
        const double updated = one_minus_tau * bellman + tau * v[s];
        const double delta = updated - v[s];
        if (delta < lo) lo = delta;
        if (delta > hi) hi = delta;
        v_next[s] = updated;
        policy[s] = best_a;
      });
      chunk_lo[c] = lo;
      chunk_hi[c] = hi;
    });
    if (observe) {
      const double elapsed = sweep_timer.seconds();
      MdpMetrics& metrics = mdp_metrics();
      metrics.sweeps.add(1);
      metrics.sweep_seconds.observe(elapsed);
      if (elapsed > 0.0) {
        metrics.achieved_gbps.observe(sweep_bytes / elapsed / 1e9);
      }
    }
    // min/max are exact under any grouping; combining the per-chunk
    // reductions in chunk order is for clarity, not correctness.
    double delta_lo = std::numeric_limits<double>::infinity();
    double delta_hi = -delta_lo;
    for (std::size_t c = 0; c < sweep.num_chunks(); ++c) {
      if (chunk_lo[c] < delta_lo) delta_lo = chunk_lo[c];
      if (chunk_hi[c] > delta_hi) delta_hi = chunk_hi[c];
    }
    result.iterations = iter;
    // Gain of the transformed MDP is (1−τ)·gain; undo the scaling.
    result.gain_lo = delta_lo / one_minus_tau;
    result.gain_hi = delta_hi / one_minus_tau;

    // Renormalize to keep values bounded; uniform shifts do not affect
    // Bellman differences.
    const double shift = v_next[0];
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) v[s] = v_next[s] - shift;
    });

    if (result.gain_hi - result.gain_lo < options.tol) {
      result.converged = true;
      break;
    }
  }

  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  v_.copy_to(&result.values);
  if (observe) {
    MdpMetrics& metrics = mdp_metrics();
    metrics.solves.add(1);
    metrics.iterations.add(static_cast<std::uint64_t>(result.iterations));
  }
  span.attr("states", serve::Json(static_cast<std::int64_t>(n)));
  span.attr("iterations", serve::Json(
      static_cast<std::int64_t>(result.iterations)));
  span.attr("converged", serve::Json(result.converged));
  // result.policy was captured by the final sweep: greedy w.r.t. the
  // vector that sweep backed up from (within tol of the returned values'
  // greedy policy once converged) — no extra extraction sweep needed.
  return result;
}

MeanPayoffResult BellmanKernel::gauss_seidel(
    double beta, const MeanPayoffOptions& options,
    const std::vector<double>* warm_start, int threads,
    const KernelTuning& tuning) const {
  const StateId n = mdp_->num_states();
  check_options(options);
  const GatherPlan plan = resolve_plan(tuning);
  fuse_rewards(beta);
  init_values(warm_start);
  const BellmanKernelView kview(*this);

  MeanPayoffResult result;
  result.policy.assign(n, kInvalidAction);
  double* const v = v_.data();
  double* const scratch = v_next_.data();
  ActionId* const policy = result.policy.data();

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  support::ThreadPool* pool = sweep_pool(threads);
  const SweepRunner sweep(n, pool);
  ensure_products(sweep.num_chunks(), plan.fn != nullptr);
  std::vector<double> chunk_lo(sweep.num_chunks());
  std::vector<double> chunk_hi(sweep.num_chunks());

  const bool red_black = tuning.sweep_mode == SweepMode::kRedBlack;
  // Red = even states, black = odd: the classic index-parity coloring,
  // deterministic and balanced. Phase j of a half-sweep owns state
  // 2j+offset; updates land in half_[j] and commit after a barrier, so
  // every read inside a phase sees the pre-phase vector — the iterate is
  // a pure function of (v, coloring), independent of thread count.
  const StateId n_red = red_black ? (n + 1) / 2 : 0;
  const StateId n_black = red_black ? n / 2 : 0;
  if (red_black) half_.resize(n_red);
  const SweepRunner red_sweep(n_red, red_black ? pool : nullptr);
  const SweepRunner black_sweep(n_black, red_black ? pool : nullptr);
  std::vector<double> red_change(red_sweep.num_chunks());
  std::vector<double> black_change(black_sweep.num_chunks());

  obs::Span span("mdp.gauss_seidel");
  if (obs::enabled()) {
    mdp_metrics().bytes_per_sweep.set(
        static_cast<std::int64_t>(bytes_per_sweep()));
  }

  // True when result.policy is greedy w.r.t. the vector the most recent
  // synchronous sweep read (no in-place sweep has moved v since).
  bool policy_fresh = false;

  // A synchronous Bellman sweep yields the classical arbitrary-v bounds
  // min/max (Tv − v) on the transformed gain; we use it as the certifier
  // (and it captures the greedy policy as a side effect). Valid for any
  // iterate, which is what lets the red-black path reuse it unchanged.
  const auto certify = [&] {
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      double* const prod = plan.fn != nullptr ? prod_[c].data() : nullptr;
      backup_states(kview, v, begin, end, plan, prod,
                    [&](StateId s, double bellman, ActionId best_a) {
        const double updated = one_minus_tau * bellman + tau * v[s];
        const double delta = updated - v[s];
        if (delta < lo) lo = delta;
        if (delta > hi) hi = delta;
        scratch[s] = updated;
        policy[s] = best_a;
      });
      chunk_lo[c] = lo;
      chunk_hi[c] = hi;
    });
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t c = 0; c < sweep.num_chunks(); ++c) {
      if (chunk_lo[c] < lo) lo = chunk_lo[c];
      if (chunk_hi[c] > hi) hi = chunk_hi[c];
    }
    const double shift = scratch[0];
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) v[s] = scratch[s] - shift;
    });
    policy_fresh = true;
    result.gain_lo = lo / one_minus_tau;
    result.gain_hi = hi / one_minus_tau;
    return result.gain_hi - result.gain_lo < options.tol;
  };

  int iter = 0;
  // In-place backups absorb the mean-payoff drift non-uniformly, so the
  // sweep subtracts the current gain estimate (GS on the Poisson equation;
  // see mdp/value_iteration.cpp for the full derivation).
  double gain_prime_estimate = 0.0;  // gain of the transformed MDP
  constexpr int kCertifyEvery = 16;
  int sweeps_since_certify = 0;

  // One colored half-sweep: compute phase reads the frozen v (products
  // of a half-sweep's states are scattered through the CSR arrays, so no
  // gather tiles here — plain scalar backups), commit phase scatters the
  // updates back after the barrier. Per-chunk max-|Δ| reductions combine
  // in chunk order (max is exact under any grouping).
  const auto half_sweep = [&](const SweepRunner& runner, StateId offset,
                              std::vector<double>& change_out,
                              double gain_estimate) {
    double* const updates = half_.data();
    runner.run([&](std::size_t c) {
      const auto [jb, je] = runner.bounds(c);
      double change = 0.0;
      ActionId scratch_action = kInvalidAction;
      for (StateId j = jb; j < je; ++j) {
        const StateId s = 2 * j + offset;
        const double updated =
            one_minus_tau * bellman_best(kview, v, s, &scratch_action) +
            tau * v[s] - gain_estimate;
        const double diff = std::fabs(updated - v[s]);
        if (diff > change) change = diff;
        updates[j] = updated;
      }
      change_out[c] = change;
    });
    runner.run([&](std::size_t c) {
      const auto [jb, je] = runner.bounds(c);
      for (StateId j = jb; j < je; ++j) v[2 * j + offset] = updates[j];
    });
  };

  // Prefetch window for the ordered serial sweep: the whole transition
  // stream (the sweep walks it front to back).
  const std::uint32_t t_all = kview.tr_begin[kview.action_begin[n]];
  const std::uint32_t dist =
      plan.prefetch > 0 ? static_cast<std::uint32_t>(plan.prefetch) : 0;

  ActionId scratch_action = kInvalidAction;
  while (iter < options.max_iterations) {
    ++iter;
    ++sweeps_since_certify;
    policy_fresh = false;
    double change = 0.0;
    if (red_black) {
      half_sweep(red_sweep, 0, red_change, gain_prime_estimate);
      half_sweep(black_sweep, 1, black_change, gain_prime_estimate);
      for (std::size_t c = 0; c < red_change.size(); ++c) {
        if (red_change[c] > change) change = red_change[c];
      }
      for (std::size_t c = 0; c < black_change.size(); ++c) {
        if (black_change[c] > change) change = black_change[c];
      }
      const double shift = v[0];
      sweep.run([&](std::size_t c) {
        const auto [begin, end] = sweep.bounds(c);
        for (StateId s = begin; s < end; ++s) v[s] -= shift;
      });
    } else {
      // The ordered in-place sweep is order-dependent by construction and
      // stays serial; prefetch is a pure hint, so the prefetched variant
      // keeps the byte-identical-to-legacy guarantee.
      for (StateId s = 0; s < n; ++s) {
        const double bellman =
            dist > 0
                ? bellman_best_prefetch(kview, v, s, &scratch_action, dist,
                                        t_all)
                : bellman_best(kview, v, s, &scratch_action);
        const double updated = one_minus_tau * bellman + tau * v[s] -
                               gain_prime_estimate;
        const double diff = std::fabs(updated - v[s]);
        if (diff > change) change = diff;
        v[s] = updated;  // in place: later states see this immediately
      }
      const double shift = v[0];
      for (StateId s = 0; s < n; ++s) v[s] -= shift;
    }

    if ((change < 0.25 * options.tol ||
         sweeps_since_certify >= kCertifyEvery) &&
        iter < options.max_iterations) {
      ++iter;
      sweeps_since_certify = 0;
      const bool done = certify();
      gain_prime_estimate =
          0.5 * (result.gain_lo + result.gain_hi) * one_minus_tau;
      if (done) {
        result.converged = true;
        break;
      }
    }
  }
  result.iterations = iter;
  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  v_.copy_to(&result.values);
  if (obs::enabled()) {
    MdpMetrics& metrics = mdp_metrics();
    metrics.solves.add(1);
    // Every Gauss–Seidel iteration is one full state sweep (in-place,
    // colored, or synchronous certification).
    metrics.sweeps.add(static_cast<std::uint64_t>(iter));
    metrics.iterations.add(static_cast<std::uint64_t>(iter));
  }
  span.attr("states", serve::Json(static_cast<std::int64_t>(n)));
  span.attr("iterations", serve::Json(static_cast<std::int64_t>(iter)));
  span.attr("converged", serve::Json(result.converged));
  if (!policy_fresh) {
    // Only reachable without convergence (the converged exit leaves the
    // final certifier's policy in place): extract against the current v
    // so the returned policy is at least self-consistent.
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) {
        bellman_best(kview, v, s, &result.policy[s]);
      }
    });
  }
  return result;
}

}  // namespace mdp
