#include "mdp/bellman_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace mdp {

namespace {

/// Solver metric handles, registered once. The namespace-scope reference
/// below forces registration at static-init time so a fresh process's
/// `metrics` scrape already lists the mdp family at zero.
struct MdpMetrics {
  obs::Counter& solves = obs::counter(
      "selfish_mdp_solves_total", "Mean-payoff solves completed");
  obs::Counter& sweeps = obs::counter(
      "selfish_mdp_sweeps_total", "Synchronous Bellman backup sweeps run");
  obs::Counter& iterations = obs::counter(
      "selfish_mdp_iterations_total", "Solver iterations across all solves");
  obs::Gauge& bytes_per_sweep = obs::gauge(
      "selfish_mdp_bytes_per_sweep",
      "Bytes streamed by one backup sweep of the most recent model");
  obs::Histogram& sweep_seconds = obs::histogram(
      "selfish_mdp_sweep_seconds", "Wall time of one parallel backup sweep",
      obs::exponential_buckets(1e-5, 4.0, 12));
  obs::Histogram& achieved_gbps = obs::histogram(
      "selfish_mdp_achieved_gbps",
      "Memory bandwidth achieved by backup sweeps (roofline number)",
      obs::exponential_buckets(0.25, 2.0, 10));
};

MdpMetrics& mdp_metrics() {
  static MdpMetrics metrics;
  return metrics;
}

[[maybe_unused]] const MdpMetrics& g_registered_mdp_metrics = mdp_metrics();

/// Below this many states per worker, extra threads cost more in barrier
/// latency than they save; the sweep scheduler caps the worker count
/// accordingly (outputs are thread-count invariant either way). Low
/// enough that the d=2 test/CI models still exercise the parallel path.
constexpr StateId kMinStatesPerWorker = 256;

/// Chunk partition + optional worker pool for the synchronous sweeps of
/// one solve. The pool lives for the whole solve, so per-sweep cost is a
/// submit/wait cycle, not a thread spawn/join. Chunks are contiguous
/// state ranges; several per worker so uneven action/transition counts
/// balance out.
class SweepRunner {
 public:
  SweepRunner(StateId n, int threads) {
    int workers = support::resolve_thread_count(threads);
    workers = static_cast<int>(std::min<StateId>(
        static_cast<StateId>(workers),
        std::max<StateId>(1, n / kMinStatesPerWorker)));
    const StateId num_chunks =
        workers > 1 ? static_cast<StateId>(workers) * 4 : 1;
    const StateId chunk =
        std::max<StateId>(1, (n + num_chunks - 1) / num_chunks);
    for (StateId begin = 0; begin < n; begin += chunk) {
      bounds_.emplace_back(begin, std::min<StateId>(begin + chunk, n));
    }
    if (bounds_.empty()) bounds_.emplace_back(0, 0);
    if (workers > 1) pool_ = std::make_unique<support::ThreadPool>(workers);
  }

  std::size_t num_chunks() const { return bounds_.size(); }
  std::pair<StateId, StateId> bounds(std::size_t c) const { return bounds_[c]; }

  /// Runs fn(chunk_index) over all chunks; returns after all finish.
  void run(const std::function<void(std::size_t)>& fn) const {
    if (pool_ == nullptr) {
      for (std::size_t c = 0; c < bounds_.size(); ++c) fn(c);
      return;
    }
    support::parallel_for(*pool_, bounds_.size(), fn);
  }

 private:
  std::vector<std::pair<StateId, StateId>> bounds_;
  std::unique_ptr<support::ThreadPool> pool_;
};

void check_options(const MeanPayoffOptions& options) {
  SM_REQUIRE(options.tau > 0.0 && options.tau < 1.0,
             "tau must lie strictly inside (0,1): ", options.tau);
  SM_REQUIRE(options.tol > 0.0, "tolerance must be positive");
  SM_REQUIRE(options.max_iterations >= 1,
             "need at least one iteration, got ", options.max_iterations);
}

}  // namespace

/// Raw-pointer snapshot of the kernel's hot arrays, hoisted once per
/// solve so the backup helper below inlines into the sweep loops with
/// all base pointers in registers — matching the codegen of the legacy
/// path's inline free function (a member function reading through
/// this->mdp_ measurably did not).
struct BellmanKernelView {
  const ActionId* action_begin;   ///< Size num_states + 1.
  const std::uint32_t* tr_begin;  ///< Size num_actions + 1.
  const StateId* targets;
  const double* probs;
  const double* reward;

  explicit BellmanKernelView(const BellmanKernel& kernel)
      : action_begin(kernel.action_begin_.data()),
        tr_begin(kernel.tr_begin_.data()),
        targets(kernel.targets_.data()),
        probs(kernel.probs_.data()),
        reward(kernel.reward_.data()) {}
};

namespace {

/// Best Q-value over the actions of `s` against `values` and the fused
/// rewards; writes the arg-max (lowest index wins ties) to `best_action`.
/// Bit-identical to the legacy bellman_best on beta_rewards(beta).
inline double bellman_best(const BellmanKernelView& k, const double* values,
                           StateId s, ActionId* best_action) {
  double best = -std::numeric_limits<double>::infinity();
  ActionId best_a = kInvalidAction;
  const ActionId a_end = k.action_begin[s + 1];
  for (ActionId a = k.action_begin[s]; a < a_end; ++a) {
    double q = k.reward[a];
    const std::uint32_t t_end = k.tr_begin[a + 1];
    for (std::uint32_t i = k.tr_begin[a]; i < t_end; ++i) {
      q += k.probs[i] * values[k.targets[i]];
    }
    if (q > best) {
      best = q;
      best_a = a;
    }
  }
  *best_action = best_a;
  return best;
}

}  // namespace

BellmanKernel::BellmanKernel(const Mdp& mdp) : mdp_(&mdp) {
  const StateId num_states = mdp.num_states();
  const ActionId num_actions = mdp.num_actions();
  action_begin_.resize(num_states + 1);
  for (StateId s = 0; s < num_states; ++s) {
    action_begin_[s] = mdp.action_begin(s);
  }
  action_begin_[num_states] = num_actions;
  tr_begin_.resize(num_actions + 1);
  targets_.resize(mdp.num_transitions());
  probs_.resize(mdp.num_transitions());
  adv_.resize(num_actions);
  tot_.resize(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    tr_begin_[a] = mdp.transition_begin(a);
    adv_[a] = mdp.expected_adversary(a);
    // Same sum Mdp::beta_reward evaluates, frozen once: reward(a, β)
    // reproduces beta_reward(a, β) bit for bit.
    tot_[a] = mdp.expected_adversary(a) + mdp.expected_honest(a);
    std::uint32_t i = mdp.transition_begin(a);
    for (const Transition& t : mdp.transitions(a)) {
      targets_[i] = t.target;
      probs_[i] = t.prob;
      ++i;
    }
  }
  tr_begin_[num_actions] = static_cast<std::uint32_t>(mdp.num_transitions());
}

std::size_t BellmanKernel::memory_bytes() const {
  return action_begin_.capacity() * sizeof(ActionId) +
         tr_begin_.capacity() * sizeof(std::uint32_t) +
         targets_.capacity() * sizeof(StateId) +
         probs_.capacity() * sizeof(double) +
         adv_.capacity() * sizeof(double) + tot_.capacity() * sizeof(double) +
         reward_.capacity() * sizeof(double);
}

std::size_t BellmanKernel::bytes_per_sweep() const {
  // Per transition: target id + probability + the v[target] gather.
  // Per action: fused reward + CSR offset. Per state: action offset +
  // v[s] read + v_next[s] write. Compulsory traffic only — a lower bound
  // on actual traffic (gathers that miss cost whole cache lines), which
  // keeps the derived GB/s number conservative.
  return targets_.size() * (sizeof(StateId) + 2 * sizeof(double)) +
         adv_.size() * (sizeof(double) + sizeof(std::uint32_t)) +
         (action_begin_.size() - 1) * (sizeof(ActionId) + 2 * sizeof(double));
}

void BellmanKernel::fuse_rewards(double beta) const {
  const ActionId num_actions = static_cast<ActionId>(adv_.size());
  reward_.resize(num_actions);
  for (ActionId a = 0; a < num_actions; ++a) {
    reward_[a] = adv_[a] - beta * tot_[a];
  }
}

MeanPayoffResult BellmanKernel::value_iteration(
    double beta, const MeanPayoffOptions& options,
    const std::vector<double>* warm_start, int threads) const {
  const StateId n = mdp_->num_states();
  check_options(options);
  fuse_rewards(beta);
  const BellmanKernelView kview(*this);

  MeanPayoffResult result;
  std::vector<double>& v = result.values;
  if (warm_start != nullptr && warm_start->size() == n) {
    v = *warm_start;
  } else {
    v.assign(n, 0.0);
  }
  std::vector<double> v_next(n, 0.0);
  result.policy.assign(n, kInvalidAction);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  const SweepRunner sweep(n, threads);
  std::vector<double> chunk_lo(sweep.num_chunks());
  std::vector<double> chunk_hi(sweep.num_chunks());

  // Observe-only roofline bookkeeping: timing covers the backup sweep
  // alone (the bandwidth-bound phase), and the timer itself is skipped
  // when observability is off so the hot loop stays untouched.
  obs::Span span("mdp.value_iteration");
  const bool observe = obs::enabled();
  const double sweep_bytes = static_cast<double>(bytes_per_sweep());
  if (observe) mdp_metrics().bytes_per_sweep.set(
      static_cast<std::int64_t>(sweep_bytes));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    support::Timer sweep_timer;
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (StateId s = begin; s < end; ++s) {
        const double bellman =
            bellman_best(kview, v.data(), s, &result.policy[s]);
        // Lazy update = value iteration on the transformed (aperiodic) MDP.
        const double updated = one_minus_tau * bellman + tau * v[s];
        const double delta = updated - v[s];
        if (delta < lo) lo = delta;
        if (delta > hi) hi = delta;
        v_next[s] = updated;
      }
      chunk_lo[c] = lo;
      chunk_hi[c] = hi;
    });
    if (observe) {
      const double elapsed = sweep_timer.seconds();
      MdpMetrics& metrics = mdp_metrics();
      metrics.sweeps.add(1);
      metrics.sweep_seconds.observe(elapsed);
      if (elapsed > 0.0) {
        metrics.achieved_gbps.observe(sweep_bytes / elapsed / 1e9);
      }
    }
    // min/max are exact under any grouping; combining the per-chunk
    // reductions in chunk order is for clarity, not correctness.
    double delta_lo = std::numeric_limits<double>::infinity();
    double delta_hi = -delta_lo;
    for (std::size_t c = 0; c < sweep.num_chunks(); ++c) {
      if (chunk_lo[c] < delta_lo) delta_lo = chunk_lo[c];
      if (chunk_hi[c] > delta_hi) delta_hi = chunk_hi[c];
    }
    result.iterations = iter;
    // Gain of the transformed MDP is (1−τ)·gain; undo the scaling.
    result.gain_lo = delta_lo / one_minus_tau;
    result.gain_hi = delta_hi / one_minus_tau;

    // Renormalize to keep values bounded; uniform shifts do not affect
    // Bellman differences.
    const double shift = v_next[0];
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) v[s] = v_next[s] - shift;
    });

    if (result.gain_hi - result.gain_lo < options.tol) {
      result.converged = true;
      break;
    }
  }

  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  if (observe) {
    MdpMetrics& metrics = mdp_metrics();
    metrics.solves.add(1);
    metrics.iterations.add(static_cast<std::uint64_t>(result.iterations));
  }
  span.attr("states", serve::Json(static_cast<std::int64_t>(n)));
  span.attr("iterations", serve::Json(
      static_cast<std::int64_t>(result.iterations)));
  span.attr("converged", serve::Json(result.converged));
  // result.policy was captured by the final sweep: greedy w.r.t. the
  // vector that sweep backed up from (within tol of the returned values'
  // greedy policy once converged) — no extra extraction sweep needed.
  return result;
}

MeanPayoffResult BellmanKernel::gauss_seidel(
    double beta, const MeanPayoffOptions& options,
    const std::vector<double>* warm_start, int threads) const {
  const StateId n = mdp_->num_states();
  check_options(options);
  fuse_rewards(beta);
  const BellmanKernelView kview(*this);

  MeanPayoffResult result;
  std::vector<double>& v = result.values;
  if (warm_start != nullptr && warm_start->size() == n) {
    v = *warm_start;
  } else {
    v.assign(n, 0.0);
  }
  result.policy.assign(n, kInvalidAction);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  const SweepRunner sweep(n, threads);
  std::vector<double> chunk_lo(sweep.num_chunks());
  std::vector<double> chunk_hi(sweep.num_chunks());

  obs::Span span("mdp.gauss_seidel");
  if (obs::enabled()) {
    mdp_metrics().bytes_per_sweep.set(
        static_cast<std::int64_t>(bytes_per_sweep()));
  }

  // True when result.policy is greedy w.r.t. the vector the most recent
  // synchronous sweep read (no in-place sweep has moved v since).
  bool policy_fresh = false;

  // A synchronous Bellman sweep yields the classical arbitrary-v bounds
  // min/max (Tv − v) on the transformed gain; we use it as the certifier
  // (and it captures the greedy policy as a side effect).
  std::vector<double> scratch(n, 0.0);
  const auto certify = [&] {
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (StateId s = begin; s < end; ++s) {
        const double updated =
            one_minus_tau *
                bellman_best(kview, v.data(), s, &result.policy[s]) +
            tau * v[s];
        const double delta = updated - v[s];
        if (delta < lo) lo = delta;
        if (delta > hi) hi = delta;
        scratch[s] = updated;
      }
      chunk_lo[c] = lo;
      chunk_hi[c] = hi;
    });
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (std::size_t c = 0; c < sweep.num_chunks(); ++c) {
      if (chunk_lo[c] < lo) lo = chunk_lo[c];
      if (chunk_hi[c] > hi) hi = chunk_hi[c];
    }
    const double shift = scratch[0];
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) v[s] = scratch[s] - shift;
    });
    policy_fresh = true;
    result.gain_lo = lo / one_minus_tau;
    result.gain_hi = hi / one_minus_tau;
    return result.gain_hi - result.gain_lo < options.tol;
  };

  int iter = 0;
  // In-place backups absorb the mean-payoff drift non-uniformly, so the
  // sweep subtracts the current gain estimate (GS on the Poisson equation;
  // see mdp/value_iteration.cpp for the full derivation). The in-place
  // sweep is order-dependent by construction and stays serial.
  double gain_prime_estimate = 0.0;  // gain of the transformed MDP
  constexpr int kCertifyEvery = 16;
  int sweeps_since_certify = 0;
  ActionId scratch_action = kInvalidAction;
  while (iter < options.max_iterations) {
    ++iter;
    ++sweeps_since_certify;
    policy_fresh = false;
    double change = 0.0;
    for (StateId s = 0; s < n; ++s) {
      const double updated =
          one_minus_tau * bellman_best(kview, v.data(), s, &scratch_action) +
          tau * v[s] - gain_prime_estimate;
      const double diff = std::fabs(updated - v[s]);
      if (diff > change) change = diff;
      v[s] = updated;  // in place: later states see this immediately
    }
    const double shift = v[0];
    for (StateId s = 0; s < n; ++s) v[s] -= shift;

    if ((change < 0.25 * options.tol ||
         sweeps_since_certify >= kCertifyEvery) &&
        iter < options.max_iterations) {
      ++iter;
      sweeps_since_certify = 0;
      const bool done = certify();
      gain_prime_estimate =
          0.5 * (result.gain_lo + result.gain_hi) * one_minus_tau;
      if (done) {
        result.converged = true;
        break;
      }
    }
  }
  result.iterations = iter;
  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  if (obs::enabled()) {
    MdpMetrics& metrics = mdp_metrics();
    metrics.solves.add(1);
    // Every Gauss–Seidel iteration is one full state sweep (in-place or
    // synchronous certification).
    metrics.sweeps.add(static_cast<std::uint64_t>(iter));
    metrics.iterations.add(static_cast<std::uint64_t>(iter));
  }
  span.attr("states", serve::Json(static_cast<std::int64_t>(n)));
  span.attr("iterations", serve::Json(static_cast<std::int64_t>(iter)));
  span.attr("converged", serve::Json(result.converged));
  if (!policy_fresh) {
    // Only reachable without convergence (the converged exit leaves the
    // final certifier's policy in place): extract against the current v
    // so the returned policy is at least self-consistent.
    sweep.run([&](std::size_t c) {
      const auto [begin, end] = sweep.bounds(c);
      for (StateId s = begin; s < end; ++s) {
        bellman_best(kview, v.data(), s, &result.policy[s]);
      }
    });
  }
  return result;
}

}  // namespace mdp
