// Bandwidth-optimized, thread-parallel Bellman backup kernel.
//
// The mean-payoff solvers spend essentially all of their time in the
// Bellman backup loop. On the AoS `Transition` array every inner-loop
// iteration drags a 24-byte struct (target + prob + unused RewardCounts)
// through cache; the kernel re-indexes the transition data once per Mdp
// into flat structure-of-arrays streams — `targets[]` (4 B) and `probs[]`
// (8 B) in the same CSR order — halving the bytes touched per transition.
// The β-parameterized reward r_β(a) = adv(a) − β·tot(a) is rendered from
// the precomputed `adv[]`/`tot[]` bases into a kernel-owned scratch once
// per solve, so Algorithm 1's bisection allocates no reward vector per
// step (the seed allocated one per bisection step).
//
// On top of the SoA layout, the hot gather v[targets[i]] — the one
// latency-bound access in the sweep — is serviced three ways, selected
// by `KernelTuning`: a software-prefetched scalar loop, an AVX2 hardware
// gather, or an AVX-512 gather (the ISA paths live in their own
// translation units behind runtime CPU dispatch; see bellman_gather.hpp).
// The SIMD paths vectorize only the element-wise products
// probs[i]·v[targets[i]] and keep every summation in scalar program
// order, so all gather modes produce byte-identical results — the
// scalar fallback remains the always-tested reference.
//
// Determinism contract: synchronous sweeps (value iteration, the
// Gauss–Seidel certifier, policy extraction) are parallelized over
// contiguous state chunks. Every state's backup reads only the previous
// sweep's vector, per-chunk min/max delta reductions are combined in
// chunk order, and min/max are exact regardless of grouping — so results
// are bit-identical at any thread count and at any gather mode, and
// bit-identical to the legacy AoS path in mdp/value_iteration.cpp (which
// stays as the reference implementation; test_mdp_kernel pins both
// equivalences). Gauss–Seidel's in-place sweeps are order-dependent:
// under the default SweepMode::kOrdered they stay serial (and byte-
// identical to the legacy path); SweepMode::kRedBlack replaces them with
// a two-phase state-colored sweep whose phases parallelize — a
// *different* certified iterate path with its own golden pins (still
// thread-count invariant), guarded by the engine::kCodeVersionSalt bump.
//
// Value/scratch buffers are 64-byte aligned and chunk boundaries are
// rounded to cache-line multiples, so concurrent chunk writes never
// share a line. The worker pool and all scratch live for the kernel's
// lifetime: a 30-step bisection through analysis::analyze spawns
// threads once and allocates per-solve nothing after the first solve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdp/mdp.hpp"
#include "mdp/value_iteration.hpp"
#include "support/aligned.hpp"

namespace support {
class ThreadPool;
}  // namespace support

namespace mdp {

/// Ordering of Gauss–Seidel's in-place sweeps. `kOrdered` is the
/// certified reference: strictly serial ascending-state sweeps,
/// byte-identical to the legacy AoS path. `kRedBlack` colors states by
/// index parity and runs two synchronous half-sweeps (red reads the
/// frozen vector, black additionally sees the new red values), which
/// parallelizes the previously-serial iterations but changes the iterate
/// path — it ships with its own golden pins and is off by default.
/// Value iteration's sweeps are synchronous (Jacobi) and have no
/// ordering; the mode only affects the Gauss–Seidel solver.
enum class SweepMode : std::uint8_t { kOrdered = 0, kRedBlack = 1 };

/// How the sweep services the v[targets[i]] gather. `kAuto` picks the
/// faster of the portable loop and the widest ISA the binary was
/// compiled with AND the running CPU reports (AVX-512 > AVX2), decided
/// once per process by a ~1 ms calibration probe — hardware gathers are
/// microcoded on several x86 implementations (and most virtualized
/// CPUs), where they lose to plain scalar loads, so auto measures
/// instead of assuming. `kScalar` forces the portable loop. The explicit
/// ISA modes reject at solve time when unavailable — probe with
/// gather_mode_available() first. Every mode is byte-identical.
enum class GatherMode : std::uint8_t {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Default software-prefetch lookahead, in transitions (0 = off, the
/// default). Measured on the reference host, the clamped per-transition
/// prefetch costs more in issue bandwidth than it hides in latency — the
/// models average ~1.5 transitions per action, so the hardware
/// prefetcher and the out-of-order window already cover the stream, and
/// the branchless sweep loop is throughput-, not latency-, limited. The
/// knob stays for latency-bound hosts; any distance is byte-identical.
inline constexpr int kDefaultPrefetchDistance = 0;

/// Speed knobs for one solve. Every combination returns byte-identical
/// results except sweep_mode, which selects between the two certified
/// Gauss–Seidel iterate paths (and therefore participates in engine job
/// identity — see engine::solver_options_id).
struct KernelTuning {
  SweepMode sweep_mode = SweepMode::kOrdered;
  GatherMode gather = GatherMode::kAuto;
  int prefetch_distance = kDefaultPrefetchDistance;
};

SweepMode parse_sweep_mode(const std::string& text);
const char* to_string(SweepMode mode);
GatherMode parse_gather_mode(const std::string& text);
const char* to_string(GatherMode mode);

/// True when the mode can run here: compiled in (the -m flags are
/// per-TU, probed at configure time) and supported by the running CPU.
/// kAuto and kScalar are always available.
bool gather_mode_available(GatherMode mode);

class BellmanKernel {
 public:
  /// Builds the SoA view. The Mdp must outlive the kernel.
  explicit BellmanKernel(const Mdp& mdp);

  // Out of line: the pool member's type is only forward-declared here.
  ~BellmanKernel();

  const Mdp& mdp() const { return *mdp_; }

  /// Fused expected immediate reward of an action under r_β — the same
  /// arithmetic as Mdp::beta_reward (tot is precomputed as adv + hon).
  double reward(ActionId a, double beta) const {
    return adv_[a] - beta * tot_[a];
  }

  /// Relative value iteration on the SoA view; semantics and returned
  /// numbers are identical to mdp::value_iteration on the reward vector
  /// Mdp::beta_rewards(beta). `threads` > 1 fans each synchronous sweep
  /// over state chunks (0 = all hardware threads); the result depends on
  /// neither the thread count nor the gather tuning. A non-null
  /// `warm_start` must match the model's state count exactly — a
  /// mismatched vector is rejected (it would otherwise silently
  /// cold-start and hide a caller bug). A solve must not run
  /// concurrently with another solve on the same kernel instance.
  MeanPayoffResult value_iteration(double beta,
                                   const MeanPayoffOptions& options = {},
                                   const std::vector<double>* warm_start =
                                       nullptr,
                                   int threads = 1,
                                   const KernelTuning& tuning = {}) const;

  /// Gauss–Seidel variant. Under SweepMode::kOrdered it is identical to
  /// mdp::gauss_seidel_value_iteration on the same reward vector
  /// (in-place sweeps serial, certification sweeps parallel); under
  /// SweepMode::kRedBlack the in-place sweeps become two-phase colored
  /// half-sweeps that parallelize — a distinct certified iterate path.
  MeanPayoffResult gauss_seidel(double beta,
                                const MeanPayoffOptions& options = {},
                                const std::vector<double>* warm_start =
                                    nullptr,
                                int threads = 1,
                                const KernelTuning& tuning = {}) const;

  /// Heap footprint of the SoA arrays (on top of the Mdp's own storage).
  std::size_t memory_bytes() const;

  /// Bytes one synchronous backup sweep streams through memory: the flat
  /// transition arrays plus the value gather per transition, the reward
  /// and offset loads per action, and the value read + write per state.
  /// Dividing by measured per-sweep wall time gives the achieved GB/s the
  /// ROADMAP's roofline item asks for (exported as
  /// selfish_mdp_bytes_per_sweep / selfish_mdp_achieved_gbps).
  std::size_t bytes_per_sweep() const;

 private:
  friend struct BellmanKernelView;

  /// Renders r_β into the solve-local scratch `reward_`, once per solve.
  /// The models average only ~1.5 transitions per action, so recomputing
  /// adv − β·tot inside every sweep would cost ~40% extra arithmetic;
  /// rendering once keeps the inner loop at one reward load (like the
  /// legacy path) while still allocating nothing per bisection step —
  /// the scratch persists across the solves of one analysis.
  void fuse_rewards(double beta) const;

  /// Copies warm_start (validated) or zeros into the aligned iterate
  /// buffer v_ and sizes the companion scratch.
  void init_values(const std::vector<double>* warm_start) const;

  /// Returns the pool to sweep with: `threads` resolved, capped so no
  /// worker gets a trivially small state range, reusing the cached pool
  /// when the resolved width matches (the common case across the solves
  /// of one analysis). nullptr means run serial.
  support::ThreadPool* sweep_pool(int threads) const;

  /// Sizes the per-chunk gather-product scratch (no-op in scalar mode).
  void ensure_products(std::size_t num_chunks, bool gather_active) const;

  const Mdp* mdp_;
  // The two CSR offset ladders are copied (not referenced) so the whole
  // hot path reads from four dense kernel-owned arrays.
  std::vector<ActionId> action_begin_;   ///< Size num_states + 1.
  std::vector<std::uint32_t> tr_begin_;  ///< Size num_actions + 1.
  std::vector<StateId> targets_;  ///< Flat transition targets (CSR order).
  std::vector<double> probs_;     ///< Flat transition probabilities.
  std::vector<double> adv_;       ///< E[adversary counter] per action.
  std::vector<double> tot_;       ///< E[adversary + honest] per action.
  std::uint32_t max_state_transitions_ = 0;  ///< Widest single state.

  // Solve-lifetime scratch (mutable: solves are logically const). All
  // value-indexed buffers are 64-byte aligned with cache-line padding so
  // rounded chunk edges never false-share and SIMD tails never fault.
  mutable support::AlignedDoubles reward_;  ///< r_β of the current solve.
  mutable support::AlignedDoubles v_;       ///< Current iterate.
  mutable support::AlignedDoubles v_next_;  ///< Sweep target / certifier.
  mutable support::AlignedDoubles half_;    ///< Red-black phase updates.
  mutable std::vector<support::AlignedDoubles> prod_;  ///< Per-chunk tiles.
  mutable std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace mdp
