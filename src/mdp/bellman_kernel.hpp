// Bandwidth-optimized, thread-parallel Bellman backup kernel.
//
// The mean-payoff solvers spend essentially all of their time in the
// Bellman backup loop. On the AoS `Transition` array every inner-loop
// iteration drags a 24-byte struct (target + prob + unused RewardCounts)
// through cache; the kernel re-indexes the transition data once per Mdp
// into flat structure-of-arrays streams — `targets[]` (4 B) and `probs[]`
// (8 B) in the same CSR order — halving the bytes touched per transition.
// The β-parameterized reward r_β(a) = adv(a) − β·tot(a) is rendered from
// the precomputed `adv[]`/`tot[]` bases into a kernel-owned scratch once
// per solve, so Algorithm 1's bisection allocates no reward vector per
// step (the seed allocated one per bisection step).
//
// Determinism contract: synchronous sweeps (value iteration, the
// Gauss–Seidel certifier, policy extraction) are parallelized over
// contiguous state chunks. Every state's backup reads only the previous
// sweep's vector, per-chunk min/max delta reductions are combined in
// chunk order, and min/max are exact regardless of grouping — so results
// are bit-identical at any thread count, and bit-identical to the legacy
// AoS path in mdp/value_iteration.cpp (which stays as the reference
// implementation; test_mdp_kernel pins both equivalences). Gauss–Seidel's
// in-place sweeps are inherently sequential and stay serial; only its
// synchronous certification sweeps fan out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mdp/mdp.hpp"
#include "mdp/value_iteration.hpp"

namespace mdp {

class BellmanKernel {
 public:
  /// Builds the SoA view. The Mdp must outlive the kernel.
  explicit BellmanKernel(const Mdp& mdp);

  const Mdp& mdp() const { return *mdp_; }

  /// Fused expected immediate reward of an action under r_β — the same
  /// arithmetic as Mdp::beta_reward (tot is precomputed as adv + hon).
  double reward(ActionId a, double beta) const {
    return adv_[a] - beta * tot_[a];
  }

  /// Relative value iteration on the SoA view; semantics and returned
  /// numbers are identical to mdp::value_iteration on the reward vector
  /// Mdp::beta_rewards(beta). `threads` > 1 fans each synchronous sweep
  /// over state chunks (0 = all hardware threads); the result does not
  /// depend on the thread count. A solve must not run concurrently with
  /// another solve on the same kernel instance.
  MeanPayoffResult value_iteration(
      double beta, const MeanPayoffOptions& options = {},
      const std::vector<double>* warm_start = nullptr, int threads = 1) const;

  /// Gauss–Seidel variant, identical to mdp::gauss_seidel_value_iteration
  /// on the same reward vector. In-place sweeps stay serial; the
  /// synchronous certification sweeps and policy extraction parallelize.
  MeanPayoffResult gauss_seidel(
      double beta, const MeanPayoffOptions& options = {},
      const std::vector<double>* warm_start = nullptr, int threads = 1) const;

  /// Heap footprint of the SoA arrays (on top of the Mdp's own storage).
  std::size_t memory_bytes() const;

  /// Bytes one synchronous backup sweep streams through memory: the flat
  /// transition arrays plus the value gather per transition, the reward
  /// and offset loads per action, and the value read + write per state.
  /// Dividing by measured per-sweep wall time gives the achieved GB/s the
  /// ROADMAP's roofline item asks for (exported as
  /// selfish_mdp_bytes_per_sweep / selfish_mdp_achieved_gbps).
  std::size_t bytes_per_sweep() const;

 private:
  friend struct BellmanKernelView;

  /// Renders r_β into the solve-local scratch `reward_`, once per solve.
  /// The models average only ~1.5 transitions per action, so recomputing
  /// adv − β·tot inside every sweep would cost ~40% extra arithmetic;
  /// rendering once keeps the inner loop at one reward load (like the
  /// legacy path) while still allocating nothing per bisection step —
  /// the scratch persists across the solves of one analysis.
  void fuse_rewards(double beta) const;

  const Mdp* mdp_;
  // The two CSR offset ladders are copied (not referenced) so the whole
  // hot path reads from four dense kernel-owned arrays.
  std::vector<ActionId> action_begin_;   ///< Size num_states + 1.
  std::vector<std::uint32_t> tr_begin_;  ///< Size num_actions + 1.
  std::vector<StateId> targets_;  ///< Flat transition targets (CSR order).
  std::vector<double> probs_;     ///< Flat transition probabilities.
  std::vector<double> adv_;       ///< E[adversary counter] per action.
  std::vector<double> tot_;       ///< E[adversary + honest] per action.
  mutable std::vector<double> reward_;  ///< r_β of the current solve.
};

}  // namespace mdp
