// Immutable sparse finite Markov decision process.
//
// Storage is CSR-like on two levels: states index a contiguous range of
// actions, and each action indexes a contiguous range of transitions.
// Models are constructed through mdp::MdpBuilder (builder.hpp), which
// validates stochasticity before freezing the model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mdp/types.hpp"

namespace mdp {

class MdpBuilder;

/// One outgoing probabilistic edge of an action.
struct Transition {
  StateId target = kInvalidState;
  double prob = 0.0;
  RewardCounts counts;
};

/// A finite MDP with per-transition finalization counters.
///
/// Invariants (established by MdpBuilder):
///  * every state has at least one action;
///  * every action has at least one transition;
///  * each action's transition probabilities sum to 1 (within 1e-9);
///  * all transition targets are valid states.
class Mdp {
 public:
  StateId num_states() const { return static_cast<StateId>(action_begin_.size() - 1); }
  ActionId num_actions() const { return static_cast<ActionId>(tr_begin_.size() - 1); }
  std::size_t num_transitions() const { return transitions_.size(); }
  StateId initial_state() const { return initial_; }

  /// Global indices of the actions available in `s`: [begin, end).
  ActionId action_begin(StateId s) const { return action_begin_[s]; }
  ActionId action_end(StateId s) const { return action_begin_[s + 1]; }
  std::uint32_t num_actions_of(StateId s) const {
    return action_end(s) - action_begin(s);
  }

  /// The state an action belongs to.
  StateId action_state(ActionId a) const { return action_state_[a]; }

  /// Model-specific opaque label attached to the action (e.g. an encoded
  /// selfish-mining action); purely for strategy readout.
  std::uint32_t action_label(ActionId a) const { return action_label_[a]; }

  /// The probabilistic successor distribution of an action.
  std::span<const Transition> transitions(ActionId a) const {
    return {transitions_.data() + tr_begin_[a],
            transitions_.data() + tr_begin_[a + 1]};
  }

  /// Flat CSR position of an action's transitions: [begin, end) into the
  /// global transition order (the order transitions(a) spans walk). Used
  /// by structure-of-arrays views (mdp::BellmanKernel) that re-index the
  /// transition data without the 24-byte AoS stride.
  std::uint32_t transition_begin(ActionId a) const { return tr_begin_[a]; }
  std::uint32_t transition_end(ActionId a) const { return tr_begin_[a + 1]; }

  /// Expected finalized-block counters of an action:
  /// Σ_t prob(t)·counts(t), precomputed at build time.
  double expected_adversary(ActionId a) const { return exp_adv_[a]; }
  double expected_honest(ActionId a) const { return exp_hon_[a]; }

  /// Expected immediate reward of an action under r_β.
  double beta_reward(ActionId a, double beta) const {
    return exp_adv_[a] - beta * (exp_adv_[a] + exp_hon_[a]);
  }

  /// Expected immediate rewards of all actions under r_β, in action order.
  std::vector<double> beta_rewards(double beta) const;

  /// Same, written into `out` (resized to num_actions). Lets callers that
  /// solve for many β values (Algorithm 1's bisection) reuse one buffer
  /// instead of allocating a fresh vector per step.
  void beta_rewards_into(double beta, std::vector<double>& out) const;

  /// Approximate heap footprint, for state-space reporting.
  std::size_t memory_bytes() const;

 private:
  friend class MdpBuilder;
  Mdp() = default;

  std::vector<ActionId> action_begin_;      // size: num_states + 1
  std::vector<StateId> action_state_;       // size: num_actions
  std::vector<std::uint32_t> action_label_; // size: num_actions
  std::vector<std::uint32_t> tr_begin_;     // size: num_actions + 1
  std::vector<Transition> transitions_;
  std::vector<double> exp_adv_;             // size: num_actions
  std::vector<double> exp_hon_;             // size: num_actions
  StateId initial_ = 0;
};

}  // namespace mdp
