// Runtime-dispatched gather kernels for the Bellman backup product pass.
//
// The only data-parallel work in a backup that can vectorize without
// changing results is the element-wise product probs[i] * v[targets[i]]:
// IEEE multiplication is independent per element, so computing the
// products 4 or 8 at a time with hardware gathers and then summing them
// in the original scalar order is byte-identical to the all-scalar loop.
// (The sums themselves must NOT vectorize — a reassociated reduction
// rounds differently — and the solver TUs compile with -ffp-contract=off
// so no path contracts the multiply into an FMA.)
//
// Each ISA variant lives in its own translation unit compiled with just
// that TU's -m flags (see CMakeLists.txt); this header stays ISA-free so
// every includer builds on the portable baseline. The factories return
// nullptr when the variant was not compiled in OR the running CPU lacks
// the feature, giving one uniform "unavailable" answer for both cases.
#pragma once

#include <cstdint>

#include "mdp/mdp.hpp"

namespace mdp::detail {

/// Writes out[i] = probs[i] * values[targets[i]] for i in [0, count).
/// `out` is 64-byte aligned with capacity rounded up to 8 doubles, so
/// implementations may store full vectors over the tail. `prefetch` is
/// the software-prefetch lookahead in transitions (0 = off); scalar honors
/// it, hardware-gather variants may ignore it.
using GatherProductsFn = void (*)(const double* probs, const StateId* targets,
                                  const double* values, double* out,
                                  std::uint32_t count, int prefetch);

/// Portable baseline, always available.
void scalar_gather_products(const double* probs, const StateId* targets,
                            const double* values, double* out,
                            std::uint32_t count, int prefetch);

/// AVX2 vgatherdpd path: non-null iff compiled in and supported by the
/// running CPU.
GatherProductsFn avx2_gather_products();

/// AVX-512F vgatherdpd path (8-wide): same availability contract.
GatherProductsFn avx512_gather_products();

}  // namespace mdp::detail
