// Binary (de)serialization of built MDPs.
//
// Large configurations (d=4, f=2 is ~1.2M states / 10M transitions) take
// longer to enumerate than small ones take to solve; caching the frozen
// model lets repeated analyses (β sweeps at different ε, simulator runs,
// exports) skip reconstruction. The format is a versioned, size-prefixed
// raw dump of the CSR arrays — a same-machine cache, not an interchange
// format (native endianness; validated by magic + version + structural
// checks on load).
#pragma once

#include <iosfwd>

#include "mdp/mdp.hpp"

namespace mdp {

/// Writes `m` to a binary stream (open in std::ios::binary).
void save_binary(const Mdp& m, std::ostream& out);

/// Reads a model written by save_binary. Throws support::InvalidArgument
/// on a bad magic/version or a structurally inconsistent payload.
Mdp load_binary(std::istream& in);

}  // namespace mdp
