// Portable baseline of the gather-product contract. The kernel's fused
// scalar loop does not route through this function (it folds the product
// into the per-action sum directly); this exists so tests can exercise
// the GatherProductsFn contract itself and diff the ISA variants against
// a reference with identical semantics.
#include "mdp/bellman_gather.hpp"

namespace mdp::detail {

void scalar_gather_products(const double* probs, const StateId* targets,
                            const double* values, double* out,
                            std::uint32_t count, int prefetch) {
  if (count == 0) return;
  if (prefetch > 0) {
    const std::uint32_t dist = static_cast<std::uint32_t>(prefetch);
    const std::uint32_t last = count - 1;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t ahead = i + dist;
      __builtin_prefetch(&values[targets[ahead < count ? ahead : last]]);
      out[i] = probs[i] * values[targets[i]];
    }
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i] = probs[i] * values[targets[i]];
  }
}

}  // namespace mdp::detail
