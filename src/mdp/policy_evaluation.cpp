#include "mdp/policy_evaluation.hpp"

#include <limits>

#include "support/check.hpp"

namespace mdp {

PolicyEvaluation evaluate_policy_gain(const Mdp& mdp, const Policy& policy,
                                      const std::vector<double>& action_reward,
                                      const MeanPayoffOptions& options,
                                      const std::vector<double>* warm_start) {
  validate_policy(mdp, policy);
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size mismatch");
  SM_REQUIRE(options.tau > 0.0 && options.tau < 1.0, "tau out of range");
  const StateId n = mdp.num_states();

  PolicyEvaluation result;
  std::vector<double>& v = result.bias;
  if (warm_start != nullptr && warm_start->size() == n) {
    v = *warm_start;
  } else {
    v.assign(n, 0.0);
  }
  std::vector<double> v_next(n, 0.0);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double delta_lo = std::numeric_limits<double>::infinity();
    double delta_hi = -std::numeric_limits<double>::infinity();
    for (StateId s = 0; s < n; ++s) {
      const ActionId a = policy[s];
      double q = action_reward[a];
      for (const Transition& t : mdp.transitions(a)) {
        q += t.prob * v[t.target];
      }
      const double updated = one_minus_tau * q + tau * v[s];
      const double delta = updated - v[s];
      if (delta < delta_lo) delta_lo = delta;
      if (delta > delta_hi) delta_hi = delta;
      v_next[s] = updated;
    }
    result.iterations = iter;
    result.gain_lo = delta_lo / one_minus_tau;
    result.gain_hi = delta_hi / one_minus_tau;

    const double shift = v_next[0];
    for (StateId s = 0; s < n; ++s) v[s] = v_next[s] - shift;

    if (result.gain_hi - result.gain_lo < options.tol) {
      result.converged = true;
      break;
    }
  }
  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  return result;
}

CounterRates evaluate_policy_counters(const Mdp& mdp, const Policy& policy,
                                      const StationaryOptions& options) {
  const StationaryResult st = stationary_distribution(mdp, policy, options);
  SM_ENSURE(st.converged, "stationary distribution did not converge");
  CounterRates rates;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    const ActionId a = policy[s];
    rates.adversary += st.distribution[s] * mdp.expected_adversary(a);
    rates.honest += st.distribution[s] * mdp.expected_honest(a);
  }
  return rates;
}

}  // namespace mdp
