// Shared identifiers and small value types for the MDP subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace mdp {

/// Dense state index within one model.
using StateId = std::uint32_t;

/// Global action index (CSR position across all states of one model).
using ActionId = std::uint32_t;

inline constexpr StateId kInvalidState =
    std::numeric_limits<StateId>::max();
inline constexpr ActionId kInvalidAction =
    std::numeric_limits<ActionId>::max();

/// Number of blocks finalized on a transition, split by owner.
///
/// The selfish-mining analysis never needs the reward *value* at model
/// construction time: the β-parameterized reward r_β = (1−β)·adversary −
/// β·honest is derived from these counters on demand, so one model serves
/// the entire binary search of Algorithm 1.
struct RewardCounts {
  std::uint16_t adversary = 0;
  std::uint16_t honest = 0;

  friend bool operator==(const RewardCounts&, const RewardCounts&) = default;
};

}  // namespace mdp
