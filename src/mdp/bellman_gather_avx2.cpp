// AVX2 gather-product kernel. This TU (alone) is compiled with -mavx2
// when the compiler supports the flag; the factory returns nullptr unless
// the running CPU also reports AVX2, so linking this in never executes an
// illegal instruction on older hardware.
#include "mdp/bellman_gather.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mdp::detail {

#if defined(__AVX2__)

namespace {

void avx2_impl(const double* probs, const StateId* targets,
               const double* values, double* out, std::uint32_t count,
               int /*prefetch*/) {
  static_assert(sizeof(StateId) == 4, "vgatherdpd wants 32-bit indices");
  std::uint32_t i = 0;
  // out has 8-double padded capacity, so a full 4-lane store at the last
  // partial group stays inside the allocation; the sum pass only reads
  // the first `count` products.
  for (; i + 4 <= count; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(targets + i));
    const __m256d gathered = _mm256_i32gather_pd(values, idx, 8);
    const __m256d prod = _mm256_mul_pd(_mm256_loadu_pd(probs + i), gathered);
    _mm256_storeu_pd(out + i, prod);
  }
  for (; i < count; ++i) {
    out[i] = probs[i] * values[targets[i]];
  }
}

}  // namespace

GatherProductsFn avx2_gather_products() {
  return __builtin_cpu_supports("avx2") ? &avx2_impl : nullptr;
}

#else  // !defined(__AVX2__)

GatherProductsFn avx2_gather_products() { return nullptr; }

#endif

}  // namespace mdp::detail
