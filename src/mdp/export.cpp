#include "mdp/export.hpp"

#include <ostream>

#include "support/check.hpp"
#include "support/csv.hpp"

namespace mdp {

void export_tra(const Mdp& mdp, std::ostream& out) {
  out << "mdp\n";
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    std::uint32_t offset = 0;
    for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s);
         ++a, ++offset) {
      for (const Transition& t : mdp.transitions(a)) {
        out << s << ' ' << offset << ' ' << t.target << ' '
            << support::format_double(t.prob, 17) << '\n';
      }
    }
  }
}

void export_lab(const Mdp& mdp, std::ostream& out) {
  out << "#DECLARATION\ninit\n#END\n";
  out << mdp.initial_state() << " init\n";
}

void export_rew(const Mdp& mdp, double beta, std::ostream& out) {
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    std::uint32_t offset = 0;
    for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s);
         ++a, ++offset) {
      for (const Transition& t : mdp.transitions(a)) {
        const double reward =
            t.counts.adversary -
            beta * (t.counts.adversary + t.counts.honest);
        if (reward == 0.0) continue;  // sparse reward files
        out << s << ' ' << offset << ' ' << t.target << ' '
            << support::format_double(reward, 17) << '\n';
      }
    }
  }
}

void export_dot(const Mdp& mdp, std::ostream& out, const DotOptions& options) {
  SM_REQUIRE(mdp.num_states() <= options.max_states,
             "model too large for DOT output (", mdp.num_states(), " > ",
             options.max_states, " states)");
  const auto label = [&](StateId s) {
    return options.labeler ? options.labeler(s) : std::to_string(s);
  };

  out << "digraph mdp {\n  rankdir=LR;\n  node [shape=box];\n";
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    out << "  s" << s << " [label=\""
        << support::CsvWriter::escape(label(s)) << '"';
    if (s == mdp.initial_state()) out << ", peripheries=2";
    out << "];\n";
  }
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s); ++a) {
      const auto transitions = mdp.transitions(a);
      if (transitions.size() == 1 && transitions[0].prob == 1.0) {
        // Deterministic action: a single labeled edge.
        const Transition& t = transitions[0];
        out << "  s" << s << " -> s" << t.target << " [label=\"a"
            << (a - mdp.action_begin(s));
        if (t.counts.adversary || t.counts.honest) {
          out << " +" << t.counts.adversary << "a/+" << t.counts.honest
              << "h";
        }
        out << "\"];\n";
        continue;
      }
      // Probabilistic action: a chance node fanning out.
      out << "  a" << a << " [shape=point];\n";
      out << "  s" << s << " -> a" << a << " [label=\"a"
          << (a - mdp.action_begin(s)) << "\"];\n";
      for (const Transition& t : transitions) {
        out << "  a" << a << " -> s" << t.target << " [label=\""
            << support::format_double(t.prob, 4);
        if (t.counts.adversary || t.counts.honest) {
          out << " +" << t.counts.adversary << "a/+" << t.counts.honest
              << "h";
        }
        out << "\"];\n";
      }
    }
  }
  out << "}\n";
}

}  // namespace mdp
