// Exact gain/bias solver for small unichain models, by Gaussian elimination.
//
// For a fixed policy π on a unichain MDP, the gain g and bias h satisfy
//
//   h(s) + g − r(s, π(s)) − Σ_t P(t | s, π(s)) · h(t) = 0   for all s,
//   h(ref) = 0.
//
// That is n+1 linear equations in n+1 unknowns (h, g). We solve them with
// partial-pivoting Gaussian elimination — O(n³), intended for models with
// up to a few thousand states where it serves as the exact reference the
// iterative solvers are validated against. dense_policy_iteration combines
// it with Howard improvement for an exact optimal gain.
#pragma once

#include <vector>

#include "mdp/markov_chain.hpp"
#include "mdp/mdp.hpp"

namespace mdp {

struct DenseEvaluation {
  double gain = 0.0;
  std::vector<double> bias;  ///< h with h[0] = 0.
};

/// Solves the gain/bias linear system for `policy` exactly.
/// Throws support::Error if the system is singular (policy not unichain).
DenseEvaluation dense_evaluate_policy(const Mdp& mdp, const Policy& policy,
                                      const std::vector<double>& action_reward);

struct DensePolicyIterationResult {
  double gain = 0.0;
  Policy policy;
  int rounds = 0;
  bool converged = false;
};

/// Howard policy iteration with exact dense evaluation.
DensePolicyIterationResult dense_policy_iteration(
    const Mdp& mdp, const std::vector<double>& action_reward,
    double improve_tol = 1e-10, int max_rounds = 1000);

/// Solves a general dense linear system A·x = b in place (partial
/// pivoting). Exposed for reuse by the single-tree baseline's absorbing
/// chain analysis. Throws support::Error when A is singular.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace mdp
