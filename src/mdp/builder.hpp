// Incremental construction of mdp::Mdp models.
//
// States are added in increasing id order (matching the BFS enumeration the
// selfish-mining state space produces); actions and transitions are appended
// to the most recently opened state/action. build() validates the model and
// produces the immutable Mdp.
#pragma once

#include <vector>

#include "mdp/mdp.hpp"
#include "mdp/types.hpp"

namespace mdp {

class MdpBuilder {
 public:
  /// Opens the next state; returns its id (sequential from 0).
  StateId add_state();

  /// Opens an action on the most recently added state. `label` is an
  /// opaque model-specific code stored for strategy readout.
  ActionId add_action(std::uint32_t label = 0);

  /// Appends a probabilistic outcome to the most recently added action.
  /// Duplicate targets with identical reward counts are merged.
  void add_transition(StateId target, double prob, RewardCounts counts = {});

  StateId num_states() const { return static_cast<StateId>(state_actions_.size()); }

  /// Validates and freezes the model:
  ///  * `initial` must be a valid state;
  ///  * every state needs ≥ 1 action, every action ≥ 1 transition;
  ///  * per-action probabilities must sum to 1 within 1e-9 (rows are then
  ///    renormalized exactly to remove accumulated rounding).
  /// The builder is left empty afterwards.
  Mdp build(StateId initial);

 private:
  struct PendingTransition {
    StateId target;
    double prob;
    RewardCounts counts;
  };
  struct PendingAction {
    std::uint32_t label;
    std::vector<PendingTransition> transitions;
  };

  std::vector<std::vector<PendingAction>> state_actions_;
  ActionId action_count_ = 0;
};

}  // namespace mdp
