// Relative value iteration for mean-payoff MDPs.
//
// The selfish-mining MDP is unichain under every strategy (the all-honest
// reset state is reachable from everywhere) but 2-periodic (mining states
// alternate with decision states), so plain value iteration oscillates.
// We apply the standard aperiodicity transformation P' = τI + (1−τ)P,
// r' = (1−τ)r, which preserves optimal policies, scales the gain by (1−τ),
// and makes the span-seminorm stopping rule applicable:
//
//   min_s (Tv − v)(s)  ≤  gain'  ≤  max_s (Tv − v)(s)
//
// The returned gain is certified to lie in [gain_lo, gain_hi] with
// gain_hi − gain_lo < tol on convergence; the greedy policy is captured
// during the final (certifying) sweep — arg-max w.r.t. the vector that
// sweep backed up from, which at convergence is within tol of the greedy
// policy of the returned values — so convergence costs no extra sweep.
//
// These AoS-walking implementations are the *reference* solvers: the
// bandwidth-optimized, thread-parallel mdp::BellmanKernel
// (bellman_kernel.hpp) is pinned bit-identical to them by
// test_mdp_kernel, and production paths (analysis::analyze) route
// through the kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "mdp/mdp.hpp"

namespace mdp {

struct MeanPayoffOptions {
  /// Width of the certified gain interval at which iteration stops.
  double tol = 1e-7;
  /// Hard iteration cap; exceeding it reports converged = false.
  int max_iterations = 2'000'000;
  /// Laziness of the aperiodicity transformation, in (0, 1).
  double tau = 0.5;
};

struct MeanPayoffResult {
  double gain = 0.0;     ///< Midpoint of the certified interval.
  double gain_lo = 0.0;  ///< Certified lower bound on the optimal gain.
  double gain_hi = 0.0;  ///< Certified upper bound on the optimal gain.
  std::vector<ActionId> policy;  ///< Greedy positional strategy (global ids).
  std::vector<double> values;    ///< Final relative value vector.
  int iterations = 0;
  bool converged = false;
};

/// Solves max_σ MP(σ) for the reward vector `action_reward` (expected
/// immediate reward per global action id, e.g. Mdp::beta_rewards(β)).
///
/// `warm_start`, if non-null and of size num_states, seeds the value vector
/// (used by Algorithm 1 to reuse values across binary-search steps).
MeanPayoffResult value_iteration(const Mdp& mdp,
                                 const std::vector<double>& action_reward,
                                 const MeanPayoffOptions& options = {},
                                 const std::vector<double>* warm_start = nullptr);

/// Gauss–Seidel variant: Bellman backups update the value vector in place
/// (each state immediately sees its predecessors' new values), which
/// typically cuts the sweep count substantially on the selfish-mining
/// models. Certification is unchanged: whenever the in-place sweeps look
/// converged, one *synchronous* sweep computes the classical Odoni bounds
/// min/max (Tv − v) — valid for an arbitrary value vector — so the
/// returned [gain_lo, gain_hi] interval carries the same guarantee as
/// value_iteration's. `iterations` counts both sweep kinds.
MeanPayoffResult gauss_seidel_value_iteration(
    const Mdp& mdp, const std::vector<double>& action_reward,
    const MeanPayoffOptions& options = {},
    const std::vector<double>* warm_start = nullptr);

}  // namespace mdp
