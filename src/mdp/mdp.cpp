#include "mdp/mdp.hpp"

namespace mdp {

std::vector<double> Mdp::beta_rewards(double beta) const {
  std::vector<double> r;
  beta_rewards_into(beta, r);
  return r;
}

void Mdp::beta_rewards_into(double beta, std::vector<double>& out) const {
  out.resize(num_actions());
  for (ActionId a = 0; a < num_actions(); ++a) out[a] = beta_reward(a, beta);
}

std::size_t Mdp::memory_bytes() const {
  return action_begin_.capacity() * sizeof(ActionId) +
         action_state_.capacity() * sizeof(StateId) +
         action_label_.capacity() * sizeof(std::uint32_t) +
         tr_begin_.capacity() * sizeof(std::uint32_t) +
         transitions_.capacity() * sizeof(Transition) +
         exp_adv_.capacity() * sizeof(double) +
         exp_hon_.capacity() * sizeof(double);
}

}  // namespace mdp
