#include "mdp/mdp.hpp"

namespace mdp {

std::vector<double> Mdp::beta_rewards(double beta) const {
  std::vector<double> r(num_actions());
  for (ActionId a = 0; a < num_actions(); ++a) r[a] = beta_reward(a, beta);
  return r;
}

std::size_t Mdp::memory_bytes() const {
  return action_begin_.capacity() * sizeof(ActionId) +
         action_state_.capacity() * sizeof(StateId) +
         action_label_.capacity() * sizeof(std::uint32_t) +
         tr_begin_.capacity() * sizeof(std::uint32_t) +
         transitions_.capacity() * sizeof(Transition) +
         exp_adv_.capacity() * sizeof(double) +
         exp_hon_.capacity() * sizeof(double);
}

}  // namespace mdp
