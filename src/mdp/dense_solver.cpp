#include "mdp/dense_solver.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mdp {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  SM_REQUIRE(b.size() == n, "rhs size mismatch");
  for (const auto& row : a) {
    SM_REQUIRE(row.size() == n, "matrix must be square");
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    SM_ENSURE(std::fabs(a[pivot][col]) > 1e-13,
              "singular linear system at column ", col);
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    const double inv = 1.0 / a[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri][c] * x[c];
    x[ri] = sum / a[ri][ri];
  }
  return x;
}

DenseEvaluation dense_evaluate_policy(const Mdp& mdp, const Policy& policy,
                                      const std::vector<double>& action_reward) {
  validate_policy(mdp, policy);
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size mismatch");
  const std::size_t n = mdp.num_states();

  // Unknowns x = (h(0), …, h(n−1), g); h(0) is pinned to zero by replacing
  // its column contribution — we simply drop h(0) as an unknown and keep g
  // in its slot: x = (g, h(1), …, h(n−1)).
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> b(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const ActionId act = policy[s];
    // h(s) + g − Σ P h(t) = r(s)
    a[s][0] += 1.0;  // g coefficient
    if (s != 0) a[s][s] += 1.0;
    for (const Transition& t : mdp.transitions(act)) {
      if (t.target != 0) a[s][t.target] -= t.prob;
    }
    b[s] = action_reward[act];
  }

  const std::vector<double> x = solve_linear_system(std::move(a), std::move(b));
  DenseEvaluation result;
  result.gain = x[0];
  result.bias.assign(n, 0.0);
  for (std::size_t s = 1; s < n; ++s) result.bias[s] = x[s];
  return result;
}

DensePolicyIterationResult dense_policy_iteration(
    const Mdp& mdp, const std::vector<double>& action_reward,
    double improve_tol, int max_rounds) {
  const StateId n = mdp.num_states();
  DensePolicyIterationResult result;
  Policy& policy = result.policy;
  policy.resize(n);
  for (StateId s = 0; s < n; ++s) policy[s] = mdp.action_begin(s);

  for (int round = 1; round <= max_rounds; ++round) {
    result.rounds = round;
    const DenseEvaluation eval =
        dense_evaluate_policy(mdp, policy, action_reward);
    result.gain = eval.gain;

    bool changed = false;
    for (StateId s = 0; s < n; ++s) {
      const ActionId incumbent = policy[s];
      double incumbent_q = action_reward[incumbent];
      for (const Transition& t : mdp.transitions(incumbent)) {
        incumbent_q += t.prob * eval.bias[t.target];
      }
      double best_q = incumbent_q;
      ActionId best_a = incumbent;
      for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s); ++a) {
        if (a == incumbent) continue;
        double q = action_reward[a];
        for (const Transition& t : mdp.transitions(a)) {
          q += t.prob * eval.bias[t.target];
        }
        if (q > best_q + improve_tol) {
          best_q = q;
          best_a = a;
        }
      }
      if (best_a != incumbent) {
        policy[s] = best_a;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace mdp
