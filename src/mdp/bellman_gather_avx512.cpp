// AVX-512F gather-product kernel (8-wide vgatherdpd). Same contract as
// the AVX2 TU: compiled with -mavx512f only for this file, gated at
// runtime on the CPU actually reporting the feature.
#include "mdp/bellman_gather.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace mdp::detail {

#if defined(__AVX512F__)

namespace {

void avx512_impl(const double* probs, const StateId* targets,
                 const double* values, double* out, std::uint32_t count,
                 int /*prefetch*/) {
  static_assert(sizeof(StateId) == 4, "vgatherdpd wants 32-bit indices");
  std::uint32_t i = 0;
  // Full-width stores over the final partial group are safe: out is
  // padded to a multiple of 8 doubles and the sum pass stops at `count`.
  for (; i + 8 <= count; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(targets + i));
    const __m512d gathered = _mm512_i32gather_pd(idx, values, 8);
    const __m512d prod = _mm512_mul_pd(_mm512_loadu_pd(probs + i), gathered);
    _mm512_storeu_pd(out + i, prod);
  }
  for (; i < count; ++i) {
    out[i] = probs[i] * values[targets[i]];
  }
}

}  // namespace

GatherProductsFn avx512_gather_products() {
  return __builtin_cpu_supports("avx512f") ? &avx512_impl : nullptr;
}

#else  // !defined(__AVX512F__)

GatherProductsFn avx512_gather_products() { return nullptr; }

#endif

}  // namespace mdp::detail
