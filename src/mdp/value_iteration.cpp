#include "mdp/value_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace mdp {

namespace {

/// One Bellman backup of state `s`; returns the best Q-value and the
/// arg-max action (lowest index wins ties for determinism).
inline double bellman_best(const Mdp& mdp,
                           const std::vector<double>& action_reward,
                           const std::vector<double>& v, StateId s,
                           ActionId* best_action) {
  double best = -std::numeric_limits<double>::infinity();
  ActionId best_a = kInvalidAction;
  const ActionId end = mdp.action_end(s);
  for (ActionId a = mdp.action_begin(s); a < end; ++a) {
    double q = action_reward[a];
    for (const Transition& t : mdp.transitions(a)) {
      q += t.prob * v[t.target];
    }
    if (q > best) {
      best = q;
      best_a = a;
    }
  }
  if (best_action != nullptr) *best_action = best_a;
  return best;
}

}  // namespace

MeanPayoffResult value_iteration(const Mdp& mdp,
                                 const std::vector<double>& action_reward,
                                 const MeanPayoffOptions& options,
                                 const std::vector<double>* warm_start) {
  const StateId n = mdp.num_states();
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size ", action_reward.size(),
             " != number of actions ", mdp.num_actions());
  SM_REQUIRE(options.tau > 0.0 && options.tau < 1.0,
             "tau must lie strictly inside (0,1): ", options.tau);
  SM_REQUIRE(options.tol > 0.0, "tolerance must be positive");
  SM_REQUIRE(options.max_iterations >= 1,
             "need at least one iteration, got ", options.max_iterations);

  MeanPayoffResult result;
  std::vector<double>& v = result.values;
  if (warm_start != nullptr && warm_start->size() == n) {
    v = *warm_start;
  } else {
    v.assign(n, 0.0);
  }
  std::vector<double> v_next(n, 0.0);
  result.policy.assign(n, kInvalidAction);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    double delta_lo = std::numeric_limits<double>::infinity();
    double delta_hi = -std::numeric_limits<double>::infinity();
    for (StateId s = 0; s < n; ++s) {
      const double bellman =
          bellman_best(mdp, action_reward, v, s, &result.policy[s]);
      // Lazy update = value iteration on the transformed (aperiodic) MDP.
      const double updated = one_minus_tau * bellman + tau * v[s];
      const double delta = updated - v[s];
      if (delta < delta_lo) delta_lo = delta;
      if (delta > delta_hi) delta_hi = delta;
      v_next[s] = updated;
    }
    result.iterations = iter;
    // Gain of the transformed MDP is (1−τ)·gain; undo the scaling.
    result.gain_lo = delta_lo / one_minus_tau;
    result.gain_hi = delta_hi / one_minus_tau;

    // Renormalize to keep values bounded; uniform shifts do not affect
    // Bellman differences.
    const double shift = v_next[0];
    for (StateId s = 0; s < n; ++s) v[s] = v_next[s] - shift;

    if (result.gain_hi - result.gain_lo < options.tol) {
      result.converged = true;
      break;
    }
  }

  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  // result.policy was captured by the final sweep (greedy w.r.t. the
  // vector that sweep backed up from, within tol of the returned values'
  // greedy policy once converged) — no extra extraction sweep.
  return result;
}

MeanPayoffResult gauss_seidel_value_iteration(
    const Mdp& mdp, const std::vector<double>& action_reward,
    const MeanPayoffOptions& options,
    const std::vector<double>* warm_start) {
  const StateId n = mdp.num_states();
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size ", action_reward.size(),
             " != number of actions ", mdp.num_actions());
  SM_REQUIRE(options.tau > 0.0 && options.tau < 1.0,
             "tau must lie strictly inside (0,1): ", options.tau);
  SM_REQUIRE(options.tol > 0.0, "tolerance must be positive");
  SM_REQUIRE(options.max_iterations >= 1,
             "need at least one iteration, got ", options.max_iterations);

  MeanPayoffResult result;
  std::vector<double>& v = result.values;
  if (warm_start != nullptr && warm_start->size() == n) {
    v = *warm_start;
  } else {
    v.assign(n, 0.0);
  }
  result.policy.assign(n, kInvalidAction);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  // True when result.policy is greedy w.r.t. the vector the most recent
  // certifying sweep read (no in-place sweep has moved v since).
  bool policy_fresh = false;

  // A synchronous Bellman sweep yields the classical arbitrary-v bounds
  // min/max (Tv − v) on the transformed gain; we use it as the certifier
  // (and it captures the greedy policy as a side effect).
  const auto certify = [&](std::vector<double>& scratch) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (StateId s = 0; s < n; ++s) {
      const double updated =
          one_minus_tau *
              bellman_best(mdp, action_reward, v, s, &result.policy[s]) +
          tau * v[s];
      const double delta = updated - v[s];
      if (delta < lo) lo = delta;
      if (delta > hi) hi = delta;
      scratch[s] = updated;
    }
    const double shift = scratch[0];
    for (StateId s = 0; s < n; ++s) v[s] = scratch[s] - shift;
    policy_fresh = true;
    result.gain_lo = lo / one_minus_tau;
    result.gain_hi = hi / one_minus_tau;
    return result.gain_hi - result.gain_lo < options.tol;
  };

  std::vector<double> scratch(n, 0.0);
  int iter = 0;
  // In-place backups absorb the mean-payoff drift non-uniformly (each
  // state sees a different mix of updated predecessors), so plain GS would
  // converge to something other than the bias. The fix is the classical
  // one: subtract the current gain estimate inside the sweep — the update
  // becomes GS on the *Poisson equation* h = T'h − g'·1, whose fixpoint is
  // the true bias — and refresh the gain estimate from the certifying
  // synchronous sweeps.
  double gain_prime_estimate = 0.0;  // gain of the transformed MDP
  constexpr int kCertifyEvery = 16;
  int sweeps_since_certify = 0;
  while (iter < options.max_iterations) {
    ++iter;
    ++sweeps_since_certify;
    policy_fresh = false;
    double change = 0.0;
    for (StateId s = 0; s < n; ++s) {
      const double updated =
          one_minus_tau * bellman_best(mdp, action_reward, v, s, nullptr) +
          tau * v[s] - gain_prime_estimate;
      const double diff = std::fabs(updated - v[s]);
      if (diff > change) change = diff;
      v[s] = updated;  // in place: later states see this immediately
    }
    const double shift = v[0];
    for (StateId s = 0; s < n; ++s) v[s] -= shift;

    if ((change < 0.25 * options.tol ||
         sweeps_since_certify >= kCertifyEvery) &&
        iter < options.max_iterations) {
      ++iter;
      sweeps_since_certify = 0;
      const bool done = certify(scratch);
      gain_prime_estimate =
          0.5 * (result.gain_lo + result.gain_hi) * one_minus_tau;
      if (done) {
        result.converged = true;
        break;
      }
    }
  }
  result.iterations = iter;
  result.gain = 0.5 * (result.gain_lo + result.gain_hi);
  if (!policy_fresh) {
    // Only reachable without convergence (the converged exit leaves the
    // final certifier's policy in place): extract against the current v
    // so the returned policy is at least self-consistent.
    for (StateId s = 0; s < n; ++s) {
      bellman_best(mdp, action_reward, v, s, &result.policy[s]);
    }
  }
  return result;
}

}  // namespace mdp
