#include "mdp/markov_chain.hpp"

#include <cmath>
#include <queue>

#include "support/check.hpp"

namespace mdp {

void validate_policy(const Mdp& mdp, const Policy& policy) {
  SM_REQUIRE(policy.size() == mdp.num_states(),
             "policy size ", policy.size(), " != number of states ",
             mdp.num_states());
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    SM_REQUIRE(policy[s] >= mdp.action_begin(s) && policy[s] < mdp.action_end(s),
               "policy assigns state ", s, " a foreign action ", policy[s]);
  }
}

namespace {

template <typename SuccessorsFn>
std::vector<bool> bfs(StateId num_states, StateId from, SuccessorsFn&& succ) {
  std::vector<bool> seen(num_states, false);
  std::queue<StateId> frontier;
  seen[from] = true;
  frontier.push(from);
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop();
    succ(s, [&](StateId t) {
      if (!seen[t]) {
        seen[t] = true;
        frontier.push(t);
      }
    });
  }
  return seen;
}

}  // namespace

std::vector<bool> reachable_states(const Mdp& mdp, StateId from) {
  SM_REQUIRE(from < mdp.num_states(), "state out of range");
  return bfs(mdp.num_states(), from, [&](StateId s, auto&& visit) {
    for (ActionId a = mdp.action_begin(s); a < mdp.action_end(s); ++a) {
      for (const Transition& t : mdp.transitions(a)) visit(t.target);
    }
  });
}

std::vector<bool> reachable_states(const Mdp& mdp, const Policy& policy,
                                   StateId from) {
  SM_REQUIRE(from < mdp.num_states(), "state out of range");
  validate_policy(mdp, policy);
  return bfs(mdp.num_states(), from, [&](StateId s, auto&& visit) {
    for (const Transition& t : mdp.transitions(policy[s])) visit(t.target);
  });
}

StationaryResult stationary_distribution(const Mdp& mdp, const Policy& policy,
                                         const StationaryOptions& options) {
  validate_policy(mdp, policy);
  SM_REQUIRE(options.tau >= 0.0 && options.tau < 1.0,
             "tau must lie in [0,1): ", options.tau);
  const StateId n = mdp.num_states();

  StationaryResult result;
  std::vector<double>& mu = result.distribution;
  mu.assign(n, 0.0);
  mu[mdp.initial_state()] = 1.0;
  std::vector<double> next(n, 0.0);

  const double tau = options.tau;
  const double one_minus_tau = 1.0 - tau;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // next = μ · (τI + (1−τ)P); the lazy mix has the same fixpoint as P
    // but is aperiodic, so power iteration converges.
    for (StateId s = 0; s < n; ++s) next[s] = tau * mu[s];
    for (StateId s = 0; s < n; ++s) {
      if (mu[s] == 0.0) continue;
      const double mass = one_minus_tau * mu[s];
      for (const Transition& t : mdp.transitions(policy[s])) {
        next[t.target] += mass * t.prob;
      }
    }
    double l1 = 0.0;
    for (StateId s = 0; s < n; ++s) l1 += std::fabs(next[s] - mu[s]);
    mu.swap(next);
    result.iterations = iter;
    if (l1 < options.tol) {
      result.converged = true;
      break;
    }
  }

  // Guard against drift: renormalize to a probability vector.
  double total = 0.0;
  for (double x : mu) total += x;
  SM_ENSURE(total > 0.0, "stationary mass vanished");
  for (double& x : mu) x /= total;
  return result;
}

double policy_gain(const Mdp& mdp, const Policy& policy,
                   const std::vector<double>& action_reward,
                   const std::vector<double>& stationary) {
  validate_policy(mdp, policy);
  SM_REQUIRE(action_reward.size() == mdp.num_actions(),
             "reward vector size mismatch");
  SM_REQUIRE(stationary.size() == mdp.num_states(),
             "stationary vector size mismatch");
  double gain = 0.0;
  for (StateId s = 0; s < mdp.num_states(); ++s) {
    gain += stationary[s] * action_reward[policy[s]];
  }
  return gain;
}

}  // namespace mdp
