#include "baselines/eyal_sirer.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace baselines {

void EyalSirerParams::validate() const {
  // p ≥ 0.5 makes the adversary's lead a non-recurrent random walk: the
  // strategy (and the formula) are only defined below one half.
  SM_REQUIRE(p >= 0.0 && p < 0.5, "p out of [0, 0.5): ", p);
  SM_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]: ", gamma);
}

double eyal_sirer_revenue(const EyalSirerParams& params) {
  params.validate();
  const double p = params.p;
  const double g = params.gamma;
  const double numerator =
      p * (1 - p) * (1 - p) * (4 * p + g * (1 - 2 * p)) - p * p * p;
  const double denominator = 1 - p * (1 + (2 - p) * p);
  const double revenue = numerator / denominator;
  // The strategy analysis assumes the adversary abandons losing branches;
  // its revenue is never negative in the valid range.
  return revenue < 0.0 ? 0.0 : revenue;
}

double eyal_sirer_threshold(double gamma) {
  SM_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]: ", gamma);
  return (1 - gamma) / (3 - 2 * gamma);
}

EyalSirerChainResult eyal_sirer_chain(const EyalSirerParams& params,
                                      int max_lead) {
  params.validate();
  SM_REQUIRE(max_lead >= 3, "max_lead must be at least 3: ", max_lead);
  const double p = params.p;
  const double g = params.gamma;

  // State encoding: 0 ↦ lead 0, 1 ↦ the tie race "0'", n ≥ 2 ↦ lead n−1.
  const std::size_t n_states = static_cast<std::size_t>(max_lead) + 2;
  const auto lead_index = [](int lead) {
    return static_cast<std::size_t>(lead) + 1;
  };

  std::vector<double> mu(n_states, 0.0), next(n_states, 0.0);
  mu[0] = 1.0;
  double rate_adv = 0.0, rate_hon = 0.0;
  for (int iter = 0; iter < 2'000'000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    // lead 0.
    next[lead_index(1)] += mu[0] * p;
    next[0] += mu[0] * (1 - p);
    // tie race 0' — all outcomes restart the round.
    next[0] += mu[1];
    // lead 1.
    next[lead_index(2)] += mu[lead_index(1)] * p;
    next[1] += mu[lead_index(1)] * (1 - p);
    // lead 2: honest block triggers the full override.
    next[lead_index(3)] += mu[lead_index(2)] * p;
    next[0] += mu[lead_index(2)] * (1 - p);
    // lead n ≥ 3: honest block finalizes one deep adversary block.
    for (int lead = 3; lead <= max_lead; ++lead) {
      const double mass = mu[lead_index(lead)];
      if (mass == 0.0) continue;
      if (lead < max_lead) {
        next[lead_index(lead + 1)] += mass * p;
      } else {
        next[lead_index(lead)] += mass * p;  // reflecting truncation
      }
      next[lead_index(lead - 1)] += mass * (1 - p);
    }
    double l1 = 0.0;
    for (std::size_t s = 0; s < n_states; ++s) l1 += std::fabs(next[s] - mu[s]);
    mu.swap(next);
    if (l1 < 1e-14) break;
  }

  // Long-run block rates from the stationary distribution.
  rate_hon += mu[0] * (1 - p);  // honest block while the adversary has no lead
  rate_adv += mu[1] * (2 * p + g * (1 - p));
  rate_hon += mu[1] * ((1 - p) * g + 2 * (1 - p) * (1 - g));
  rate_adv += mu[lead_index(2)] * (1 - p) * 2;
  for (int lead = 3; lead <= max_lead; ++lead) {
    rate_adv += mu[lead_index(lead)] * (1 - p);
  }

  EyalSirerChainResult result;
  result.states = n_states;
  result.expected_adversary = rate_adv;
  result.expected_honest = rate_hon;
  const double total = rate_adv + rate_hon;
  SM_ENSURE(total > 0.0, "blocks are produced at a positive rate");
  result.errev = rate_adv / total;
  return result;
}

}  // namespace baselines
