#include "baselines/honest.hpp"

#include "support/check.hpp"

namespace baselines {

double honest_errev(double p) {
  SM_REQUIRE(p >= 0.0 && p <= 1.0, "p out of [0,1]: ", p);
  return p;
}

mdp::Policy release_immediately_policy(const selfish::SelfishModel& model) {
  const mdp::Mdp& m = model.mdp;
  mdp::Policy policy(m.num_states());
  for (mdp::StateId s = 0; s < m.num_states(); ++s) {
    const selfish::State state = model.space.state_of(s);
    mdp::ActionId chosen = m.action_begin(s);  // mine (always first)
    if (state.type == selfish::StepType::kAdversaryFound) {
      // Publish the tip fork in full if it is releasable (depth 1 forks
      // always are); otherwise keep mining.
      for (mdp::ActionId a = m.action_begin(s); a < m.action_end(s); ++a) {
        const selfish::Action action = model.action_of(a);
        if (action.kind == selfish::Action::Kind::kRelease &&
            action.depth == 1 && action.slot == 0 &&
            action.length == state.c[0][0]) {
          chosen = a;
          break;
        }
      }
    }
    policy[s] = chosen;
  }
  return policy;
}

}  // namespace baselines
