#include "baselines/single_tree.hpp"

#include <array>
#include <cstdint>
#include <unordered_map>

#include "support/check.hpp"

namespace baselines {

namespace {

constexpr int kMaxLevels = 8;

/// Within-round state: nodes per tree level (level 0 is the implicit root
/// and always has one node) and the public-chain length since the fork
/// point. Rounds absorb on publication or on an honest block with an
/// empty tree.
struct RoundState {
  std::array<std::uint8_t, kMaxLevels> nodes{};  // nodes[m] = level m+1
  std::uint8_t honest_len = 0;

  std::uint64_t key(int max_depth) const {
    std::uint64_t k = honest_len;
    for (int m = 0; m < max_depth; ++m) k = (k << 6) | nodes[m];
    return k;
  }

  /// Tree depth T: deepest non-empty level.
  int depth(int max_depth) const {
    for (int m = max_depth - 1; m >= 0; --m) {
      if (nodes[m] > 0) return m + 1;
    }
    return 0;
  }
};

/// Expected (adversary, honest) blocks accumulated from `s` to the end of
/// the round.
struct Expectation {
  double adversary = 0.0;
  double honest = 0.0;
};

class RoundAnalyzer {
 public:
  explicit RoundAnalyzer(const SingleTreeParams& params) : params_(params) {}

  Expectation expectation(const RoundState& s) {
    const auto it = memo_.find(s.key(params_.max_depth));
    if (it != memo_.end()) return it->second;

    // Mining targets: every tree node (including the root) whose child
    // level still has capacity and lies within the depth bound.
    std::uint32_t sigma = 0;
    for (int m = 0; m < params_.max_depth; ++m) {
      const int parents = (m == 0) ? 1 : s.nodes[m - 1];
      if (parents > 0 && s.nodes[m] < params_.max_width) {
        sigma += static_cast<std::uint32_t>(parents);
      }
    }

    const double denom =
        1.0 - params_.p + params_.p * static_cast<double>(sigma);
    const double per_target = params_.p / denom;
    const double honest_prob = (1.0 - params_.p) / denom;

    Expectation total;
    // Adversary successes: a child appears at the first-from-root level
    // the winning parent feeds. Parents at level m−1 are exchangeable, so
    // the level gains one node with probability parents·per_target.
    for (int m = 0; m < params_.max_depth; ++m) {
      const int parents = (m == 0) ? 1 : s.nodes[m - 1];
      if (parents == 0 || s.nodes[m] >= params_.max_width) continue;
      RoundState next = s;
      next.nodes[m] = static_cast<std::uint8_t>(next.nodes[m] + 1);
      const Expectation e = expectation(next);
      const double prob = per_target * parents;
      total.adversary += prob * e.adversary;
      total.honest += prob * e.honest;
    }

    // Honest success: the public chain grows by one.
    {
      const int tree_depth = s.depth(params_.max_depth);
      const int new_len = s.honest_len + 1;
      if (tree_depth == 0) {
        // Empty tree: the block is final, the fork point moves — absorb.
        total.honest += honest_prob * 1.0;
      } else if (new_len >= tree_depth) {
        // The chain caught up: publish the deepest path and race.
        total.adversary += honest_prob * params_.gamma * tree_depth;
        total.honest += honest_prob * (1.0 - params_.gamma) * new_len;
      } else {
        RoundState next = s;
        next.honest_len = static_cast<std::uint8_t>(new_len);
        const Expectation e = expectation(next);
        total.adversary += honest_prob * e.adversary;
        total.honest += honest_prob * e.honest;
      }
    }

    memo_.emplace(s.key(params_.max_depth), total);
    return total;
  }

  std::size_t states_evaluated() const { return memo_.size(); }

 private:
  SingleTreeParams params_;
  std::unordered_map<std::uint64_t, Expectation> memo_;
};

}  // namespace

void SingleTreeParams::validate() const {
  // p = 1 would let the round run forever (the honest chain never grows).
  SM_REQUIRE(p >= 0.0 && p < 1.0, "p out of [0,1): ", p);
  SM_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]: ", gamma);
  SM_REQUIRE(max_depth >= 1 && max_depth <= kMaxLevels,
             "max_depth out of [1,", kMaxLevels, "]: ", max_depth);
  SM_REQUIRE(max_width >= 1 && max_width <= 63,
             "max_width out of [1,63]: ", max_width);
}

SingleTreeResult analyze_single_tree(const SingleTreeParams& params) {
  params.validate();
  RoundAnalyzer analyzer(params);
  const Expectation e = analyzer.expectation(RoundState{});

  SingleTreeResult result;
  result.expected_adversary = e.adversary;
  result.expected_honest = e.honest;
  result.states_evaluated = analyzer.states_evaluated();
  const double total = e.adversary + e.honest;
  SM_ENSURE(total > 0.0, "a round finalizes at least one block on average");
  result.errev = e.adversary / total;
  return result;
}

}  // namespace baselines
