// Baseline 1 (paper §4): the honest mining strategy.
//
// An honest miner extends only the leading block of the public chain and
// publishes immediately, so its long-run share of main-chain blocks equals
// its resource share p. We also provide the closest in-model embedding — a
// "release immediately" policy for the attack MDP — used by tests to
// cross-check the model against the closed form.
#pragma once

#include "mdp/markov_chain.hpp"
#include "selfish/build.hpp"

namespace baselines {

/// ERRev of honest mining: exactly p.
double honest_errev(double p);

/// The in-model honest-equivalent strategy: release every freshly mined
/// tip-fork block at once (depth 1, full length) and never race a pending
/// honest block. For d = f = 1 this induces exactly the honest dynamics
/// (ERRev = p); for larger models it is a conservative no-withholding
/// strategy.
mdp::Policy release_immediately_policy(const selfish::SelfishModel& model);

}  // namespace baselines
