// Baseline 2 (paper §4): single-tree selfish mining.
//
// The classic Eyal–Sirer attack extended to efficient proof systems: the
// adversary grows one private *tree* rooted at the fork point (the public
// tip when the round starts), bounded to depth ≤ max_depth and ≤ max_width
// nodes per level, while the honest miners extend the public chain. The
// fixed (non-optimized) strategy publishes the deepest tree path the moment
// the public chain catches up with the tree depth; the resulting tie is won
// with the switching probability γ.
//
// Because node counts per level and the public-chain length only grow
// within a round, one round is an absorbing DAG — the expected adversary /
// honest block counts per round are computed exactly by memoized recursion,
// and ERRev follows from the renewal-reward theorem:
//   ERRev = E[A per round] / (E[A per round] + E[H per round]).
#pragma once

#include <cstddef>

namespace baselines {

struct SingleTreeParams {
  double p = 0.1;      ///< Adversary's relative resource, in [0, 1].
  double gamma = 0.5;  ///< Tie-race switching probability.
  int max_depth = 4;   ///< Maximal private tree depth (paper: l = 4).
  int max_width = 5;   ///< Maximal nodes per tree level (paper: f = 5).

  void validate() const;
};

struct SingleTreeResult {
  double errev = 0.0;               ///< Expected relative revenue.
  double expected_adversary = 0.0;  ///< E[adversary blocks per round].
  double expected_honest = 0.0;     ///< E[honest blocks per round].
  std::size_t states_evaluated = 0; ///< Distinct round states visited.
};

/// Exact analysis of the single-tree attack.
SingleTreeResult analyze_single_tree(const SingleTreeParams& params);

}  // namespace baselines
