// The classic Eyal–Sirer selfish-mining attack on PoW chains [ES14],
// the reference point the paper's attack generalizes ((p,1)-mining, one
// private chain). Two independent computations are provided:
//
//  * the closed-form relative revenue from the original paper,
//        R(p, γ) = [ p(1−p)²(4p + γ(1−2p)) − p³ ] / [ 1 − p(1 + (2−p)p) ],
//  * an explicit Markov-chain evaluation of the same strategy (lead-state
//    chain with the γ race), used to cross-validate the formula and to
//    expose per-state diagnostics.
//
// Comparing this curve against the efficient-proof-system attack isolates
// how much of the adversary's advantage comes from NaS multi-block mining
// rather than from withholding itself.
#pragma once

#include <cstddef>

namespace baselines {

struct EyalSirerParams {
  double p = 0.1;      ///< Adversary's hash-power share, in [0, 0.5).
  double gamma = 0.5;  ///< Fraction of honest miners that mine on the
                       ///< adversary's branch during a tie race.

  void validate() const;
};

/// Closed-form expected relative revenue of the Eyal–Sirer strategy.
double eyal_sirer_revenue(const EyalSirerParams& params);

/// The p threshold above which selfish mining beats honest mining for a
/// given γ: p > (1−γ)/(3−2γ) (Eyal–Sirer Observation 1).
double eyal_sirer_threshold(double gamma);

struct EyalSirerChainResult {
  double errev = 0.0;
  std::size_t states = 0;       ///< Lead states evaluated.
  double expected_adversary = 0.0;  ///< Per attack round.
  double expected_honest = 0.0;     ///< Per attack round.
};

/// Evaluates the same strategy as an absorbing Markov chain over the
/// adversary's lead (bounded by `max_lead`, default high enough that the
/// truncation error is below 1e-9 for p ≤ 0.45).
EyalSirerChainResult eyal_sirer_chain(const EyalSirerParams& params,
                                      int max_lead = 64);

}  // namespace baselines
