// Monte-Carlo simulation of the selfish-mining protocol.
//
// The simulator executes the blockchain protocol against *concrete* blocks
// (chain::BlockStore): private forks are real block sequences with real
// roots, publication truncates and rewrites the public chain, and revenue
// is counted by walking the final chain — completely independently of the
// MDP's RewardCounts. It mirrors the semantics of DESIGN.md §3 (pending
// honest block, γ tie races, fork window of depth d, fork cap l), so the
// empirical relative revenue of a strategy must converge to the ERRev the
// MDP analysis predicts — the cross-validation exercised by tests and the
// bench_simulation harness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/stats.hpp"
#include "selfish/actions.hpp"
#include "selfish/params.hpp"

namespace sim {

/// A selfish-mining strategy: chooses the adversary's reaction at each
/// decision point (a block having just been found). The view passed in is
/// the canonical abstract state (C, O, type) derived from the concrete
/// chain; the returned action must be available in that state.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual selfish::Action decide(const selfish::State& view) = 0;
};

struct SimulationOptions {
  std::uint64_t steps = 500'000;        ///< Mining steps to simulate.
  std::uint64_t warmup_steps = 20'000;  ///< Steps excluded from accounting.
  std::uint64_t seed = 0x5e1f15ULL;
  /// When non-zero, record a running relative-revenue estimate every this
  /// many steps (after warmup) into SimulationResult::trace.
  std::uint64_t trace_interval = 0;
};

/// One point of the convergence trace: the relative revenue accumulated
/// over the *final* chain as of `step` (recomputed against the chain that
/// ultimately survives reorganizations up to that moment).
struct TracePoint {
  std::uint64_t step = 0;
  double errev = 0.0;
  std::uint64_t blocks = 0;  ///< Finalized blocks behind the estimate.
};

struct SimulationResult {
  chain::OwnershipCount revenue;  ///< Final-chain blocks after warmup.
  double errev = 0.0;             ///< revenue.relative_revenue().

  /// Owners of the counted final-chain segment, oldest block first; feed
  /// to chain::window_quality for (μ, ℓ)-chain-quality measurements.
  std::vector<chain::Owner> final_owners;

  /// Running ERRev estimates (empty unless trace_interval was set).
  std::vector<TracePoint> trace;

  // Event counters (diagnostics).
  std::uint64_t adversary_blocks_mined = 0;
  std::uint64_t adversary_blocks_wasted = 0;  ///< Mined into capped forks.
  std::uint64_t honest_blocks_mined = 0;
  std::uint64_t releases = 0;
  std::uint64_t races_won = 0;
  std::uint64_t races_lost = 0;
  std::uint64_t overrides = 0;  ///< Releases that orphaned a pending block
                                ///< outright (k ≥ i+1).
};

/// Runs the protocol for `options.steps` mining steps under `strategy`.
SimulationResult simulate(const selfish::AttackParams& params,
                          Strategy& strategy,
                          const SimulationOptions& options = {});

}  // namespace sim
