#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "chain/block_store.hpp"
#include "chain/mining.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sim {

namespace {

/// A private fork: a chain of adversary blocks hanging off `root`, which
/// is (while the fork is live) a block of the public chain.
struct Fork {
  chain::BlockId root = chain::kNoBlock;
  std::vector<chain::BlockId> blocks;  ///< blocks[0] is the child of root.

  std::size_t length() const { return blocks.size(); }
};

/// The concrete protocol world: public chain + live private forks.
class World {
 public:
  explicit World(const selfish::AttackParams& params)
      : params_(params), mining_(params.p) {
    public_chain_.push_back(store_.genesis());
    // Pre-seed d honest blocks so a block exists at every depth ≤ d from
    // the first step (the abstract model assumes an infinitely deep chain;
    // these blocks predate the warmup window and are never counted).
    for (int i = 0; i < params_.d; ++i) {
      public_chain_.push_back(
          store_.add_block(public_chain_.back(), chain::Owner::kHonest));
    }
  }

  std::uint64_t public_height() const {
    return static_cast<std::uint64_t>(public_chain_.size()) - 1;
  }
  chain::BlockId public_tip() const { return public_chain_.back(); }

  /// Depth (1-based from the tip) of a public block at `height`.
  int depth_of_height(std::uint64_t height) const {
    return static_cast<int>(public_height() - height) + 1;
  }

  /// Live forks at `depth`, sorted by length descending (so a fork's index
  /// in this list equals its canonical slot in the abstract state).
  std::vector<const Fork*> forks_at_depth(int depth) const {
    std::vector<const Fork*> out;
    for (const Fork& fork : forks_) {
      if (depth_of(fork) == depth) out.push_back(&fork);
    }
    std::sort(out.begin(), out.end(), [](const Fork* a, const Fork* b) {
      return a->length() > b->length();
    });
    return out;
  }

  /// Abstract (C, O, type) view of the world; always canonical.
  selfish::State view(selfish::StepType type) const {
    selfish::State s;
    for (int depth = 1; depth <= params_.d; ++depth) {
      const auto at_depth = forks_at_depth(depth);
      SM_ENSURE(static_cast<int>(at_depth.size()) <= params_.f,
                "more live forks at one depth than slots");
      for (std::size_t j = 0; j < at_depth.size(); ++j) {
        s.c[depth - 1][j] = static_cast<std::uint8_t>(at_depth[j]->length());
      }
    }
    for (int depth = 1; depth <= params_.d - 1; ++depth) {
      const std::uint64_t height = public_height() - (depth - 1);
      if (height == 0) continue;  // genesis counts as honest
      const chain::BlockId id = public_chain_[height];
      if (store_.get(id).owner == chain::Owner::kAdversary) {
        s.owner_bits |= static_cast<std::uint8_t>(1u << (depth - 1));
      }
    }
    s.type = type;
    s.canonicalize(params_);  // already sorted, but cheap and safe
    return s;
  }

  /// Mining targets, mirroring selfish::mining_targets: one per live fork
  /// (a capped fork still occupies a proof lane; its blocks are wasted)
  /// plus one new-fork lane per depth with an open slot.
  struct Target {
    bool new_fork = false;
    int depth = 0;             ///< For new forks.
    std::size_t fork_index = 0;  ///< Into forks_, for extensions.
  };

  std::vector<Target> mining_targets() const {
    std::vector<Target> targets;
    std::array<int, selfish::kMaxDepth + 1> count_at_depth{};
    for (std::size_t idx = 0; idx < forks_.size(); ++idx) {
      const int depth = depth_of(forks_[idx]);
      count_at_depth[depth] += 1;
      targets.push_back(Target{false, depth, idx});
    }
    for (int depth = 1; depth <= params_.d; ++depth) {
      if (count_at_depth[depth] < params_.f) {
        targets.push_back(Target{true, depth, 0});
      }
    }
    return targets;
  }

  /// The adversary won the lane `target`: grow the fork (or start one).
  /// Returns false when the block was wasted on a capped fork.
  bool apply_adversary_win(const Target& target) {
    if (target.new_fork) {
      const std::uint64_t root_height = public_height() - (target.depth - 1);
      Fork fork;
      fork.root = public_chain_[root_height];
      fork.blocks.push_back(
          store_.add_block(fork.root, chain::Owner::kAdversary));
      forks_.push_back(std::move(fork));
      return true;
    }
    Fork& fork = forks_[target.fork_index];
    if (static_cast<int>(fork.length()) >= params_.l) return false;  // wasted
    const chain::BlockId tip =
        fork.blocks.empty() ? fork.root : fork.blocks.back();
    fork.blocks.push_back(store_.add_block(tip, chain::Owner::kAdversary));
    return true;
  }

  /// An honest block was found; it stays pending until incorporated.
  void create_pending() {
    SM_ENSURE(!pending_.has_value(), "two pending honest blocks");
    pending_ = store_.add_block(public_tip(), chain::Owner::kHonest);
  }

  bool has_pending() const { return pending_.has_value(); }

  /// Appends the pending honest block to the public chain and prunes forks
  /// that fell out of the depth-d window.
  void incorporate_pending() {
    SM_ENSURE(pending_.has_value(), "no pending block to incorporate");
    public_chain_.push_back(*pending_);
    pending_.reset();
    prune_forks();
  }

  void drop_pending() {
    SM_ENSURE(pending_.has_value(), "no pending block to drop");
    pending_.reset();
  }

  /// Publishes the first k blocks of the fork at (depth, canonical slot j):
  /// the public chain is truncated to the fork's root and the released
  /// blocks appended; the unreleased remainder survives as a fork on the
  /// new tip. The caller has already decided acceptance.
  void accept_release(int depth, int slot, int k) {
    const Fork fork = take_fork(depth, slot);
    SM_ENSURE(static_cast<int>(fork.length()) >= k, "fork shorter than k");
    const std::uint64_t root_height = store_.height(fork.root);
    // Truncate: blocks above the root are orphaned.
    public_chain_.resize(root_height + 1);
    for (int b = 0; b < k; ++b) public_chain_.push_back(fork.blocks[b]);
    if (static_cast<int>(fork.length()) > k) {
      Fork remainder;
      remainder.root = public_chain_.back();
      remainder.blocks.assign(fork.blocks.begin() + k, fork.blocks.end());
      forks_.push_back(std::move(remainder));
    }
    if (pending_.has_value()) pending_.reset();  // orphaned by the rewrite
    prune_forks();
  }

  /// Removes the fork at (depth, canonical slot) without publishing it
  /// (the burn-lost-races fork-choice variant).
  void discard_fork(int depth, int slot) { take_fork(depth, slot); }

  const chain::BlockStore& store() const { return store_; }
  const chain::MiningModel& mining() const { return mining_; }
  const std::vector<chain::BlockId>& public_chain() const {
    return public_chain_;
  }

 private:
  int depth_of(const Fork& fork) const {
    return depth_of_height(store_.height(fork.root));
  }

  /// Removes forks whose root left the depth-d window or was orphaned.
  void prune_forks() {
    std::erase_if(forks_, [&](const Fork& fork) {
      const std::uint64_t root_height = store_.height(fork.root);
      if (root_height + params_.d < public_height() + 1) return true;
      // Root still on the public chain?
      return public_chain_[root_height] != fork.root;
    });
  }

  /// Removes and returns the fork at (depth, canonical slot).
  Fork take_fork(int depth, int slot) {
    const auto at_depth = forks_at_depth(depth);
    SM_REQUIRE(slot >= 0 && slot < static_cast<int>(at_depth.size()),
               "no fork in slot ", slot, " at depth ", depth);
    const Fork* chosen = at_depth[slot];
    Fork out = *chosen;
    std::erase_if(forks_, [&](const Fork& f) { return &f == chosen; });
    return out;
  }

  selfish::AttackParams params_;
  chain::BlockStore store_;
  chain::MiningModel mining_;
  std::vector<chain::BlockId> public_chain_;  ///< Index = height.
  std::vector<Fork> forks_;
  std::optional<chain::BlockId> pending_;
};

}  // namespace

SimulationResult simulate(const selfish::AttackParams& params,
                          Strategy& strategy,
                          const SimulationOptions& options) {
  params.validate();
  SM_REQUIRE(options.steps > options.warmup_steps,
             "need more steps than warmup");
  support::Rng rng(options.seed);
  World world(params);
  SimulationResult result;

  // Height below which revenue is not counted (fixed after warmup).
  std::uint64_t accounting_floor = 0;

  // Snapshot the stable (depth > d) segment's revenue as of "now".
  const auto stable_count = [&](std::uint64_t floor) {
    chain::OwnershipCount count;
    const auto& chain_now = world.public_chain();
    const std::uint64_t top =
        world.public_height() > static_cast<std::uint64_t>(params.d)
            ? world.public_height() - params.d
            : 0;
    for (std::uint64_t h = floor + 1; h <= top; ++h) {
      if (world.store().get(chain_now[h]).owner == chain::Owner::kAdversary) {
        ++count.adversary;
      } else {
        ++count.honest;
      }
    }
    return count;
  };

  for (std::uint64_t step = 0; step < options.steps; ++step) {
    if (step == options.warmup_steps) {
      // Everything at depth > d is final; start counting above it.
      const std::uint64_t h = world.public_height();
      accounting_floor = (h > static_cast<std::uint64_t>(params.d))
                             ? h - params.d
                             : 0;
    }
    if (options.trace_interval != 0 && step > options.warmup_steps &&
        (step - options.warmup_steps) % options.trace_interval == 0) {
      const chain::OwnershipCount count = stable_count(accounting_floor);
      result.trace.push_back(
          TracePoint{step, count.relative_revenue(), count.total()});
    }

    const auto targets = world.mining_targets();
    const auto outcome =
        world.mining().sample_step(rng, static_cast<std::uint32_t>(targets.size()));

    selfish::StepType type;
    if (outcome.adversary_won) {
      ++result.adversary_blocks_mined;
      if (!world.apply_adversary_win(targets[outcome.target])) {
        ++result.adversary_blocks_wasted;
      }
      type = selfish::StepType::kAdversaryFound;
    } else {
      ++result.honest_blocks_mined;
      world.create_pending();
      type = selfish::StepType::kHonestFound;
    }

    const selfish::Action action = strategy.decide(world.view(type));
    if (action.kind == selfish::Action::Kind::kMine) {
      if (type == selfish::StepType::kHonestFound) {
        world.incorporate_pending();
      }
      continue;
    }

    // A release: decide acceptance exactly as the network would.
    const int i = action.depth;
    const int k = action.length;
    ++result.releases;
    if (type == selfish::StepType::kAdversaryFound) {
      SM_REQUIRE(k >= i, "release shorter than the public chain");
      world.accept_release(i, action.slot, k);
    } else if (k >= i + 1) {
      ++result.overrides;
      world.accept_release(i, action.slot, k);
    } else {
      SM_REQUIRE(k == i, "release shorter than the public chain");
      if (rng.bernoulli(params.gamma)) {
        ++result.races_won;
        world.accept_release(i, action.slot, k);
      } else {
        ++result.races_lost;
        if (params.burn_lost_races) world.discard_fork(i, action.slot);
        world.incorporate_pending();
      }
    }
  }

  // Count revenue over the final public chain, excluding the warmup
  // prefix and the still-contested top d blocks.
  const auto& chain = world.public_chain();
  const std::uint64_t top =
      world.public_height() > static_cast<std::uint64_t>(params.d)
          ? world.public_height() - params.d
          : 0;
  for (std::uint64_t h = accounting_floor + 1; h <= top; ++h) {
    const chain::Owner owner = world.store().get(chain[h]).owner;
    result.final_owners.push_back(owner);
    if (owner == chain::Owner::kAdversary) {
      ++result.revenue.adversary;
    } else {
      ++result.revenue.honest;
    }
  }
  result.errev = result.revenue.relative_revenue();
  return result;
}

}  // namespace sim
