#include "sim/strategies.hpp"

#include "support/check.hpp"

namespace sim {

MdpPolicyStrategy::MdpPolicyStrategy(const selfish::SelfishModel& model,
                                     const mdp::Policy& policy)
    : model_(&model), policy_(&policy) {
  mdp::validate_policy(model.mdp, policy);
}

selfish::Action MdpPolicyStrategy::decide(const selfish::State& view) {
  const mdp::StateId id = model_->space.id_of(view);
  return model_->action_of((*policy_)[id]);
}

selfish::Action ReleaseImmediatelyStrategy::decide(
    const selfish::State& view) {
  if (view.type == selfish::StepType::kAdversaryFound &&
      view.c[0][0] >= 1) {
    return selfish::Action::release(1, 0, view.c[0][0]);
  }
  return selfish::Action::mine();
}

selfish::Action NeverReleaseStrategy::decide(const selfish::State&) {
  return selfish::Action::mine();
}

std::unique_ptr<Strategy> make_builtin_strategy(const std::string& name) {
  if (name == "honest") return std::make_unique<ReleaseImmediatelyStrategy>();
  if (name == "never-release") {
    return std::make_unique<NeverReleaseStrategy>();
  }
  throw support::InvalidArgument("unknown builtin strategy: " + name +
                                 " (expected honest | never-release)");
}

}  // namespace sim
