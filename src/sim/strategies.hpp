// Ready-made strategies for the simulator.
#pragma once

#include <memory>
#include <string>

#include "mdp/markov_chain.hpp"
#include "selfish/build.hpp"
#include "sim/simulator.hpp"

namespace sim {

/// Plays the positional strategy computed by the formal analysis: looks up
/// the abstract view in the model's state space and decodes the action the
/// policy assigns. Throws if the view is not an enumerated state (which
/// would indicate a simulator/model semantics divergence — this lookup is
/// itself part of the cross-validation).
class MdpPolicyStrategy : public Strategy {
 public:
  /// Both `model` and `policy` are borrowed; the caller keeps them alive.
  MdpPolicyStrategy(const selfish::SelfishModel& model,
                    const mdp::Policy& policy);

  selfish::Action decide(const selfish::State& view) override;

 private:
  const selfish::SelfishModel* model_;
  const mdp::Policy* policy_;
};

/// Honest-equivalent behavior: publish every tip block immediately, never
/// race. Under d = f = 1 this reproduces honest mining exactly (ERRev = p).
class ReleaseImmediatelyStrategy : public Strategy {
 public:
  selfish::Action decide(const selfish::State& view) override;
};

/// Pure withholding: never releases anything. Forks simply die at the
/// window edge, so the adversary finalizes nothing (ERRev → 0). Used by
/// tests as a degenerate reference point.
class NeverReleaseStrategy : public Strategy {
 public:
  selfish::Action decide(const selfish::State& view) override;
};

/// Constructs one of the policy-free strategies by name: "honest"
/// (ReleaseImmediately) or "never-release". Policy-backed strategies are
/// built explicitly via MdpPolicyStrategy. Throws on an unknown name.
std::unique_ptr<Strategy> make_builtin_strategy(const std::string& name);

}  // namespace sim
