#include "analysis/errev.hpp"

namespace analysis {

mdp::CounterRates counter_rates(const selfish::SelfishModel& model,
                                const mdp::Policy& policy) {
  return mdp::evaluate_policy_counters(model.mdp, policy);
}

double exact_errev(const selfish::SelfishModel& model,
                   const mdp::Policy& policy) {
  return counter_rates(model, policy).ratio();
}

}  // namespace analysis
