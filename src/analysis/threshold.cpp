#include "analysis/threshold.hpp"

#include "selfish/build.hpp"
#include "support/check.hpp"

namespace analysis {

namespace {

ThresholdProbe probe_at(const selfish::AttackParams& base, double p,
                        const ThresholdOptions& options,
                        std::vector<double>* warm) {
  selfish::AttackParams params = base;
  params.p = p;
  params.validate();
  const auto model = selfish::build_model(params);
  const auto result =
      analyze(model, options.analysis, warm->empty() ? nullptr : warm);
  *warm = result.final_values;

  ThresholdProbe probe;
  probe.p = p;
  probe.errev = result.errev_of_policy;
  probe.unfair = probe.errev - p > options.unfairness_margin;
  return probe;
}

}  // namespace

ThresholdResult fairness_threshold(const selfish::AttackParams& base,
                                   const ThresholdOptions& options) {
  SM_REQUIRE(options.unfairness_margin > 0.0, "margin must be positive");
  SM_REQUIRE(options.p_tolerance > 0.0, "p tolerance must be positive");
  SM_REQUIRE(options.p_max > 0.0 && options.p_max < 1.0,
             "p_max out of (0,1): ", options.p_max);

  ThresholdResult result;
  std::vector<double> warm;

  // Fairness at p = 0 is trivial; check the top of the range first.
  ThresholdProbe top = probe_at(base, options.p_max, options, &warm);
  result.probes.push_back(top);
  if (!top.unfair) {
    result.always_fair = true;
    result.p_lo = options.p_max;
    result.p_hi = 1.0;
    result.p_threshold = options.p_max;
    return result;
  }

  double lo = 0.0, hi = options.p_max;
  while (hi - lo > options.p_tolerance) {
    const double mid = 0.5 * (lo + hi);
    const ThresholdProbe probe = probe_at(base, mid, options, &warm);
    result.probes.push_back(probe);
    if (probe.unfair) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.p_lo = lo;
  result.p_hi = hi;
  result.p_threshold = 0.5 * (lo + hi);
  return result;
}

}  // namespace analysis
