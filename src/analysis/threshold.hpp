// Fairness thresholds: how much adversarial resource can a chain tolerate
// before optimal selfish mining becomes profitable?
//
// A blockchain is *fair* at resource p when the optimal attack earns no
// more than the honest share: ERRev*(p) ≤ p (§1 of the paper frames
// selfish mining as an attack on exactly this property; its takeaways are
// phrased as thresholds, e.g. "d=f=1 only starts to pay off for p > 0.25").
// This module locates the profitability frontier
//
//   p* = inf { p : ERRev*(p) − p > margin }
//
// by bisection over p, running Algorithm 1 at each probe. The excess
// ERRev*(p) − p is empirically monotone in p for these models (see
// bench_figure2); bisection assumes that monotonicity and the result
// records every probe so the assumption can be audited.
#pragma once

#include <vector>

#include "analysis/algorithm1.hpp"
#include "selfish/params.hpp"

namespace analysis {

struct ThresholdOptions {
  /// Excess revenue over the honest share that counts as "unfair".
  double unfairness_margin = 0.005;
  /// Width of the final p bracket.
  double p_tolerance = 0.005;
  /// Search range (0.5 is the trivial upper limit of longest-chain rules).
  double p_max = 0.45;
  AnalysisOptions analysis;  ///< Options for each probe of Algorithm 1.
};

struct ThresholdProbe {
  double p = 0.0;
  double errev = 0.0;   ///< Exact ERRev of the computed strategy at p.
  bool unfair = false;  ///< errev − p > margin.
};

struct ThresholdResult {
  /// Midpoint of the final bracket; meaningless when always_fair.
  double p_threshold = 0.0;
  double p_lo = 0.0;  ///< Largest probed p still fair.
  double p_hi = 0.0;  ///< Smallest probed p already unfair.
  /// True when even p_max is fair (e.g. d=f=1 with γ < 0.5).
  bool always_fair = false;
  std::vector<ThresholdProbe> probes;  ///< All Algorithm-1 runs, in order.
};

/// Locates the profitability frontier for the configuration in `base`
/// (its p field is ignored).
ThresholdResult fairness_threshold(const selfish::AttackParams& base,
                                   const ThresholdOptions& options = {});

}  // namespace analysis
