// Structural statistics of a selfish-mining strategy.
//
// Aggregates what the optimal play actually does in the long run: how often
// each decision type withholds vs releases, which (depth, length) releases
// carry the revenue, how deep races and overrides reach, and the expected
// amount of withheld blocks. Powers strategy_explorer and the qualitative
// assertions about strategy shape in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mdp/markov_chain.hpp"
#include "selfish/build.hpp"

namespace analysis {

struct ReleaseStat {
  int depth = 0;    ///< Root depth i of the released fork.
  int length = 0;   ///< Number of blocks k published.
  bool race = false;  ///< True when this release ties a pending block.
  double frequency = 0.0;  ///< Long-run executions per MDP step.
};

struct PolicyStats {
  /// Long-run probability that a decision state (given its type) chooses
  /// some release rather than mine, conditioned on visiting that type.
  double release_rate_after_adversary_block = 0.0;
  double release_rate_after_honest_block = 0.0;

  /// Expected number of withheld private blocks (Σ C) in steady state.
  double mean_withheld_blocks = 0.0;
  /// Largest withheld total over states the strategy actually visits.
  int max_withheld_blocks = 0;

  /// Per-(depth, length) release frequencies, sorted by frequency.
  std::vector<ReleaseStat> releases;

  /// Long-run rates of race events (per MDP step).
  double race_rate = 0.0;      ///< Tie releases (k = i at a pending block).
  double override_rate = 0.0;  ///< Strict overrides (k ≥ i+1, pending).

  std::string to_string() const;
};

/// Computes the statistics from the stationary distribution of `policy`
/// (states with stationary probability < cutoff are ignored).
PolicyStats compute_policy_stats(const selfish::SelfishModel& model,
                                 const mdp::Policy& policy,
                                 double cutoff = 1e-12);

}  // namespace analysis
