#include "analysis/upper_bound.hpp"

#include "selfish/build.hpp"
#include "support/check.hpp"

namespace analysis {

UpperBoundResult bound_errev_in_l(const selfish::AttackParams& base,
                                  const UpperBoundOptions& options) {
  SM_REQUIRE(options.l_min >= 1, "l_min must be at least 1");
  SM_REQUIRE(options.l_max >= options.l_min + 1,
             "need at least two l values to extrapolate");

  UpperBoundResult result;
  for (int l = options.l_min; l <= options.l_max; ++l) {
    selfish::AttackParams params = base;
    params.l = l;
    params.validate();
    const auto model = selfish::build_model(params);
    const auto analysis = analyze(model, options.analysis);
    result.points.push_back(LPoint{l, analysis.errev_lower_bound,
                                   analysis.beta_hi,
                                   model.mdp.num_states()});
  }
  result.certified_at_lmax = result.points.back().beta_hi;

  // Geometric-tail extrapolation over the certified lower bounds.
  const std::size_t n = result.points.size();
  const double last = result.points[n - 1].errev_lb;
  const double delta_last = last - result.points[n - 2].errev_lb;
  double ratio = 0.0;
  if (n >= 3) {
    const double delta_prev =
        result.points[n - 2].errev_lb - result.points[n - 3].errev_lb;
    if (delta_prev > 0.0) ratio = delta_last / delta_prev;
  }
  if (delta_last > 0.0 && ratio > 0.0 && ratio < 1.0) {
    result.geometric = true;
    result.extrapolation_tail = delta_last * ratio / (1.0 - ratio);
  } else {
    // Degenerate or already saturated: fall back to one more increment.
    result.extrapolation_tail = delta_last > 0.0 ? delta_last : 0.0;
  }
  result.extrapolated_limit = last + result.extrapolation_tail;
  return result;
}

}  // namespace analysis
