#include "analysis/strategy_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace analysis {

namespace {

constexpr const char* kMagic = "selfish-mining-strategy v1";

}  // namespace

void save_strategy(const selfish::SelfishModel& model,
                   const mdp::Policy& policy, std::ostream& out) {
  mdp::validate_policy(model.mdp, policy);
  const auto& params = model.params;
  out << kMagic << '\n';
  char header[176];
  std::snprintf(header, sizeof(header),
                "params p=%.17g gamma=%.17g d=%d f=%d l=%d burn=%d\n",
                params.p, params.gamma, params.d, params.f, params.l,
                params.burn_lost_races ? 1 : 0);
  out << header;

  std::size_t decision_states = 0;
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    if (model.space.state_of(s).type != selfish::StepType::kMining) {
      ++decision_states;
    }
  }
  out << "states " << decision_states << '\n';
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    const selfish::State state = model.space.state_of(s);
    if (state.type == selfish::StepType::kMining) continue;
    out << state.pack(params) << ' '
        << model.mdp.action_label(policy[s]) << '\n';
  }
}

std::string strategy_to_string(const selfish::SelfishModel& model,
                               const mdp::Policy& policy) {
  std::ostringstream os;
  save_strategy(model, policy, os);
  return os.str();
}

mdp::Policy load_strategy(const selfish::SelfishModel& model,
                          std::istream& in) {
  const auto& params = model.params;
  std::string line;
  SM_REQUIRE(std::getline(in, line) && line == kMagic,
             "not a strategy file (bad magic line)");

  SM_REQUIRE(static_cast<bool>(std::getline(in, line)),
             "strategy file truncated before the params line");
  double p = 0.0, gamma = 0.0;
  int d = 0, f = 0, l = 0, burn = 0;
  SM_REQUIRE(std::sscanf(line.c_str(),
                         "params p=%lg gamma=%lg d=%d f=%d l=%d burn=%d",
                         &p, &gamma, &d, &f, &l, &burn) == 6,
             "malformed params line: ", line);
  SM_REQUIRE(p == params.p && gamma == params.gamma && d == params.d &&
                 f == params.f && l == params.l &&
                 (burn == 1) == params.burn_lost_races,
             "strategy was computed for different parameters (",
             line, " vs ", params.to_string(), ")");

  SM_REQUIRE(static_cast<bool>(std::getline(in, line)),
             "strategy file truncated before the states line");
  std::size_t expected = 0;
  SM_REQUIRE(std::sscanf(line.c_str(), "states %zu", &expected) == 1,
             "malformed states line: ", line);

  // Default everything to the first action (mine); decision states are
  // overwritten from the file.
  mdp::Policy policy(model.mdp.num_states());
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    policy[s] = model.mdp.action_begin(s);
  }

  std::size_t loaded = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::uint64_t key = 0;
    std::uint32_t label = 0;
    SM_REQUIRE(std::sscanf(line.c_str(), "%" SCNu64 " %" SCNu32, &key,
                           &label) == 2,
               "malformed strategy entry: ", line);
    const selfish::State state = selfish::State::unpack(key, params);
    const mdp::StateId id = model.space.id_of(state);
    bool found = false;
    for (mdp::ActionId a = model.mdp.action_begin(id);
         a < model.mdp.action_end(id); ++a) {
      if (model.mdp.action_label(a) == label) {
        policy[id] = a;
        found = true;
        break;
      }
    }
    SM_REQUIRE(found, "action ",
               selfish::Action::decode(label).to_string(),
               " is not available in state ", state.to_string(params));
    ++loaded;
  }
  SM_REQUIRE(loaded == expected, "strategy file advertised ", expected,
             " entries but contained ", loaded);
  return policy;
}

mdp::Policy strategy_from_string(const selfish::SelfishModel& model,
                                 const std::string& text) {
  std::istringstream is(text);
  return load_strategy(model, is);
}

mdp::Policy load_strategy_file(const selfish::SelfishModel& model,
                               const std::string& path) {
  std::ifstream in(path);
  SM_REQUIRE(in.good(), "cannot open strategy file: ", path);
  return load_strategy(model, in);
}

}  // namespace analysis
