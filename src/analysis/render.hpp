// Text renderings of analysis artifacts, shared between the CLI
// subcommands and the analysis service (src/serve/).
//
// The serving layer's contract is that a query response is byte-identical
// to the equivalent direct CLI invocation; both fronts therefore render
// through these functions — the identity holds by construction, and the
// tests/CI only pin that neither side bypasses them.
#pragma once

#include <string>

#include "analysis/algorithm1.hpp"
#include "analysis/threshold.hpp"
#include "analysis/upper_bound.hpp"
#include "selfish/build.hpp"

namespace analysis {

/// The `selfish-mining analyze` report: model summary, certified ERRev
/// bracket, search/solve counters, and (optionally) the strategy's
/// structural statistics. The third line ends with the analysis wall-clock
/// — the one volatile token; consumers that byte-compare across runs strip
/// it (see the serve-smoke CI job).
std::string render_analysis_report(const selfish::AttackParams& params,
                                   const selfish::SelfishModel& model,
                                   const AnalysisResult& result,
                                   bool include_stats);

/// The `selfish-mining threshold` report (fully deterministic).
std::string render_threshold_report(const ThresholdOptions& options,
                                    const ThresholdResult& result);

/// The `selfish-mining upper-bound` report (fully deterministic).
std::string render_upper_bound_report(const UpperBoundOptions& options,
                                      const UpperBoundResult& result);

}  // namespace analysis
