// Resource amplification by NaS tree-growing, and double-spend catch-up.
//
// Background (paper §1 and Appendix A): in an *unpredictable* longest-chain
// protocol with an efficient proof system, an adversary can attempt to
// extend every block of a private tree simultaneously. In the continuous-
// time model where each tree node is extended at rate λ_a = p·λ, the tree
// is a Yule process with E[#nodes at level m at time t] = (λ_a t)^m / m!,
// and its depth grows at rate e·λ_a — the adversary "amplifies" its
// resource by a factor of e ≈ 2.72. Persistence against private-tree
// double spending therefore requires e·p < 1−p, i.e. p < 1/(1+e) ≈ 0.269,
// compared to p < 1/2 for PoW.
//
// This module computes those quantities from first principles (the
// amplification constant is obtained by numeric root finding, not by
// hard-coding e) and provides the classic PoW catch-up probability with a
// Monte-Carlo cross-check, so the contrast the paper draws between PoW and
// efficient-proof-system chains is reproducible.
#pragma once

#include <cstdint>

namespace analysis {

/// log E[#nodes at level m] of a Yule tree after time t with per-node
/// extension rate `rate`: m·ln(rate·t) − ln m! (computed in log space).
double log_expected_level_count(double rate, double t, int m);

/// Depth of the deepest level with expected occupancy ≥ 1 after time t
/// (the integer frontier of the Yule tree).
int expected_tree_depth(double rate, double t);

/// The amplification constant c* = sup{c : c(1 − ln c) ≥ 0}: the factor by
/// which tree-growing multiplies the adversary's chain-growth rate.
/// Computed by bisection; equals Euler's e to within `tol`.
double amplification_factor(double tol = 1e-12);

/// Growth rate of the private tree's depth for adversary resource p
/// (per unit of total network rate): amplification_factor() · p.
double tree_depth_growth_rate(double p);

/// The persistence threshold for unpredictable efficient-proof-system
/// chains: the p solving e·p = 1−p, i.e. 1/(1+e) ≈ 0.2689.
double nas_security_threshold();

/// True if a private NaS tree outgrows the honest chain in expectation.
bool nas_tree_overtakes(double p);

/// PoW double-spend: probability that an attacker with hash share p < 1/2,
/// currently z blocks behind, ever catches up (Nakamoto's (p/(1−p))^z).
double pow_catchup_probability(double p, int z);

struct CatchupEstimate {
  double probability = 0.0;
  std::uint64_t trials = 0;
  std::uint64_t caught_up = 0;
};

/// Monte-Carlo estimate of the PoW catch-up probability (cross-validates
/// the closed form). A trial ends when the attacker catches up or falls
/// `give_up_deficit` blocks behind.
CatchupEstimate mc_pow_catchup(double p, int z, std::uint64_t trials,
                               std::uint64_t seed = 1,
                               int give_up_deficit = 120);

}  // namespace analysis
