// Upper bounds on the optimal expected relative revenue (paper future
// work #1).
//
// Two bounds of different strength are reported:
//
//  * Certified, within-model: Algorithm 1's bracket gives
//    ERRev*(model) ≤ β_hi — an upper bound over all strategies *expressible
//    in the MDP* (bounded forks of length ≤ l, disjoint forks).
//  * Truncation-limit estimate: ERRev*(l) is non-decreasing in the fork cap
//    l and empirically saturates geometrically (see bench_ablation_l). We
//    compute the sequence for increasing l and report a geometric-tail
//    extrapolation of its limit. This estimate is heuristic — it assumes
//    the increments keep shrinking at the observed ratio — and is labeled
//    as such; the per-l values themselves are certified.
#pragma once

#include <vector>

#include "analysis/algorithm1.hpp"
#include "selfish/params.hpp"

namespace analysis {

struct UpperBoundOptions {
  int l_min = 2;
  int l_max = 5;
  AnalysisOptions analysis;  ///< Options for each per-l run of Algorithm 1.
};

struct LPoint {
  int l = 0;
  double errev_lb = 0.0;  ///< Certified lower bound β_lo at this l.
  double beta_hi = 0.0;   ///< Certified within-model upper bound at this l.
  std::size_t num_states = 0;
};

struct UpperBoundResult {
  std::vector<LPoint> points;       ///< One entry per l in [l_min, l_max].
  double certified_at_lmax = 0.0;   ///< β_hi of the largest model.
  double extrapolated_limit = 0.0;  ///< Heuristic l→∞ estimate.
  double extrapolation_tail = 0.0;  ///< Estimated mass beyond l_max.
  bool geometric = false;  ///< Whether the increments admitted a ratio < 1.
};

/// Runs Algorithm 1 for l = l_min … l_max (γ, d, f, p from `base`; its l is
/// ignored) and assembles the bounds described above.
UpperBoundResult bound_errev_in_l(const selfish::AttackParams& base,
                                  const UpperBoundOptions& options = {});

}  // namespace analysis
