// Serialization of computed strategies.
//
// A strategy file is a self-describing text format: a header pinning the
// attack parameters (the strategy is only meaningful for the exact model it
// was computed on), followed by one `state-key action-code` pair per
// *decision* state (mining states always mine and are omitted). Loading
// validates the header against the target model and rebuilds a full
// mdp::Policy. This lets an expensive analysis (e.g. d=4, f=2) be computed
// once and replayed in the simulator or the explorer.
#pragma once

#include <iosfwd>
#include <string>

#include "mdp/markov_chain.hpp"
#include "selfish/build.hpp"

namespace analysis {

/// Writes `policy` for `model` to `out`. Throws on a foreign policy.
void save_strategy(const selfish::SelfishModel& model,
                   const mdp::Policy& policy, std::ostream& out);

/// Convenience: serialize to a string.
std::string strategy_to_string(const selfish::SelfishModel& model,
                               const mdp::Policy& policy);

/// Parses a strategy produced by save_strategy and validates it against
/// `model` (parameters must match exactly; every decision state must be
/// covered; every action must be available in its state). Throws
/// support::InvalidArgument on any mismatch or malformed input.
mdp::Policy load_strategy(const selfish::SelfishModel& model,
                          std::istream& in);

mdp::Policy strategy_from_string(const selfish::SelfishModel& model,
                                 const std::string& text);

/// Convenience: opens `path` and loads the strategy it contains. Throws
/// support::InvalidArgument when the file cannot be opened (or on any of
/// load_strategy's validation failures).
mdp::Policy load_strategy_file(const selfish::SelfishModel& model,
                               const std::string& path);

}  // namespace analysis
