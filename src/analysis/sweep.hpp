// Parameter-sweep drivers producing the paper's experiment series.
//
// A sweep runs Algorithm 1 for a list of adversary resources p (Figure 2's
// x-axis) for one attack configuration, warm-starting each analysis with
// the previous value vector — the state space is identical across p, only
// transition probabilities move, so values carry over almost unchanged.
// Sweeps execute through the experiment engine (engine::Engine), which
// plans the warm-start chain, fans independent chains across threads, and
// serves previously computed points from its content-addressed store.
#pragma once

#include <iosfwd>
#include <vector>

#include "analysis/algorithm1.hpp"
#include "selfish/params.hpp"

namespace engine {
class Engine;
}

namespace analysis {

struct SweepPoint {
  double p = 0.0;
  double errev = 0.0;            ///< Certified ε-tight lower bound (β_lo).
  double errev_of_policy = 0.0;  ///< Exact ERRev of the computed strategy.
  double seconds = 0.0;          ///< Solve wall-clock (cache hits replay
                                 ///< the original computation's time).
  std::size_t num_states = 0;
  int search_iterations = 0;     ///< Binary-search steps of Algorithm 1.
  long solver_iterations = 0;    ///< Total inner solver iterations.
  bool cached = false;           ///< Served from the engine's store.
};

struct SweepResult {
  selfish::AttackParams base;    ///< γ, d, f, l of the series (p varies).
  std::vector<SweepPoint> points;
};

/// Uniform grid lo, lo+step, …, ≤ hi (inclusive within 1e-12 slack).
std::vector<double> linspace_grid(double lo, double hi, double step);

/// Runs Algorithm 1 for each p in `ps` with the remaining parameters taken
/// from `base` (its p field is ignored) on `engine` — parallel across
/// chains, cached and resumable when the engine has a cache directory.
SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options, engine::Engine& engine);

/// Convenience: sweeps on a throwaway single-threaded, store-less engine.
SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options = {});

/// The pre-engine reference path: one sequential warm-started loop on the
/// calling thread, no caching. Kept as the equivalence baseline for tests
/// and for bench_sweep's speedup measurement; for an ascending grid it
/// produces bit-identical results to the engine path.
SweepResult sweep_p_sequential(const selfish::AttackParams& base,
                               const std::vector<double>& ps,
                               const AnalysisOptions& options = {});

/// CSV rendering of a sweep (the `selfish-mining sweep` output): one row
/// per grid point with the honest and single-tree baselines alongside.
/// Deliberately contains no wall-clock columns — for a fixed grid and
/// options the bytes are identical across reruns, resumptions, and thread
/// counts (the determinism contract the engine tests pin).
void write_sweep_csv(const SweepResult& sweep, std::ostream& out);

}  // namespace analysis
