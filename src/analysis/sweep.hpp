// Parameter-sweep drivers producing the paper's experiment series.
//
// A sweep runs Algorithm 1 for a list of adversary resources p (Figure 2's
// x-axis) for one attack configuration, warm-starting each analysis with
// the previous value vector — the state space is identical across p, only
// transition probabilities move, so values carry over almost unchanged.
#pragma once

#include <vector>

#include "analysis/algorithm1.hpp"
#include "selfish/params.hpp"

namespace analysis {

struct SweepPoint {
  double p = 0.0;
  double errev = 0.0;            ///< Certified ε-tight lower bound (β_lo).
  double errev_of_policy = 0.0;  ///< Exact ERRev of the computed strategy.
  double seconds = 0.0;
  std::size_t num_states = 0;
};

struct SweepResult {
  selfish::AttackParams base;    ///< γ, d, f, l of the series (p varies).
  std::vector<SweepPoint> points;
};

/// Uniform grid lo, lo+step, …, ≤ hi (inclusive within 1e-12 slack).
std::vector<double> linspace_grid(double lo, double hi, double step);

/// Runs Algorithm 1 for each p in `ps` with the remaining parameters taken
/// from `base` (its p field is ignored).
SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options = {});

}  // namespace analysis
