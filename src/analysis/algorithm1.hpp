// Algorithm 1 of the paper: the fully automated formal analysis.
//
// Binary search over β ∈ [0, 1]: each step solves the mean-payoff MDP for
// the reward r_β = (1−β)·adversary − β·honest. By Theorem 3.1, MP*_β is
// monotonically decreasing in β with root exactly at β* = ERRev*, so after
// the search narrows [β_lo, β_hi] below ε,
//
//   ERRev = β_lo ∈ [ERRev* − ε, ERRev*]
//
// and the optimal strategy for r_{β_lo} achieves ERRev(σ) within the same
// band. On top of the paper's algorithm we (a) warm-start the value vector
// across binary-search steps (the solves differ only in β, so values barely
// move), (b) evaluate the *exact* ERRev of the returned strategy via
// the stationary counter rates g_A/(g_A+g_H), and (c) run every vi/gs
// solve on one mdp::BellmanKernel built per analysis — the SoA view with
// the β-reward fused into the backup, whose sweeps fan out over
// AnalysisOptions::solver.threads workers with bit-identical results at
// any thread count.
#pragma once

#include <vector>

#include "mdp/markov_chain.hpp"
#include "mdp/solve.hpp"
#include "selfish/build.hpp"

namespace analysis {

struct AnalysisOptions {
  /// Binary-search precision ε on β (and hence on ERRev).
  double epsilon = 1e-3;
  /// Mean-payoff solver configuration for each binary-search step.
  mdp::SolveOptions solver;
  /// Also evaluate the exact ERRev of the returned strategy (one
  /// stationary-distribution solve; disable for pure-runtime benches).
  bool evaluate_exact_errev = true;
};

struct AnalysisResult {
  double errev_lower_bound = 0.0;  ///< β_lo: certified ε-tight lower bound.
  double beta_lo = 0.0;
  double beta_hi = 1.0;
  /// Exact ERRev(σ) of `policy` (g_A/(g_A+g_H)); NaN when not evaluated.
  double errev_of_policy = 0.0;
  mdp::Policy policy;              ///< ε-optimal selfish-mining strategy.
  int search_iterations = 0;       ///< Binary-search steps performed.
  long solver_iterations = 0;      ///< Total inner solver iterations.
  double seconds = 0.0;            ///< Wall-clock time of the analysis.
  std::vector<double> final_values;  ///< Value vector (warm start for
                                     ///< related analyses, e.g. p-sweeps).
};

/// Runs Algorithm 1 on a built model. `warm_start`, if non-null and sized
/// to the model, seeds the first solve (used when sweeping p).
AnalysisResult analyze(const selfish::SelfishModel& model,
                       const AnalysisOptions& options = {},
                       const std::vector<double>* warm_start = nullptr);

}  // namespace analysis
