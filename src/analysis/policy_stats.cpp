#include "analysis/policy_stats.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace analysis {

PolicyStats compute_policy_stats(const selfish::SelfishModel& model,
                                 const mdp::Policy& policy, double cutoff) {
  mdp::validate_policy(model.mdp, policy);
  const auto stationary = mdp::stationary_distribution(model.mdp, policy);
  SM_ENSURE(stationary.converged, "stationary distribution did not converge");
  const selfish::AttackParams& params = model.params;

  PolicyStats stats;
  double mass_adv_type = 0.0, mass_hon_type = 0.0;
  double released_adv_type = 0.0, released_hon_type = 0.0;
  std::map<std::tuple<int, int, bool>, double> release_freq;

  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    const double mu = stationary.distribution[s];
    if (mu < cutoff) continue;
    const selfish::State state = model.space.state_of(s);

    int withheld = 0;
    for (int i = 0; i < params.d; ++i) {
      for (int j = 0; j < params.f; ++j) withheld += state.c[i][j];
    }
    stats.mean_withheld_blocks += mu * withheld;
    stats.max_withheld_blocks = std::max(stats.max_withheld_blocks, withheld);

    if (state.type == selfish::StepType::kMining) continue;
    const selfish::Action action = model.action_of(policy[s]);
    const bool is_release =
        action.kind == selfish::Action::Kind::kRelease;
    if (state.type == selfish::StepType::kAdversaryFound) {
      mass_adv_type += mu;
      if (is_release) released_adv_type += mu;
    } else {
      mass_hon_type += mu;
      if (is_release) released_hon_type += mu;
    }
    if (!is_release) continue;

    const bool race = state.type == selfish::StepType::kHonestFound &&
                      action.length == action.depth;
    release_freq[{action.depth, action.length, race}] += mu;
    if (race) {
      stats.race_rate += mu;
    } else if (state.type == selfish::StepType::kHonestFound) {
      stats.override_rate += mu;
    }
  }

  if (mass_adv_type > 0.0) {
    stats.release_rate_after_adversary_block =
        released_adv_type / mass_adv_type;
  }
  if (mass_hon_type > 0.0) {
    stats.release_rate_after_honest_block = released_hon_type / mass_hon_type;
  }
  for (const auto& [key, freq] : release_freq) {
    const auto& [depth, length, race] = key;
    stats.releases.push_back(ReleaseStat{depth, length, race, freq});
  }
  std::sort(stats.releases.begin(), stats.releases.end(),
            [](const ReleaseStat& a, const ReleaseStat& b) {
              return a.frequency > b.frequency;
            });
  return stats;
}

std::string PolicyStats::to_string() const {
  std::ostringstream os;
  os << "release rate after own block:    "
     << release_rate_after_adversary_block << '\n'
     << "release rate after honest block: "
     << release_rate_after_honest_block << '\n'
     << "mean withheld blocks: " << mean_withheld_blocks
     << " (max visited: " << max_withheld_blocks << ")\n"
     << "race rate: " << race_rate
     << " / override rate: " << override_rate << " per step\n"
     << "top releases (depth,k,race: freq):";
  int shown = 0;
  for (const auto& r : releases) {
    os << "  (" << r.depth << ',' << r.length << ','
       << (r.race ? "race" : "push") << ": " << r.frequency << ')';
    if (++shown >= 6) break;
  }
  os << '\n';
  return os.str();
}

}  // namespace analysis
