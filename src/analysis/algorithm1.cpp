#include "analysis/algorithm1.hpp"

#include <cmath>

#include "analysis/errev.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace analysis {

AnalysisResult analyze(const selfish::SelfishModel& model,
                       const AnalysisOptions& options,
                       const std::vector<double>* warm_start) {
  SM_REQUIRE(options.epsilon > 0.0 && options.epsilon < 1.0,
             "epsilon out of (0,1): ", options.epsilon);
  const support::Timer timer;
  const mdp::Mdp& m = model.mdp;

  AnalysisResult result;
  result.beta_lo = 0.0;
  result.beta_hi = 1.0;

  std::vector<double> values;
  if (warm_start != nullptr) values = *warm_start;
  const std::vector<double>* seed = values.empty() ? nullptr : &values;

  while (result.beta_hi - result.beta_lo >= options.epsilon) {
    const double beta = 0.5 * (result.beta_lo + result.beta_hi);
    const mdp::MeanPayoffResult solve = mdp::solve_mean_payoff(
        m, m.beta_rewards(beta), options.solver, seed);
    SM_ENSURE(solve.converged, "mean-payoff solver did not converge at beta=",
              beta);
    ++result.search_iterations;
    result.solver_iterations += solve.iterations;
    values = solve.values;
    seed = values.empty() ? nullptr : &values;

    if (solve.gain < 0.0) {
      result.beta_hi = beta;
    } else {
      result.beta_lo = beta;
    }
  }
  result.errev_lower_bound = result.beta_lo;

  // Final solve at β_lo yields the ε-optimal strategy (Theorem 3.1(2)).
  const mdp::MeanPayoffResult final_solve = mdp::solve_mean_payoff(
      m, m.beta_rewards(result.beta_lo), options.solver, seed);
  SM_ENSURE(final_solve.converged, "final mean-payoff solve did not converge");
  result.solver_iterations += final_solve.iterations;
  result.policy = final_solve.policy;
  result.final_values = final_solve.values;

  if (options.evaluate_exact_errev) {
    result.errev_of_policy = exact_errev(model, result.policy);
  } else {
    result.errev_of_policy = std::nan("");
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace analysis
