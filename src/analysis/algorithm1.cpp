#include "analysis/algorithm1.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "analysis/errev.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace analysis {

AnalysisResult analyze(const selfish::SelfishModel& model,
                       const AnalysisOptions& options,
                       const std::vector<double>* warm_start) {
  SM_REQUIRE(options.epsilon > 0.0 && options.epsilon < 1.0,
             "epsilon out of (0,1): ", options.epsilon);
  const support::Timer timer;
  const mdp::Mdp& m = model.mdp;

  // One SoA view serves every bisection step (vi/gs only — pi/dense have
  // no kernel implementation and keep the legacy AoS path). The kernel
  // fuses the β-reward into the backup, so no per-step reward vector is
  // materialized; the legacy path reuses one buffer across steps instead.
  const bool kernel_path =
      options.solver.use_kernel &&
      (options.solver.method == mdp::SolverMethod::kValueIteration ||
       options.solver.method == mdp::SolverMethod::kGaussSeidel);
  std::optional<mdp::BellmanKernel> kernel;
  if (kernel_path) kernel.emplace(m);
  std::vector<double> rewards;  // legacy-path buffer, reused across steps

  const auto solve_at = [&](double beta, const std::vector<double>* seed) {
    if (kernel_path) {
      return mdp::solve_mean_payoff(*kernel, beta, options.solver, seed);
    }
    m.beta_rewards_into(beta, rewards);
    return mdp::solve_mean_payoff(m, rewards, options.solver, seed);
  };

  AnalysisResult result;
  result.beta_lo = 0.0;
  result.beta_hi = 1.0;

  std::vector<double> values;
  if (warm_start != nullptr) values = *warm_start;
  // Warm starts arrive from neighboring grid points (engine chains,
  // threshold bisection) whose reachable state count can differ — the
  // set of reachable states depends on p. A foreign-sized vector cannot
  // seed this model's solves (the kernel rejects it rather than silently
  // cold-starting), so the cross-model boundary is handled here, once
  // and explicitly: discard and start cold. Deterministic — the decision
  // is a pure function of the two state counts.
  if (!values.empty() &&
      values.size() != static_cast<std::size_t>(m.num_states())) {
    values.clear();
  }
  const std::vector<double>* seed = values.empty() ? nullptr : &values;

  while (result.beta_hi - result.beta_lo >= options.epsilon) {
    const double beta = 0.5 * (result.beta_lo + result.beta_hi);
    mdp::MeanPayoffResult solve = solve_at(beta, seed);
    SM_ENSURE(solve.converged, "mean-payoff solver did not converge at beta=",
              beta);
    ++result.search_iterations;
    result.solver_iterations += solve.iterations;
    values = std::move(solve.values);
    seed = values.empty() ? nullptr : &values;

    if (solve.gain < 0.0) {
      result.beta_hi = beta;
    } else {
      result.beta_lo = beta;
    }
  }
  result.errev_lower_bound = result.beta_lo;

  // Final solve at β_lo yields the ε-optimal strategy (Theorem 3.1(2)).
  mdp::MeanPayoffResult final_solve = solve_at(result.beta_lo, seed);
  SM_ENSURE(final_solve.converged, "final mean-payoff solve did not converge");
  result.solver_iterations += final_solve.iterations;
  result.policy = std::move(final_solve.policy);
  result.final_values = std::move(final_solve.values);

  if (options.evaluate_exact_errev) {
    result.errev_of_policy = exact_errev(model, result.policy);
  } else {
    result.errev_of_policy = std::nan("");
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace analysis
