#include "analysis/amplification.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace analysis {

double log_expected_level_count(double rate, double t, int m) {
  SM_REQUIRE(rate > 0.0 && t > 0.0, "rate and time must be positive");
  SM_REQUIRE(m >= 0, "level must be non-negative");
  return m * std::log(rate * t) - std::lgamma(static_cast<double>(m) + 1.0);
}

int expected_tree_depth(double rate, double t) {
  int depth = 0;
  // E[n_m] is unimodal in m; scan until it drops below 1 past the mode.
  const int mode = static_cast<int>(rate * t) + 1;
  for (int m = 1; m <= 64 + 8 * mode; ++m) {
    if (log_expected_level_count(rate, t, m) >= 0.0) {
      depth = m;
    } else if (m > mode) {
      break;
    }
  }
  return depth;
}

double amplification_factor(double tol) {
  SM_REQUIRE(tol > 0.0, "tolerance must be positive");
  // The frontier level m = c·λt satisfies c(1 − ln c) = 0 at the edge of
  // expected occupancy 1; f(c) = c(1 − ln c) is positive below the root
  // and negative above it on c > 1. Bisection on [1, 8].
  double lo = 1.0, hi = 8.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double f = mid * (1.0 - std::log(mid));
    if (f >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double tree_depth_growth_rate(double p) {
  SM_REQUIRE(p >= 0.0 && p <= 1.0, "p out of [0,1]: ", p);
  return amplification_factor() * p;
}

double nas_security_threshold() {
  // e·p = 1−p  ⇒  p = 1/(1+e).
  return 1.0 / (1.0 + amplification_factor());
}

bool nas_tree_overtakes(double p) {
  SM_REQUIRE(p >= 0.0 && p <= 1.0, "p out of [0,1]: ", p);
  return tree_depth_growth_rate(p) > 1.0 - p;
}

double pow_catchup_probability(double p, int z) {
  SM_REQUIRE(p >= 0.0 && p < 0.5, "p out of [0, 0.5): ", p);
  SM_REQUIRE(z >= 0, "deficit must be non-negative");
  if (z == 0 || p == 0.0) return z == 0 ? 1.0 : 0.0;
  return std::pow(p / (1.0 - p), z);
}

CatchupEstimate mc_pow_catchup(double p, int z, std::uint64_t trials,
                               std::uint64_t seed, int give_up_deficit) {
  SM_REQUIRE(p >= 0.0 && p < 0.5, "p out of [0, 0.5): ", p);
  SM_REQUIRE(z >= 0, "deficit must be non-negative");
  SM_REQUIRE(trials > 0, "need at least one trial");
  SM_REQUIRE(give_up_deficit > z, "give-up bound must exceed the deficit");

  support::Rng rng(seed);
  CatchupEstimate estimate;
  estimate.trials = trials;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    int deficit = z;
    while (deficit > 0 && deficit < give_up_deficit) {
      deficit += rng.bernoulli(p) ? -1 : 1;
    }
    if (deficit == 0) ++estimate.caught_up;
  }
  estimate.probability =
      static_cast<double>(estimate.caught_up) / static_cast<double>(trials);
  return estimate;
}

}  // namespace analysis
