#include "analysis/sweep.hpp"

#include "support/check.hpp"
#include "support/timer.hpp"

namespace analysis {

std::vector<double> linspace_grid(double lo, double hi, double step) {
  SM_REQUIRE(step > 0.0, "grid step must be positive");
  SM_REQUIRE(hi >= lo, "grid upper bound below lower bound");
  std::vector<double> grid;
  for (int i = 0;; ++i) {
    const double x = lo + step * i;
    if (x > hi + 1e-12) break;
    grid.push_back(x);
  }
  return grid;
}

SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options) {
  SweepResult result;
  result.base = base;
  result.points.reserve(ps.size());

  std::vector<double> warm;
  for (const double p : ps) {
    selfish::AttackParams params = base;
    params.p = p;
    params.validate();

    const support::Timer timer;
    const selfish::SelfishModel model = selfish::build_model(params);
    const AnalysisResult analysis = analyze(
        model, options, warm.empty() ? nullptr : &warm);
    warm = analysis.final_values;

    SweepPoint point;
    point.p = p;
    point.errev = analysis.errev_lower_bound;
    point.errev_of_policy = analysis.errev_of_policy;
    point.seconds = timer.seconds();
    point.num_states = model.mdp.num_states();
    result.points.push_back(point);
  }
  return result;
}

}  // namespace analysis
