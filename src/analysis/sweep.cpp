#include "analysis/sweep.hpp"

#include <ostream>

#include "baselines/honest.hpp"
#include "baselines/single_tree.hpp"
#include "engine/engine.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/timer.hpp"

namespace analysis {

std::vector<double> linspace_grid(double lo, double hi, double step) {
  SM_REQUIRE(step > 0.0, "grid step must be positive");
  SM_REQUIRE(hi >= lo, "grid upper bound below lower bound");
  std::vector<double> grid;
  for (int i = 0;; ++i) {
    const double x = lo + step * i;
    if (x > hi + 1e-12) break;
    grid.push_back(x);
  }
  return grid;
}

SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options, engine::Engine& engine) {
  std::vector<engine::AnalysisJob> jobs;
  jobs.reserve(ps.size());
  for (const double p : ps) {
    engine::AnalysisJob job;
    job.params = base;
    job.params.p = p;
    job.options = options;
    jobs.push_back(job);
  }
  const std::vector<engine::JobOutcome> outcomes = engine.run(jobs);

  SweepResult result;
  result.base = base;
  result.points.reserve(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const engine::StoredResult& stored = outcomes[i].result;
    SweepPoint point;
    point.p = ps[i];
    point.errev = stored.errev_lower_bound;
    point.errev_of_policy = stored.errev_of_policy;
    point.seconds = stored.seconds;
    point.num_states = static_cast<std::size_t>(stored.num_states);
    point.search_iterations = stored.search_iterations;
    point.solver_iterations = static_cast<long>(stored.solver_iterations);
    point.cached = outcomes[i].cached;
    result.points.push_back(point);
  }
  return result;
}

SweepResult sweep_p(const selfish::AttackParams& base,
                    const std::vector<double>& ps,
                    const AnalysisOptions& options) {
  engine::Engine engine{engine::EngineOptions{}};
  return sweep_p(base, ps, options, engine);
}

SweepResult sweep_p_sequential(const selfish::AttackParams& base,
                               const std::vector<double>& ps,
                               const AnalysisOptions& options) {
  SweepResult result;
  result.base = base;
  result.points.reserve(ps.size());

  std::vector<double> warm;
  for (const double p : ps) {
    selfish::AttackParams params = base;
    params.p = p;
    params.validate();

    const support::Timer timer;
    const selfish::SelfishModel model = selfish::build_model(params);
    const AnalysisResult analysis = analyze(
        model, options, warm.empty() ? nullptr : &warm);
    warm = analysis.final_values;

    SweepPoint point;
    point.p = p;
    point.errev = analysis.errev_lower_bound;
    point.errev_of_policy = analysis.errev_of_policy;
    point.seconds = timer.seconds();
    point.num_states = model.mdp.num_states();
    point.search_iterations = analysis.search_iterations;
    point.solver_iterations = analysis.solver_iterations;
    result.points.push_back(point);
  }
  return result;
}

void write_sweep_csv(const SweepResult& sweep, std::ostream& out) {
  support::CsvWriter csv(out);
  csv.header({"p", "errev_lower_bound", "errev_of_strategy", "honest",
              "single_tree", "states", "search_steps", "solver_iterations"});
  for (const SweepPoint& point : sweep.points) {
    const double tree =
        baselines::analyze_single_tree(
            baselines::SingleTreeParams{.p = point.p,
                                        .gamma = sweep.base.gamma,
                                        .max_depth = 4,
                                        .max_width = 5})
            .errev;
    csv.row({support::format_double(point.p, 6),
             support::format_double(point.errev, 6),
             support::format_double(point.errev_of_policy, 6),
             support::format_double(baselines::honest_errev(point.p), 6),
             support::format_double(tree, 6),
             std::to_string(point.num_states),
             std::to_string(point.search_iterations),
             std::to_string(point.solver_iterations)});
  }
}

}  // namespace analysis
