#include "analysis/render.hpp"

#include <cstdio>
#include <sstream>

#include "analysis/policy_stats.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace analysis {

namespace {

/// printf into a std::string (the reports were printf-rendered before the
/// serving layer split them out; keeping the exact formats keeps the CLI
/// output stable).
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  const int size = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<std::size_t>(size), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

}  // namespace

std::string render_analysis_report(const selfish::AttackParams& params,
                                   const selfish::SelfishModel& model,
                                   const AnalysisResult& result,
                                   bool include_stats) {
  std::string report =
      format("model %s: %u states, %zu transitions\n",
             params.to_string().c_str(), model.mdp.num_states(),
             model.mdp.num_transitions());
  report += format(
      "ERRev* in [%.6f, %.6f]; strategy achieves %.6f "
      "(honest share: %.4f)\n",
      result.beta_lo, result.beta_hi, result.errev_of_policy, params.p);
  report += format("%d binary-search steps, %ld solver iterations, %.3f s\n",
                   result.search_iterations, result.solver_iterations,
                   result.seconds);
  if (include_stats) {
    report += compute_policy_stats(model, result.policy).to_string();
  }
  return report;
}

std::string render_threshold_report(const ThresholdOptions& options,
                                    const ThresholdResult& result) {
  if (result.always_fair) {
    return format(
        "fair for all p <= %.3f (attack never beats honest mining "
        "by more than %.3f)\n",
        options.p_max, options.unfairness_margin);
  }
  return format(
      "attack becomes profitable at p ~= %.4f "
      "(bracket [%.4f, %.4f], %zu probes)\n",
      result.p_threshold, result.p_lo, result.p_hi, result.probes.size());
}

std::string render_upper_bound_report(const UpperBoundOptions& options,
                                      const UpperBoundResult& result) {
  support::Table table(
      {"l", "states", "ERRev lower bound", "in-model upper bound"});
  for (const LPoint& point : result.points) {
    table.add_row({std::to_string(point.l), std::to_string(point.num_states),
                   support::format_double(point.errev_lb, 6),
                   support::format_double(point.beta_hi, 6)});
  }
  std::ostringstream out;
  table.print(out);
  out << format("certified ERRev*(l=%d) <= %.6f\n", options.l_max,
                result.certified_at_lmax);
  out << format("heuristic l->inf estimate: %.6f (tail %.2e, %s)\n",
                result.extrapolated_limit, result.extrapolation_tail,
                result.geometric ? "geometric fit" : "fallback");
  return out.str();
}

}  // namespace analysis
