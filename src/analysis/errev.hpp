// Exact expected relative revenue of a fixed strategy.
//
// Under any positional strategy the model is an ergodic unichain (the
// all-honest reset state is reachable from everywhere — paper Appendix C),
// so by the strong law of large numbers for Markov chains the ratio
// R_A/(R_A+R_H) converges almost surely to the ratio of the stationary
// finalization rates. This gives the "exact value of the expected relative
// revenue guaranteed by this strategy" that the paper reports.
#pragma once

#include "mdp/markov_chain.hpp"
#include "mdp/policy_evaluation.hpp"
#include "selfish/build.hpp"

namespace analysis {

/// Long-run finalization rates of `policy` (blocks per MDP step).
mdp::CounterRates counter_rates(const selfish::SelfishModel& model,
                                const mdp::Policy& policy);

/// ERRev(policy) = g_A / (g_A + g_H).
double exact_errev(const selfish::SelfishModel& model,
                   const mdp::Policy& policy);

}  // namespace analysis
