#include "fleet/lease.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "support/check.hpp"

namespace fleet {

namespace {

double now_realtime() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// mtime of `path` on the CLOCK_REALTIME timeline, or nullopt-like
/// failure signalled via `ok`.
bool lease_mtime(const std::string& path, double* mtime) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;
  *mtime = static_cast<double>(st.st_mtim.tv_sec) +
           static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  return true;
}

/// Refreshes the lease heartbeat while the holder executes. A plain
/// thread + condvar so release is prompt (no poll-granularity join).
class Heartbeat {
 public:
  Heartbeat(std::string path, double interval_seconds)
      : path_(std::move(path)),
        interval_(interval_seconds),
        thread_([this] { run(); }) {}

  ~Heartbeat() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      const auto interval = std::chrono::duration<double>(interval_);
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      // Touch mtime; utimensat(..., nullptr, 0) = "now" for both stamps.
      ::utimensat(AT_FDCWD, path_.c_str(), nullptr, 0);
    }
  }

  std::string path_;
  double interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// One O_EXCL creation attempt; true = this process now holds the lease.
bool try_acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    SM_ENSURE(errno == EEXIST,
              "lease create failed: ", path, ": ", std::strerror(errno));
    return false;
  }
  // Body is diagnostic only — liveness is judged by mtime, never by
  // probing this pid (the holder may be on another host).
  char host[256] = "?";
  ::gethostname(host, sizeof(host) - 1);
  std::ostringstream body;
  body << "pid=" << ::getpid() << " host=" << host
       << " acquired=" << now_realtime() << '\n';
  const std::string text = body.str();
  [[maybe_unused]] const ssize_t written =
      ::write(fd, text.data(), text.size());
  ::close(fd);
  return true;
}

/// Claims a stale lease: renames it aside (atomic — exactly one of the
/// racing claimants succeeds) and removes the grave. True = claimed.
bool claim_stale(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream grave;
  grave << path << ".dead." << ::getpid() << '.'
        << counter.fetch_add(1, std::memory_order_relaxed);
  if (::rename(path.c_str(), grave.str().c_str()) != 0) return false;
  ::unlink(grave.str().c_str());
  return true;
}

}  // namespace

FlightReport single_flight(const std::string& dir, const std::string& name,
                           const LeaseOptions& options,
                           const std::function<bool()>& ready,
                           const std::function<void()>& execute) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name + ".lease";

  FlightReport report;
  const double deadline = now_realtime() + options.wait_timeout_seconds;
  for (;;) {
    // The result may already exist (stored by a previous flight on any
    // replica) — check before touching the lease at all.
    if (ready()) {
      report.role = FlightRole::kWaited;
      return report;
    }
    if (try_acquire(path)) {
      report.role = FlightRole::kExecuted;
      try {
        const Heartbeat beat(path, options.heartbeat_seconds);
        execute();
      } catch (...) {
        // Release so a waiter can retry (and hit the same error loudly)
        // instead of idling until the stale deadline.
        ::unlink(path.c_str());
        throw;
      }
      ::unlink(path.c_str());
      return report;
    }

    // Someone else holds it. Judge liveness by lease mtime age alone.
    double mtime = 0.0;
    if (!lease_mtime(path, &mtime)) {
      continue;  // holder finished (or crashed+claimed) between checks
    }
    if (now_realtime() - mtime > options.stale_after_seconds) {
      if (claim_stale(path)) ++report.takeovers;
      continue;  // re-race the create either way
    }
    SM_ENSURE(now_realtime() < deadline, "single-flight wait timed out after ",
              options.wait_timeout_seconds, " s on ", path);
    ++report.waits;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.poll_seconds));
  }
}

}  // namespace fleet
