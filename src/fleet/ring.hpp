// Rendezvous (highest-random-weight) hashing over a static replica list.
//
// Every client that knows the same member list routes a given job key to
// the same replica — no coordination, no token ring state. Each
// (member, key) pair is scored by mixing the member's endpoint hash with
// the key hash through a 64-bit finalizer; the member with the highest
// score owns the key, and the descending score order is the failover
// order. Removing one member only reassigns that member's keys
// (the defining property of HRW), so a downed replica's traffic spreads
// without reshuffling everyone else's cache locality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fleet {

class Ring {
 public:
  /// `members` are opaque endpoint strings ("host:port"); order is
  /// irrelevant to ownership but indices into it are what `ranked`
  /// returns. Throws support::InvalidArgument when empty.
  explicit Ring(std::vector<std::string> members);

  const std::vector<std::string>& members() const { return members_; }

  /// Member indices in descending score order for `key_hash`: first is
  /// the owner, the rest the deterministic failover sequence.
  std::vector<std::size_t> ranked(std::uint64_t key_hash) const;

  /// The owner index — `ranked(key_hash).front()` without the vector.
  std::size_t owner(std::uint64_t key_hash) const;

 private:
  std::vector<std::string> members_;
  std::vector<std::uint64_t> member_hashes_;
};

}  // namespace fleet
