#include "fleet/auth.hpp"

#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

#include "support/check.hpp"

namespace fleet {

namespace {

// ------------------------------------------------------------- SHA-256
// Straight FIPS 180-4: 512-bit blocks, 64 rounds, big-endian lengths.

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256State {
  std::array<std::uint32_t, 8> h = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u,
                                    0xa54ff53au, 0x510e527fu, 0x9b05688cu,
                                    0x1f83d9abu, 0x5be0cd19u};

  void compress(const std::uint8_t* block) {
    std::array<std::uint32_t, 64> w;
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{block[4 * i]} << 24) |
             (std::uint32_t{block[4 * i + 1]} << 16) |
             (std::uint32_t{block[4 * i + 2]} << 8) |
             std::uint32_t{block[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + s1 + ch + kRoundConstants[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
};

}  // namespace

std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  Sha256State state;
  std::size_t offset = 0;
  while (size - offset >= 64) {
    state.compress(bytes + offset);
    offset += 64;
  }
  // Final block(s): message tail, 0x80 terminator, zero pad, 64-bit
  // big-endian bit length.
  std::array<std::uint8_t, 128> tail{};
  const std::size_t rest = size - offset;
  std::memcpy(tail.data(), bytes + offset, rest);
  tail[rest] = 0x80;
  const std::size_t padded = rest + 1 + 8 <= 64 ? 64 : 128;
  const std::uint64_t bits = std::uint64_t{size} * 8;
  for (int i = 0; i < 8; ++i) {
    tail[padded - 1 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  state.compress(tail.data());
  if (padded == 128) state.compress(tail.data() + 64);

  std::array<std::uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state.h[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state.h[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state.h[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state.h[i]);
  }
  return digest;
}

std::string to_hex(const std::uint8_t* data, std::size_t size) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

std::string hmac_sha256_hex(const std::string& key,
                            const std::string& message) {
  // RFC 2104 with B = 64: keys longer than a block are hashed first,
  // shorter ones zero-padded.
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const auto digest = sha256(key.data(), key.size());
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }
  std::string inner;
  inner.reserve(block.size() + message.size());
  for (const std::uint8_t byte : block) {
    inner.push_back(static_cast<char>(byte ^ 0x36));
  }
  inner += message;
  const auto inner_digest = sha256(inner.data(), inner.size());

  std::string outer;
  outer.reserve(block.size() + inner_digest.size());
  for (const std::uint8_t byte : block) {
    outer.push_back(static_cast<char>(byte ^ 0x5c));
  }
  outer.append(reinterpret_cast<const char*>(inner_digest.data()),
               inner_digest.size());
  const auto digest = sha256(outer.data(), outer.size());
  return to_hex(digest.data(), digest.size());
}

std::string load_secret_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SM_REQUIRE(in.good(), "cannot read auth secret file: ", path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string secret = buffer.str();
  while (!secret.empty() &&
         (secret.back() == '\n' || secret.back() == '\r' ||
          secret.back() == ' ' || secret.back() == '\t')) {
    secret.pop_back();
  }
  SM_REQUIRE(!secret.empty(), "auth secret file is empty: ", path);
  return secret;
}

std::string random_challenge() {
  std::random_device device;
  std::array<std::uint8_t, 16> bytes;
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    const std::uint32_t word = device();
    bytes[i] = static_cast<std::uint8_t>(word >> 24);
    bytes[i + 1] = static_cast<std::uint8_t>(word >> 16);
    bytes[i + 2] = static_cast<std::uint8_t>(word >> 8);
    bytes[i + 3] = static_cast<std::uint8_t>(word);
  }
  return to_hex(bytes.data(), bytes.size());
}

bool equals_constant_time(const std::string& a, const std::string& b) {
  // Fold the length difference into the accumulator instead of
  // early-returning; index b cyclically so every a-byte is touched.
  unsigned diff = static_cast<unsigned>(a.size() ^ b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char other = b.empty() ? '\0' : b[i % b.size()];
    diff |= static_cast<unsigned char>(a[i] ^ other);
  }
  return diff == 0;
}

}  // namespace fleet
