// Fleet-aware client: one façade over N serve replicas.
//
// The Router owns a lazily-connected serve::Client session per replica
// and routes every request to the replica that *owns* its job key under
// rendezvous hashing (fleet/ring.hpp) — identical queries from any
// router instance with the same member list land on the same replica, so
// each replica's LRU concentrates on its own key range instead of all
// replicas caching everything. A replica that cannot be reached is
// skipped in ring order (deterministic failover); the shared store's
// cross-process single-flight keeps the failover cheap — at worst the
// next replica re-reads an entry the owner already computed.
//
// Admin requests (ping/stats/metrics/...) have no job key; they go to
// the first reachable replica in member-list order. Lines that do not
// parse are forwarded verbatim to the same place — the server owns the
// error reply, keeping the router byte-transparent end to end.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/ring.hpp"
#include "serve/client.hpp"

namespace fleet {

struct Endpoint {
  std::string host;
  int port = 0;
};

/// Parses "host:port"; throws support::InvalidArgument on anything else.
Endpoint parse_endpoint(const std::string& text);

/// Parses the `--fleet` value: a comma-separated "host:port,host:port"
/// list. Throws on an empty list or a malformed element.
std::vector<Endpoint> parse_endpoints(const std::string& csv);

struct RouterOptions {
  /// Per-replica session options (retries, backoff, auth secret).
  serve::ClientOptions client;
};

class Router {
 public:
  /// Does not connect: sessions are established on first use, so a
  /// router over a partially-down fleet still serves (failover).
  explicit Router(std::vector<Endpoint> replicas, RouterOptions options = {});

  const Ring& ring() const { return ring_; }
  const std::vector<Endpoint>& replicas() const { return replicas_; }

  /// The replica indices this request line would try, in order: ring
  /// order for analysis kinds (owner first), member-list order for admin
  /// kinds and unparseable lines. Pure — no connections are made; this
  /// is what tests and the CI smoke assert determinism against.
  std::vector<std::size_t> route(const std::string& line) const;

  /// Sends the request to its owner replica (failing over in route()
  /// order when a replica is unreachable) and returns the decoded reply.
  /// Throws support::Error when every candidate is down.
  serve::Reply request(const std::string& line);

  /// Byte-transparent variant (`query --raw`): the line goes out
  /// verbatim, the reply line comes back verbatim.
  std::string request_raw(const std::string& line);

  /// Replicas that had to be skipped over so far (downed-owner events).
  std::uint64_t failovers() const { return failovers_; }

 private:
  serve::Client& session(std::size_t index);  ///< Connects on first use.
  template <typename Fn>
  auto with_failover(const std::string& line, Fn&& fn);

  std::vector<Endpoint> replicas_;
  RouterOptions options_;
  Ring ring_;
  std::vector<std::unique_ptr<serve::Client>> sessions_;
  std::uint64_t failovers_ = 0;
};

}  // namespace fleet
