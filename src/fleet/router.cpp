#include "fleet/router.hpp"

#include <numeric>
#include <utility>

#include "engine/generic.hpp"
#include "serve/protocol.hpp"
#include "support/check.hpp"

namespace fleet {

namespace {

std::vector<std::string> member_names(const std::vector<Endpoint>& replicas) {
  std::vector<std::string> names;
  names.reserve(replicas.size());
  for (const Endpoint& replica : replicas) {
    names.push_back(replica.host + ":" + std::to_string(replica.port));
  }
  return names;
}

}  // namespace

Endpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  SM_REQUIRE(colon != std::string::npos && colon > 0 &&
                 colon + 1 < text.size(),
             "fleet endpoint must be host:port, got \"", text, "\"");
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  SM_REQUIRE(
      port_text.find_first_not_of("0123456789") == std::string::npos &&
          port_text.size() <= 5,
      "fleet endpoint port must be numeric, got \"", text, "\"");
  endpoint.port = std::stoi(port_text);
  SM_REQUIRE(endpoint.port > 0 && endpoint.port <= 65535,
             "fleet endpoint port out of range: ", endpoint.port);
  return endpoint;
}

std::vector<Endpoint> parse_endpoints(const std::string& csv) {
  std::vector<Endpoint> endpoints;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    const std::string item = csv.substr(begin, end - begin);
    if (!item.empty()) endpoints.push_back(parse_endpoint(item));
    begin = end + 1;
  }
  SM_REQUIRE(!endpoints.empty(),
             "a fleet needs at least one host:port endpoint");
  return endpoints;
}

Router::Router(std::vector<Endpoint> replicas, RouterOptions options)
    : replicas_(std::move(replicas)),
      options_(std::move(options)),
      ring_(member_names(replicas_)),
      sessions_(replicas_.size()) {}

std::vector<std::size_t> Router::route(const std::string& line) const {
  // Admin kinds have no job identity; unparseable lines must still reach
  // a server so IT can own the error reply. Both go in member-list order.
  std::vector<std::size_t> in_order(replicas_.size());
  std::iota(in_order.begin(), in_order.end(), std::size_t{0});
  try {
    const serve::Request request = serve::parse_request(line);
    if (request.admin) return in_order;
    return ring_.ranked(engine::generic_job_key(request.job).hash);
  } catch (const std::exception&) {
    return in_order;
  }
}

serve::Client& Router::session(std::size_t index) {
  if (sessions_[index] == nullptr) {
    sessions_[index] = std::make_unique<serve::Client>(
        replicas_[index].host, replicas_[index].port, options_.client);
  }
  return *sessions_[index];
}

template <typename Fn>
auto Router::with_failover(const std::string& line, Fn&& fn) {
  const std::vector<std::size_t> candidates = route(line);
  std::string last_error = "empty fleet";
  for (std::size_t attempt = 0; attempt < candidates.size(); ++attempt) {
    const std::size_t index = candidates[attempt];
    try {
      auto result = fn(session(index));
      failovers_ += attempt;  // replicas skipped to reach this one
      return result;
    } catch (const support::Error& error) {
      // Transport-level failure (cannot connect / connection lost beyond
      // the retry budget): drop the dead session so a later request
      // re-probes the replica, and fall through to the next candidate.
      // Protocol-level failures come back as ok=false replies and are
      // returned above, not caught — the owner DID answer.
      sessions_[index].reset();
      last_error = error.what();
    }
  }
  throw support::Error("no fleet replica reachable (tried " +
                       std::to_string(candidates.size()) +
                       "): " + last_error);
}

serve::Reply Router::request(const std::string& line) {
  return with_failover(
      line, [&](serve::Client& client) { return client.request(line); });
}

std::string Router::request_raw(const std::string& line) {
  return with_failover(
      line, [&](serve::Client& client) { return client.request_raw(line); });
}

}  // namespace fleet
