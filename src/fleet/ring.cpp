#include "fleet/ring.hpp"

#include <algorithm>
#include <numeric>

#include "engine/job.hpp"
#include "support/check.hpp"

namespace fleet {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, so one flipped
/// key bit reshuffles every member's score.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t score(std::uint64_t member_hash, std::uint64_t key_hash) {
  return mix64(member_hash ^ mix64(key_hash));
}

}  // namespace

Ring::Ring(std::vector<std::string> members) : members_(std::move(members)) {
  SM_REQUIRE(!members_.empty(), "a fleet ring needs at least one member");
  member_hashes_.reserve(members_.size());
  for (const std::string& member : members_) {
    member_hashes_.push_back(engine::fnv1a64(member.data(), member.size()));
  }
}

std::vector<std::size_t> Ring::ranked(std::uint64_t key_hash) const {
  std::vector<std::size_t> order(members_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score(member_hashes_[a], key_hash) >
                            score(member_hashes_[b], key_hash);
                   });
  return order;
}

std::size_t Ring::owner(std::uint64_t key_hash) const {
  std::size_t best = 0;
  std::uint64_t best_score = score(member_hashes_[0], key_hash);
  for (std::size_t i = 1; i < members_.size(); ++i) {
    const std::uint64_t s = score(member_hashes_[i], key_hash);
    if (s > best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

}  // namespace fleet
