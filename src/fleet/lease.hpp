// Cross-process single-flight via lock/lease files.
//
// N serve replicas pointed at one shared `engine::ResultStore` must
// execute each JobKey exactly once fleet-wide. In-process the service
// already coalesces via its Flight map; across processes the only shared
// medium is the store directory itself, so the coordination primitive is
// a lease *file*:
//
//   - The would-be executor O_EXCL-creates `<dir>/<name>.lease`. Exactly
//     one creator wins; the file body records pid/host/time for humans
//     reading a stuck directory.
//   - The holder heartbeats the lease (mtime refresh) while executing,
//     then removes it after the result is stored. Readers judge holder
//     liveness purely by mtime age — there is no pid probing, because
//     replicas may sit on different hosts sharing a network filesystem.
//   - Losers poll: first `ready()` (the store entry appeared — done,
//     return kWaited), then lease mtime age. A lease older than
//     `stale_after_seconds` means the holder died mid-execute; one
//     waiter claims takeover by renaming the lease aside (rename is
//     atomic, exactly one claimant wins) and re-races the O_EXCL create.
//
// Safety comes from the store, not the lease: entries are written via
// atomic rename with checksums, so a reader never observes a torn
// result. The lease only prevents *duplicate work*; even a total lease
// failure (e.g. clock skew marking a live holder stale) degrades to an
// extra redundant solve, never to a wrong answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fleet {

struct LeaseOptions {
  /// Waiter poll interval while someone else holds the lease.
  double poll_seconds = 0.05;
  /// A lease whose mtime is older than this is treated as abandoned and
  /// taken over. Must comfortably exceed `heartbeat_seconds`.
  double stale_after_seconds = 30.0;
  /// The holder refreshes the lease mtime this often while executing.
  double heartbeat_seconds = 5.0;
  /// A waiter that has seen neither the result nor a lease transition
  /// for this long gives up (throws support::Error) rather than hang a
  /// serve worker forever.
  double wait_timeout_seconds = 600.0;
};

enum class FlightRole : std::uint8_t {
  kExecuted,  ///< this process held the lease and ran `execute`
  kWaited,    ///< another flight produced the entry; `ready()` observed it
};

struct FlightReport {
  FlightRole role = FlightRole::kExecuted;
  /// Stale leases this flight renamed aside before winning or waiting.
  std::uint64_t takeovers = 0;
  /// Poll sleeps spent waiting on another holder.
  std::uint64_t waits = 0;
};

/// Runs `execute` exactly once fleet-wide for the flight named `name`
/// (callers pass the JobKey hex digest). `ready` must return true once
/// the shared result is observable (typically a store load probe); it is
/// consulted before every lease attempt, so a waiter whose holder
/// completed returns without ever executing. `dir` is created on demand.
///
/// Throws whatever `execute` throws (the lease is released first so
/// waiters can retry and surface the same error), and support::Error on
/// wait timeout.
FlightReport single_flight(const std::string& dir, const std::string& name,
                           const LeaseOptions& options,
                           const std::function<bool()>& ready,
                           const std::function<void()>& execute);

}  // namespace fleet
