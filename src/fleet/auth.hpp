// Shared-secret authentication primitives for the serve fleet.
//
// Servers that leave loopback need to know a request comes from a peer
// holding the deployment secret. The scheme is a classic challenge/
// response folded into the protocol-v1 `ping` handshake: the server
// mints a random per-connection challenge, the client answers with
// HMAC-SHA256(secret, challenge), and the server compares in constant
// time. The secret itself never crosses the wire, and a recorded
// handshake is useless against a fresh connection (fresh challenge).
//
// Everything here is dependency-free: SHA-256 is implemented from the
// FIPS 180-4 spec, HMAC from RFC 2104. Throughput is irrelevant — the
// primitives run once per connection, not per request.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace fleet {

/// SHA-256 of `data`; returns the 32-byte digest.
std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size);

/// HMAC-SHA256(key, message) rendered as 64 lowercase hex chars — the
/// wire form used in the `ping` auth handshake.
std::string hmac_sha256_hex(const std::string& key, const std::string& message);

/// Lowercase hex of an arbitrary byte string.
std::string to_hex(const std::uint8_t* data, std::size_t size);

/// Reads a shared secret from `path`, trimming trailing whitespace (so
/// `echo secret > file` works). Throws support::InvalidArgument when the
/// file is missing, unreadable, or empty after trimming: a server asked
/// to authenticate must never silently run open.
std::string load_secret_file(const std::string& path);

/// A fresh random challenge (32 hex chars from std::random_device),
/// minted per connection by a secured server.
std::string random_challenge();

/// Constant-time string equality — comparison time depends only on the
/// lengths, not on where the strings first differ.
bool equals_constant_time(const std::string& a, const std::string& b);

}  // namespace fleet
