#include "selfish/space.hpp"

#include <limits>

#include "support/check.hpp"

namespace selfish {

mdp::StateId StateSpace::intern(const State& s) {
  SM_REQUIRE(s.is_canonical(params_), "interning a non-canonical state");
  const std::uint64_t key = s.pack(params_);
  const auto [it, inserted] =
      index_.emplace(key, static_cast<mdp::StateId>(keys_.size()));
  if (inserted) keys_.push_back(key);
  return it->second;
}

mdp::StateId StateSpace::id_of(const State& s) const {
  const auto it = index_.find(s.pack(params_));
  SM_REQUIRE(it != index_.end(), "state not in the enumerated space: ",
             s.to_string(params_));
  return it->second;
}

bool StateSpace::contains(const State& s) const {
  return index_.find(s.pack(params_)) != index_.end();
}

State StateSpace::state_of(mdp::StateId id) const {
  SM_REQUIRE(id < keys_.size(), "state id out of range: ", id);
  return State::unpack(keys_[id], params_);
}

std::uint64_t raw_state_count(const AttackParams& params) {
  const std::uint64_t cap = std::numeric_limits<std::int64_t>::max();
  std::uint64_t count = 3;  // type
  for (int bit = 0; bit < params.d - 1; ++bit) {
    if (count > cap / 2) return cap;
    count *= 2;
  }
  for (int cell = 0; cell < params.d * params.f; ++cell) {
    const auto base = static_cast<std::uint64_t>(params.l + 1);
    if (count > cap / base) return cap;
    count *= base;
  }
  return count;
}

}  // namespace selfish
