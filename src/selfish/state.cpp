#include "selfish/state.hpp"

#include <sstream>

#include "support/check.hpp"

namespace selfish {

const char* to_string(StepType type) {
  switch (type) {
    case StepType::kMining: return "mining";
    case StepType::kHonestFound: return "honest";
    case StepType::kAdversaryFound: return "adversary";
  }
  return "?";
}

State State::initial(const AttackParams& params) {
  params.validate();
  return State{};  // zero forks, all-honest ownership, mining
}

void State::canonicalize(const AttackParams& params) {
  for (int i = 0; i < params.d; ++i) {
    auto& row = c[i];
    // Insertion sort, descending; rows have at most kMaxForks entries.
    for (int j = 1; j < params.f; ++j) {
      const std::uint8_t v = row[j];
      int pos = j;
      while (pos > 0 && row[pos - 1] < v) {
        row[pos] = row[pos - 1];
        --pos;
      }
      row[pos] = v;
    }
  }
}

bool State::is_canonical(const AttackParams& params) const {
  for (int i = 0; i < kMaxDepth; ++i) {
    for (int j = 0; j < kMaxForks; ++j) {
      if (i >= params.d || j >= params.f) {
        if (c[i][j] != 0) return false;
      } else {
        if (c[i][j] > params.l) return false;
        if (j > 0 && c[i][j] > c[i][j - 1]) return false;
      }
    }
  }
  if ((owner_bits >> (params.d - 1)) != 0) return false;
  return true;
}

std::uint64_t State::pack(const AttackParams& params) const {
  const int bits = params.bits_per_cell();
  std::uint64_t key = 0;
  int shift = 0;
  for (int i = 0; i < params.d; ++i) {
    for (int j = 0; j < params.f; ++j) {
      key |= static_cast<std::uint64_t>(c[i][j]) << shift;
      shift += bits;
    }
  }
  key |= static_cast<std::uint64_t>(owner_bits) << shift;
  shift += params.d - 1;
  key |= static_cast<std::uint64_t>(type) << shift;
  return key;
}

State State::unpack(std::uint64_t key, const AttackParams& params) {
  const int bits = params.bits_per_cell();
  const std::uint64_t cell_mask = (1ull << bits) - 1;
  State s;
  int shift = 0;
  for (int i = 0; i < params.d; ++i) {
    for (int j = 0; j < params.f; ++j) {
      s.c[i][j] = static_cast<std::uint8_t>((key >> shift) & cell_mask);
      SM_ENSURE(s.c[i][j] <= params.l, "unpacked fork length out of range");
      shift += bits;
    }
  }
  const std::uint64_t owner_mask = (1ull << (params.d - 1)) - 1;
  s.owner_bits = static_cast<std::uint8_t>((key >> shift) & owner_mask);
  shift += params.d - 1;
  const std::uint64_t type_raw = (key >> shift) & 0x3u;
  SM_ENSURE(type_raw <= 2, "unpacked step type out of range");
  s.type = static_cast<StepType>(type_raw);
  return s;
}

std::string State::to_string(const AttackParams& params) const {
  std::ostringstream os;
  os << "C=[";
  for (int i = 0; i < params.d; ++i) {
    if (i) os << ',';
    os << '[';
    for (int j = 0; j < params.f; ++j) {
      if (j) os << ',';
      os << static_cast<int>(c[i][j]);
    }
    os << ']';
  }
  os << "] O=[";
  for (int depth = 1; depth <= params.d - 1; ++depth) {
    if (depth > 1) os << ',';
    os << (adversary_owns(depth) ? 'a' : 'h');
  }
  os << "] type=" << selfish::to_string(type);
  return os.str();
}

}  // namespace selfish
