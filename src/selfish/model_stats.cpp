#include "selfish/model_stats.hpp"

#include <algorithm>
#include <sstream>

namespace selfish {

ModelStats compute_model_stats(const SelfishModel& model) {
  ModelStats stats;
  const mdp::Mdp& m = model.mdp;
  const AttackParams& params = model.params;

  std::size_t decision_states = 0;
  std::size_t decision_actions = 0;
  for (mdp::StateId s = 0; s < m.num_states(); ++s) {
    const State state = model.space.state_of(s);
    switch (state.type) {
      case StepType::kMining: ++stats.states_mining; break;
      case StepType::kHonestFound: ++stats.states_honest_found; break;
      case StepType::kAdversaryFound: ++stats.states_adversary_found; break;
    }
    const std::size_t actions = m.num_actions_of(s);
    stats.max_actions_per_state = std::max(stats.max_actions_per_state, actions);
    if (state.type != StepType::kMining) {
      ++decision_states;
      decision_actions += actions;
    }
    int withheld = 0;
    for (int i = 0; i < params.d; ++i) {
      for (int j = 0; j < params.f; ++j) withheld += state.c[i][j];
    }
    stats.max_withheld_blocks = std::max(stats.max_withheld_blocks, withheld);
  }
  for (mdp::ActionId a = 0; a < m.num_actions(); ++a) {
    const Action action = model.action_of(a);
    if (action.kind == Action::Kind::kMine) {
      ++stats.mine_actions;
    } else {
      ++stats.release_actions;
    }
  }
  stats.transitions = m.num_transitions();
  if (m.num_actions() > 0) {
    stats.mean_branching =
        static_cast<double>(stats.transitions) / m.num_actions();
  }
  if (decision_states > 0) {
    stats.mean_decision_actions =
        static_cast<double>(decision_actions) / decision_states;
  }
  return stats;
}

std::string ModelStats::to_string() const {
  std::ostringstream os;
  os << "states: " << states_mining << " mining / " << states_honest_found
     << " honest-found / " << states_adversary_found << " adversary-found\n"
     << "actions: " << mine_actions << " mine + " << release_actions
     << " release (max " << max_actions_per_state
     << "/state, mean " << mean_decision_actions << " per decision state)\n"
     << "transitions: " << transitions << " (branching " << mean_branching
     << "), max withheld blocks: " << max_withheld_blocks << '\n';
  return os.str();
}

}  // namespace selfish
