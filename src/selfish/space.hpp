// Reachable-state-space enumeration for the selfish-mining MDP.
//
// States are enumerated by breadth-first search from the initial state over
// all available actions, in canonical form. Ids are assigned in discovery
// order, so the initial state is id 0 and the enumeration order is stable —
// the model builder relies on this to stream states into the CSR layout.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mdp/types.hpp"
#include "selfish/params.hpp"
#include "selfish/state.hpp"

namespace selfish {

class StateSpace {
 public:
  explicit StateSpace(const AttackParams& params) : params_(params) {
    params_.validate();
  }

  const AttackParams& params() const { return params_; }
  std::size_t size() const { return keys_.size(); }

  /// Id of a canonical state, inserting it if new.
  mdp::StateId intern(const State& s);

  /// Id of a canonical state; throws if unknown.
  mdp::StateId id_of(const State& s) const;

  /// True if the canonical state has been interned.
  bool contains(const State& s) const;

  State state_of(mdp::StateId id) const;

 private:
  AttackParams params_;
  std::vector<std::uint64_t> keys_;
  std::unordered_map<std::uint64_t, mdp::StateId> index_;
};

/// Counts the raw (non-canonical) state-space size of §3.2:
/// (l+1)^(d·f) · 2^(d−1) · 3, saturating at 2^63−1. Used for reporting the
/// reduction achieved by reachability + canonicalization.
std::uint64_t raw_state_count(const AttackParams& params);

}  // namespace selfish
