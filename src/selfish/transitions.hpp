// Probabilistic transition semantics of the selfish-mining MDP.
//
// apply_action is a pure function from (state, action) to a distribution
// over successor states, each outcome annotated with the number of blocks
// it finalizes per owner. These counters drive the β-reward family of the
// formal analysis: r_β = (1−β)·adversary − β·honest.
//
// Finality rule (DESIGN.md §3): a block is final once at public depth ≥ d,
// because the deepest representable fork (rooted at depth d) can only
// orphan depths 1..d−1. Ownership of depths 1..d−1 is tracked in O;
// rewards fire exactly when a block crosses the depth-d boundary, and
// orphaned blocks (public blocks replaced by an accepted fork, or a pending
// honest block that loses a race) never pay.
#pragma once

#include <cstdint>
#include <vector>

#include "mdp/types.hpp"
#include "selfish/actions.hpp"
#include "selfish/state.hpp"

namespace selfish {

/// One probabilistic outcome of an action.
struct Outcome {
  State next;
  double prob = 0.0;
  mdp::RewardCounts counts;  ///< Blocks finalized by this outcome.
};

/// Number of concurrent adversary mining targets σ in `s`: one per
/// non-empty private fork (tip extension) plus one per depth that still
/// has an empty fork slot (new-fork creation). σ ≥ d ≥ 1 always.
std::uint32_t mining_targets(const State& s, const AttackParams& params);

/// Applies `action` (must be available in `s` per available_actions) and
/// returns the successor distribution over canonical states. Outcomes with
/// probability 0 (e.g. the losing side of a γ ∈ {0,1} race) are omitted;
/// outcomes reaching the same canonical state are NOT merged here — the
/// model builder merges them.
std::vector<Outcome> apply_action(const State& s, const Action& action,
                                  const AttackParams& params);

}  // namespace selfish
