#include "selfish/transitions.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace selfish {

namespace {

/// Incorporates the pending honest block into the public chain: every
/// tracked block moves one depth deeper, the block leaving the tracked
/// window (old depth d−1; the pending block itself when d = 1) finalizes,
/// and forks rooted at the old depth-d block become unusable.
Outcome incorporate_pending_honest(const State& s, double prob,
                                   const AttackParams& params) {
  Outcome out;
  out.prob = prob;

  // Finalization at the depth-d boundary.
  if (params.d == 1) {
    out.counts.honest += 1;  // the pending block itself is instantly final
  } else if (s.adversary_owns(params.d - 1)) {
    out.counts.adversary += 1;
  } else {
    out.counts.honest += 1;
  }

  State& next = out.next;
  next = State{};
  for (int i = params.d - 1; i >= 1; --i) next.c[i] = s.c[i - 1];
  // Row 0 (the new tip) starts with no forks; old row d−1 is dropped.

  if (params.d >= 2) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>((1u << (params.d - 1)) - 1);
    // New tip is honest (bit 0 = 0); old depth i becomes depth i+1.
    next.owner_bits = static_cast<std::uint8_t>((s.owner_bits << 1) & mask);
  }
  next.type = StepType::kMining;
  return out;
}

/// The accepted release of the first k blocks of fork (i, j): the new main
/// chain is the k released adversary blocks on top of the fork's root (the
/// old depth-i block). Old depths 1..i−1 — and the pending honest block,
/// when releasing from type = honest — are orphaned.
Outcome accept_release(const State& s, int i, int j, int k, double prob,
                       const AttackParams& params) {
  SM_ENSURE(i >= 1 && i <= params.d, "release depth out of range");
  SM_ENSURE(j >= 0 && j < params.f, "release slot out of range");
  SM_ENSURE(k >= i && k <= s.c[i - 1][j], "release length out of range");

  Outcome out;
  out.prob = prob;

  // Released blocks landing at new depth ≥ d are immediately final.
  if (k >= params.d) {
    out.counts.adversary += static_cast<std::uint16_t>(k - (params.d - 1));
  }
  // Tracked public blocks: old depth i+m sits at new depth k+1+m.
  for (int m = 0; i + m <= params.d - 1; ++m) {
    if (k + 1 + m >= params.d) {
      if (s.adversary_owns(i + m)) {
        out.counts.adversary += 1;
      } else {
        out.counts.honest += 1;
      }
    }
  }

  State& next = out.next;
  next = State{};
  // New tip: the unreleased remainder of the published fork continues as a
  // private fork on the new tip.
  next.c[0][0] = static_cast<std::uint8_t>(s.c[i - 1][j] - k);
  // Old depth i+m survives at new depth k+1+m while within the window;
  // the published fork's slot is vacated (its remainder moved to the tip).
  for (int m = 0; i + m <= params.d && k + 1 + m <= params.d; ++m) {
    next.c[k + m] = s.c[i - 1 + m];
    if (m == 0) next.c[k + m][j] = 0;
  }

  // Ownership: new depths 1..min(k, d−1) are the released adversary
  // blocks; surviving tracked blocks keep their owner at shifted depth.
  std::uint8_t bits = 0;
  if (params.d >= 2) {
    const int adv_top = std::min(k, params.d - 1);
    for (int depth = 1; depth <= adv_top; ++depth) {
      bits |= static_cast<std::uint8_t>(1u << (depth - 1));
    }
    for (int m = 0; i + m <= params.d - 1; ++m) {
      const int new_depth = k + 1 + m;
      if (new_depth <= params.d - 1 && s.adversary_owns(i + m)) {
        bits |= static_cast<std::uint8_t>(1u << (new_depth - 1));
      }
    }
  }
  next.owner_bits = bits;
  next.type = StepType::kMining;
  next.canonicalize(params);
  return out;
}

std::vector<Outcome> apply_mine(const State& s, const AttackParams& params) {
  std::vector<Outcome> outcomes;

  switch (s.type) {
    case StepType::kAdversaryFound: {
      // The freshly mined block was already recorded in its fork when it
      // arrived; declining to release just resumes mining.
      Outcome out;
      out.next = s;
      out.next.type = StepType::kMining;
      out.prob = 1.0;
      outcomes.push_back(out);
      return outcomes;
    }
    case StepType::kHonestFound: {
      outcomes.push_back(incorporate_pending_honest(s, 1.0, params));
      return outcomes;
    }
    case StepType::kMining: break;
  }

  // One proof-generation step of (p, k)-mining: each adversary target wins
  // with probability p/(1−p+p·σ); the honest miners win the step with the
  // remaining probability (1−p)/(1−p+p·σ).
  const std::uint32_t sigma = mining_targets(s, params);
  const double denominator =
      1.0 - params.p + params.p * static_cast<double>(sigma);
  const double target_prob = params.p / denominator;
  const double honest_prob = (1.0 - params.p) / denominator;

  if (target_prob > 0.0) {
    for (int i = 0; i < params.d; ++i) {
      bool row_has_empty = false;
      for (int j = 0; j < params.f; ++j) {
        if (s.c[i][j] == 0) {
          row_has_empty = true;
          break;  // canonical rows: zeros are suffix
        }
        // Extend the fork tip; at the cap l the block is wasted and the
        // configuration is unchanged (paper's min(C+1, l)).
        Outcome out;
        out.next = s;
        out.next.c[i][j] = static_cast<std::uint8_t>(
            std::min<int>(s.c[i][j] + 1, params.l));
        out.next.type = StepType::kAdversaryFound;
        out.next.canonicalize(params);
        out.prob = target_prob;
        outcomes.push_back(out);
      }
      if (row_has_empty) {
        // Start a new fork of length 1 in the first empty slot.
        Outcome out;
        out.next = s;
        for (int j = 0; j < params.f; ++j) {
          if (out.next.c[i][j] == 0) {
            out.next.c[i][j] = 1;
            break;
          }
        }
        out.next.type = StepType::kAdversaryFound;
        out.next.canonicalize(params);
        out.prob = target_prob;
        outcomes.push_back(out);
      }
    }
  }
  if (honest_prob > 0.0) {
    // The honest block is *pending*: the adversary gets to react (match /
    // override) before it is incorporated.
    Outcome out;
    out.next = s;
    out.next.type = StepType::kHonestFound;
    out.prob = honest_prob;
    outcomes.push_back(out);
  }
  return outcomes;
}

}  // namespace

std::uint32_t mining_targets(const State& s, const AttackParams& params) {
  std::uint32_t sigma = 0;
  for (int i = 0; i < params.d; ++i) {
    bool row_has_empty = false;
    for (int j = 0; j < params.f; ++j) {
      if (s.c[i][j] == 0) {
        row_has_empty = true;
        break;
      }
      ++sigma;
    }
    if (row_has_empty) ++sigma;
  }
  return sigma;
}

std::vector<Outcome> apply_action(const State& s, const Action& action,
                                  const AttackParams& params) {
  SM_REQUIRE(s.is_canonical(params), "state must be canonical");

  if (action.kind == Action::Kind::kMine) return apply_mine(s, params);

  const int i = action.depth;
  const int j = action.slot;
  const int k = action.length;
  SM_REQUIRE(s.type != StepType::kMining, "cannot release while mining");
  SM_REQUIRE(i >= 1 && i <= params.d && j >= 0 && j < params.f,
             "release coordinates out of range");
  SM_REQUIRE(k >= i && k <= s.c[i - 1][j],
             "release length ", k, " invalid for fork of length ",
             static_cast<int>(s.c[i - 1][j]), " at depth ", i);

  std::vector<Outcome> outcomes;
  if (s.type == StepType::kAdversaryFound || k >= i + 1) {
    // Strictly longer than everything public (including a pending honest
    // block when k ≥ i+1): accepted with certainty.
    outcomes.push_back(accept_release(s, i, j, k, 1.0, params));
    return outcomes;
  }

  // type = honest and k = i: the released fork ties with the public chain
  // extended by the pending honest block — a race the adversary wins with
  // the switching probability γ.
  if (params.gamma > 0.0) {
    outcomes.push_back(accept_release(s, i, j, k, params.gamma, params));
  }
  if (params.gamma < 1.0) {
    State rejected_base = s;
    if (params.burn_lost_races) {
      // Fork-choice ablation: the losing fork was published and rejected;
      // it cannot be grown or re-raced, so it is discarded outright.
      rejected_base.c[i - 1][j] = 0;
      rejected_base.canonicalize(params);
    }
    outcomes.push_back(
        incorporate_pending_honest(rejected_base, 1.0 - params.gamma, params));
  }
  return outcomes;
}

}  // namespace selfish
