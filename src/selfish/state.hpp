// The MDP state (C, O, type) of paper §3.2, with canonicalization.
//
// * C[i][j] — length of the j-th private fork rooted on the public block at
//   depth i+1 (0-based i here; depth 1 is the tip). Fork slots within one
//   depth are exchangeable, so states are canonicalized by sorting each row
//   in descending order; this shrinks the reachable state space by up to
//   (f!)^d without affecting values.
// * O — ownership of the public blocks at depths 1..d−1 (bit set ⇒ owned by
//   the adversary). Blocks at depth ≥ d are final: the deepest representable
//   fork (rooted at depth d) can only orphan depths 1..d−1.
// * type — mining: a new proof is being computed; honest: an honest block
//   was found and is *pending* (not yet incorporated — this is the decision
//   point where the adversary may match or override it); adversary: the
//   adversary just extended one of its private forks.
//
// States pack into a uint64 key for hashing and compact storage.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "selfish/params.hpp"

namespace selfish {

enum class StepType : std::uint8_t {
  kMining = 0,
  kHonestFound = 1,
  kAdversaryFound = 2,
};

/// Returns "mining" / "honest" / "adversary".
const char* to_string(StepType type);

struct State {
  /// Fork lengths, row i = public depth i+1; only [0,d)×[0,f) is meaningful.
  std::array<std::array<std::uint8_t, kMaxForks>, kMaxDepth> c{};
  /// Bit i set ⇔ the public block at depth i+1 is adversary-owned
  /// (only bits [0, d−1) are meaningful).
  std::uint8_t owner_bits = 0;
  StepType type = StepType::kMining;

  friend bool operator==(const State&, const State&) = default;

  /// The attack's initial state: no forks, all-honest chain, mining.
  static State initial(const AttackParams& params);

  /// Sorts every fork row in descending order (idempotent).
  void canonicalize(const AttackParams& params);

  /// True iff every row is sorted descending and all cells are ≤ l and
  /// out-of-range cells/bits are zero.
  bool is_canonical(const AttackParams& params) const;

  /// Packs into a 64-bit key (requires is_canonical for uniqueness of the
  /// canonical representative, but packs any in-range state faithfully).
  std::uint64_t pack(const AttackParams& params) const;

  /// Inverse of pack.
  static State unpack(std::uint64_t key, const AttackParams& params);

  /// Human-readable rendering, e.g. "C=[[2,0],[1,0]] O=[h] type=mining".
  std::string to_string(const AttackParams& params) const;

  /// Ownership of the public block at depth (1-based) `depth` ≤ d−1.
  bool adversary_owns(int depth) const {
    return (owner_bits >> (depth - 1)) & 1u;
  }
};

}  // namespace selfish
