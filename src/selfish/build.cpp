#include "selfish/build.hpp"

#include "mdp/builder.hpp"
#include "selfish/transitions.hpp"
#include "support/check.hpp"

namespace selfish {

SelfishModel build_model(const AttackParams& params) {
  params.validate();
  StateSpace space(params);
  mdp::MdpBuilder builder;

  const mdp::StateId initial = space.intern(State::initial(params));
  SM_ENSURE(initial == 0, "initial state must receive id 0");

  // Ids are assigned in discovery order, so processing states in id order
  // is exactly a BFS; every state's actions are streamed into the builder
  // the moment the state is processed.
  for (mdp::StateId s_id = 0; s_id < space.size(); ++s_id) {
    const State s = space.state_of(s_id);
    const mdp::StateId added = builder.add_state();
    SM_ENSURE(added == s_id, "builder/state-space id drift");

    for (const Action& action : available_actions(s, params)) {
      builder.add_action(action.encode());
      for (const Outcome& outcome : apply_action(s, action, params)) {
        const mdp::StateId target = space.intern(outcome.next);
        builder.add_transition(target, outcome.prob, outcome.counts);
      }
    }
  }

  mdp::Mdp built = builder.build(initial);
  return SelfishModel{params, std::move(space), std::move(built)};
}

}  // namespace selfish
