// Adversary actions of the selfish-mining MDP (paper §3.2).
//
// `mine` continues proof computation; `release(i, j, k)` publishes the
// first k blocks of the fork in canonical slot j rooted at public depth i.
// Validity (derived in DESIGN.md §3 from explicit chain geometry; the fork
// at depth i competes with the i−1 public blocks above its root):
//
//   type = mining:     only mine.
//   type = adversary:  release needs k ≥ i      (strictly longer, accepted).
//   type = honest:     release needs k ≥ i;     k = i ties against the
//                      pending honest block (race, switch w.p. γ) and
//                      k ≥ i+1 overrides it outright.
//
// Forks in slots of equal length are exchangeable, so only one action per
// distinct (depth, length) pair is enumerated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "selfish/state.hpp"

namespace selfish {

struct Action {
  enum class Kind : std::uint8_t { kMine = 0, kRelease = 1 };

  Kind kind = Kind::kMine;
  int depth = 0;   ///< i, 1-based; meaningful for release only.
  int slot = 0;    ///< j, 0-based canonical slot; release only.
  int length = 0;  ///< k, number of blocks published; release only.

  friend bool operator==(const Action&, const Action&) = default;

  static Action mine() { return Action{}; }
  static Action release(int depth, int slot, int length) {
    return Action{Kind::kRelease, depth, slot, length};
  }

  /// Compact encoding used as the MDP action label.
  std::uint32_t encode() const;
  static Action decode(std::uint32_t code);

  /// "mine" or "release(i=2,j=0,k=3)".
  std::string to_string() const;
};

/// Enumerates the actions available in `s` (state must be canonical).
/// `mine` is always first, giving solvers a deterministic tie-break that
/// prefers continued mining.
std::vector<Action> available_actions(const State& s,
                                      const AttackParams& params);

}  // namespace selfish
