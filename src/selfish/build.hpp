// Assembles the selfish-mining MDP: reachable states × available actions ×
// transition semantics → an immutable mdp::Mdp ready for the mean-payoff
// solvers of Algorithm 1.
#pragma once

#include "mdp/mdp.hpp"
#include "selfish/actions.hpp"
#include "selfish/params.hpp"
#include "selfish/space.hpp"

namespace selfish {

/// A built model: the MDP plus the state dictionary needed to interpret
/// its states and action labels.
struct SelfishModel {
  AttackParams params;
  StateSpace space;
  mdp::Mdp mdp;

  /// Decodes the action label of a global MDP action id.
  Action action_of(mdp::ActionId a) const {
    return Action::decode(mdp.action_label(a));
  }
};

/// Enumerates all reachable canonical states by BFS and builds the MDP.
/// Complexity is linear in the number of reachable transitions.
SelfishModel build_model(const AttackParams& params);

}  // namespace selfish
