#include "selfish/params.hpp"

#include <bit>
#include <cstdio>

#include "support/check.hpp"

namespace selfish {

int AttackParams::bits_per_cell() const {
  return std::bit_width(static_cast<unsigned>(l));
}

void AttackParams::validate() const {
  SM_REQUIRE(p >= 0.0 && p <= 1.0, "p out of [0,1]: ", p);
  SM_REQUIRE(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0,1]: ", gamma);
  SM_REQUIRE(d >= 1 && d <= kMaxDepth, "d out of [1,", kMaxDepth, "]: ", d);
  SM_REQUIRE(f >= 1 && f <= kMaxForks, "f out of [1,", kMaxForks, "]: ", f);
  SM_REQUIRE(l >= 1 && l <= kMaxForkLength,
             "l out of [1,", kMaxForkLength, "]: ", l);
  const int bits = d * f * bits_per_cell() + (d - 1) + 2;
  SM_REQUIRE(bits <= 64, "state does not fit 64 bits (needs ", bits,
             "); reduce d, f or l");
}

std::string AttackParams::to_string() const {
  char buf[112];
  std::snprintf(buf, sizeof(buf), "p=%.4g gamma=%.4g d=%d f=%d l=%d%s",
                p, gamma, d, f, l, burn_lost_races ? " burn" : "");
  return buf;
}

}  // namespace selfish
