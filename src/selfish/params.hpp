// Parameters of the selfish-mining attack MDP (paper §3.2).
#pragma once

#include <cstdint>
#include <string>

namespace selfish {

/// Compile-time bounds of the state representation. The packed state must
/// fit 64 bits: d·f·bit_width(l) fork-length bits + (d−1) ownership bits +
/// 2 type bits (checked by AttackParams::validate).
inline constexpr int kMaxDepth = 8;   ///< Upper bound on d.
inline constexpr int kMaxForks = 6;   ///< Upper bound on f.
inline constexpr int kMaxForkLength = 15;  ///< Upper bound on l.

/// The five model parameters (p, γ, d, f, l) of §3.2.
struct AttackParams {
  double p = 0.1;      ///< Adversary's relative resource, in [0, 1].
  double gamma = 0.5;  ///< Tie-race switching probability, in [0, 1].
  int d = 2;           ///< Attack depth: forks on the last d public blocks.
  int f = 1;           ///< Forking number: private forks per public block.
  int l = 4;           ///< Maximal private fork length (finiteness bound).

  /// Fork-choice ablation (paper takeaway 3 asks for analysis of the tie
  /// breaking rule): when true, a fork that loses a tie race is *burned* —
  /// honest miners have already seen and rejected it, so it cannot be
  /// grown and re-raced later. The paper's model (false) lets the losing
  /// fork survive one depth deeper.
  bool burn_lost_races = false;

  /// Throws support::InvalidArgument when any parameter is out of range or
  /// the configuration does not fit the packed-state representation.
  void validate() const;

  /// Bits needed per fork-length cell: bit_width(l).
  int bits_per_cell() const;

  /// e.g. "p=0.30 gamma=0.50 d=2 f=1 l=4".
  std::string to_string() const;
};

}  // namespace selfish
