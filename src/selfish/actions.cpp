#include "selfish/actions.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace selfish {

std::uint32_t Action::encode() const {
  return static_cast<std::uint32_t>(kind) |
         (static_cast<std::uint32_t>(depth) << 8) |
         (static_cast<std::uint32_t>(slot) << 16) |
         (static_cast<std::uint32_t>(length) << 24);
}

Action Action::decode(std::uint32_t code) {
  Action a;
  a.kind = static_cast<Kind>(code & 0xff);
  a.depth = static_cast<int>((code >> 8) & 0xff);
  a.slot = static_cast<int>((code >> 16) & 0xff);
  a.length = static_cast<int>((code >> 24) & 0xff);
  return a;
}

std::string Action::to_string() const {
  if (kind == Kind::kMine) return "mine";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "release(i=%d,j=%d,k=%d)", depth, slot,
                length);
  return buf;
}

std::vector<Action> available_actions(const State& s,
                                      const AttackParams& params) {
  SM_REQUIRE(s.is_canonical(params), "state must be canonical");
  std::vector<Action> actions;
  actions.push_back(Action::mine());
  if (s.type == StepType::kMining) return actions;

  // Decision states: every release that is at least as long as the chain
  // it competes with. A fork of length k at depth i replaces the i−1 public
  // blocks above its root; with a pending honest block (type = honest) the
  // competitor is one longer, making k = i a tie instead of a win.
  for (int i = 1; i <= params.d; ++i) {
    for (int j = 0; j < params.f; ++j) {
      const int len = s.c[i - 1][j];
      if (len == 0) break;  // canonical rows are sorted descending
      if (j > 0 && len == s.c[i - 1][j - 1]) continue;  // exchangeable fork
      for (int k = i; k <= len; ++k) {
        actions.push_back(Action::release(i, j, k));
      }
    }
  }
  return actions;
}

}  // namespace selfish
