// Caching built selfish-mining models on disk.
//
// Wraps mdp::save_binary/load_binary with the attack parameters and the
// state dictionary, so a reloaded SelfishModel is indistinguishable from a
// freshly built one. Loading validates that the cached parameters match
// the requested ones exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "selfish/build.hpp"

namespace selfish {

/// Writes the full model (params + state keys + MDP) to a binary stream.
void save_model(const SelfishModel& model, std::ostream& out);

/// Reads a model written by save_model; `expected` must match the cached
/// parameters exactly (throws support::InvalidArgument otherwise).
SelfishModel load_model(std::istream& in, const AttackParams& expected);

/// Convenience: returns the cached model at `path` if present and valid;
/// otherwise builds it, writes the cache (best effort) and returns it.
SelfishModel build_or_load_model(const AttackParams& params,
                                 const std::string& path);

}  // namespace selfish
