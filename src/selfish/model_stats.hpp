// Structural statistics of a built selfish-mining MDP: composition of the
// reachable state space and of the action space — the quantities that
// drive solver cost and explain the Table-1 runtime growth.
#pragma once

#include <cstddef>
#include <string>

#include "selfish/build.hpp"

namespace selfish {

struct ModelStats {
  std::size_t states_mining = 0;
  std::size_t states_honest_found = 0;
  std::size_t states_adversary_found = 0;

  std::size_t mine_actions = 0;
  std::size_t release_actions = 0;
  std::size_t max_actions_per_state = 0;
  /// Mean number of actions over decision (non-mining) states.
  double mean_decision_actions = 0.0;

  std::size_t transitions = 0;
  double mean_branching = 0.0;  ///< Transitions per action.

  /// Largest total withheld length (ΣC) over reachable states.
  int max_withheld_blocks = 0;

  std::string to_string() const;
};

/// Single pass over the model; linear in states + transitions.
ModelStats compute_model_stats(const SelfishModel& model);

}  // namespace selfish
