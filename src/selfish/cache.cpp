#include "selfish/cache.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "mdp/serialize.hpp"
#include "support/check.hpp"

namespace selfish {

namespace {

constexpr std::uint64_t kMagic = 0x53454c4d4f443031ULL;  // "SELMOD01"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SM_REQUIRE(in.good(), "truncated model stream");
  return value;
}

}  // namespace

void save_model(const SelfishModel& model, std::ostream& out) {
  write_pod(out, kMagic);
  write_pod(out, model.params.p);
  write_pod(out, model.params.gamma);
  write_pod<std::int32_t>(out, model.params.d);
  write_pod<std::int32_t>(out, model.params.f);
  write_pod<std::int32_t>(out, model.params.l);
  write_pod<std::uint8_t>(out, model.params.burn_lost_races ? 1 : 0);

  // The state dictionary: packed keys in id order.
  write_pod<std::uint64_t>(out, model.space.size());
  for (mdp::StateId s = 0; s < model.space.size(); ++s) {
    write_pod<std::uint64_t>(out,
                             model.space.state_of(s).pack(model.params));
  }
  mdp::save_binary(model.mdp, out);
}

SelfishModel load_model(std::istream& in, const AttackParams& expected) {
  expected.validate();
  SM_REQUIRE(read_pod<std::uint64_t>(in) == kMagic,
             "not a selfish-mining model stream (bad magic)");
  AttackParams cached;
  cached.p = read_pod<double>(in);
  cached.gamma = read_pod<double>(in);
  cached.d = read_pod<std::int32_t>(in);
  cached.f = read_pod<std::int32_t>(in);
  cached.l = read_pod<std::int32_t>(in);
  cached.burn_lost_races = read_pod<std::uint8_t>(in) != 0;
  SM_REQUIRE(cached.p == expected.p && cached.gamma == expected.gamma &&
                 cached.d == expected.d && cached.f == expected.f &&
                 cached.l == expected.l &&
                 cached.burn_lost_races == expected.burn_lost_races,
             "cached model has different parameters (", cached.to_string(),
             " vs ", expected.to_string(), ")");

  StateSpace space(cached);
  const auto num_states = read_pod<std::uint64_t>(in);
  for (std::uint64_t s = 0; s < num_states; ++s) {
    const auto key = read_pod<std::uint64_t>(in);
    const State state = State::unpack(key, cached);
    SM_REQUIRE(state.is_canonical(cached),
               "cached state dictionary holds a non-canonical state");
    const mdp::StateId id = space.intern(state);
    SM_REQUIRE(id == s, "cached state dictionary is out of order");
  }

  mdp::Mdp m = mdp::load_binary(in);
  SM_REQUIRE(m.num_states() == space.size(),
             "cached MDP and state dictionary disagree (", m.num_states(),
             " vs ", space.size(), " states)");
  return SelfishModel{cached, std::move(space), std::move(m)};
}

SelfishModel build_or_load_model(const AttackParams& params,
                                 const std::string& path) {
  params.validate();
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      try {
        return load_model(in, params);
      } catch (const support::Error&) {
        // Stale or foreign cache: fall through and rebuild.
      }
    }
  }
  SelfishModel model = build_model(params);
  std::ofstream out(path, std::ios::binary);
  if (out.good()) save_model(model, out);  // best effort
  return model;
}

}  // namespace selfish
