// Tiny command-line / environment option parser for examples and benches.
//
// Accepted syntax: --name=value, --name value, --flag. Unknown options are
// rejected so typos surface immediately. Environment variables (upper-case,
// prefix "SELFISH_") act as defaults that the command line can override,
// which lets `ctest`/CI tune bench scale without editing commands.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace support {

class Options {
 public:
  /// Declares an option with a default value (all values are strings
  /// internally; typed getters parse on access).
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv, applying SELFISH_<NAME> environment defaults first.
  /// Throws support::InvalidArgument on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the user supplied the option explicitly (CLI or environment).
  bool was_set(const std::string& name) const;

  /// True if the option was declared at all. Lets shared helpers act on
  /// optional declarations ("apply --trace-out if this command has it")
  /// without every command opting in.
  bool knows(const std::string& name) const;

  /// Renders a --help style usage block.
  std::string usage(const std::string& program) const;

 private:
  struct Decl {
    std::string default_value;
    std::string help;
  };
  const Decl& find(const std::string& name) const;

  std::map<std::string, Decl> decls_;
  std::map<std::string, std::string> values_;
};

}  // namespace support
