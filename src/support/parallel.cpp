#include "support/parallel.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "obs/trace.hpp"
#include "support/check.hpp"

namespace support {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_thread_count(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  SM_REQUIRE(job != nullptr, "ThreadPool::submit requires a callable job");
  // Capture the submitting thread's trace context so spans opened inside
  // the job land in the same request tree (serve request → engine chain →
  // kernel sweep stays one trace across the pool hop). Observe-only: the
  // wrapper changes nothing about when or where the job runs.
  const obs::TraceContext context = obs::current_context();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    SM_REQUIRE(!stopping_, "ThreadPool::submit after shutdown began");
    queue_.push_back([context, job = std::move(job)] {
      const obs::ContextScope scope(context);
      job();
    });
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  SM_REQUIRE(fn != nullptr, "parallel_for requires a callable body");
  if (n == 0) return;
  const int workers = resolve_thread_count(threads);
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), n)));
  parallel_for(pool, n, fn);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  SM_REQUIRE(fn != nullptr, "parallel_for requires a callable body");
  if (n == 0) return;
  if (pool.num_threads() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(n);
  {
    std::atomic<std::size_t> next{0};
    const int jobs = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(pool.num_threads()), n));
    for (int w = 0; w < jobs; ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace support
