// Small numeric helpers shared across solvers and tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace support {

/// Absolute-difference comparison with a symmetric tolerance.
inline bool almost_equal(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// max_i |a[i] - b[i]| over two equally sized vectors; 0 for empty input.
inline double max_abs_diff(const std::vector<double>& a,
                           const std::vector<double>& b) {
  double m = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = std::fabs(a[i] - b[i]);
    if (diff > m) m = diff;
  }
  return m;
}

/// Span seminorm of a vector: max(v) - min(v); 0 for empty input.
inline double span(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double lo = v[0], hi = v[0];
  for (double x : v) {
    if (x < lo) lo = x;
    if (x > hi) hi = x;
  }
  return hi - lo;
}

/// Clamps x into [lo, hi].
inline double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace support
