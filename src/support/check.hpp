// Lightweight precondition / invariant checking.
//
// The library reports contract violations via exceptions (support::Error)
// so that callers — tests, benches, long-running sweeps — can recover or
// report context instead of aborting the whole process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace support {

/// Base error type thrown by all subsystems of this library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

/// Thrown when a function argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(std::string msg) : Error(std::move(msg)) {}
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public Error {
 public:
  explicit InternalError(std::string msg) : Error(std::move(msg)) {}
};

namespace detail {

/// Concatenate arbitrary streamable values into a string.
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail

}  // namespace support

/// Check a caller-facing precondition; throws support::InvalidArgument.
#define SM_REQUIRE(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::support::InvalidArgument(::support::detail::concat(          \
          "precondition failed: ", #cond, " — ", __VA_ARGS__));            \
    }                                                                      \
  } while (false)

/// Check an internal invariant; throws support::InternalError.
#define SM_ENSURE(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::support::InternalError(::support::detail::concat(            \
          "invariant failed: ", #cond, " — ", __VA_ARGS__));               \
    }                                                                      \
  } while (false)
