// Aligned console tables for bench/example output (paper-style tables).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace support {

/// Collects rows and renders an aligned, boxed ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a data row; must have exactly as many cells as there are
  /// columns (checked).
  void add_row(std::vector<std::string> cells);

  /// Renders the table with column separators and a header rule.
  void print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace support
