// Minimal CSV writer used by benches to emit figure/table series that can
// be plotted or diffed against the paper's reported curves.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace support {

/// Streams rows of comma-separated values with proper quoting.
///
/// The writer does not own the output stream; callers keep it alive for the
/// writer's lifetime (typically std::cout or an std::ofstream on the stack).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header row. Must be called before any data rows (checked).
  void header(const std::vector<std::string>& columns);

  /// Writes one row of already-formatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void row_numeric(const std::vector<double>& cells, int precision = 10);

  /// Escapes a single cell per RFC 4180 (quotes cells with , " or newline).
  static std::string escape(const std::string& cell);

 private:
  std::ostream* out_;
  bool wrote_header_ = false;
  bool wrote_row_ = false;
};

/// Formats a double compactly (no trailing zeros) for CSV/table cells.
std::string format_double(double value, int precision = 10);

}  // namespace support
