#include "support/table.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace support {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  SM_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SM_REQUIRE(cells.size() == columns_.size(),
             "row has ", cells.size(), " cells, expected ", columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  print_rule();
  print_row(columns_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace support
