#include "support/options.hpp"

#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace support {

namespace {

/// Maps an option name like "max-depth" to env var "SELFISH_MAX_DEPTH".
std::string env_name(const std::string& name) {
  std::string out = "SELFISH_";
  for (char c : name) {
    if (c == '-') out += '_';
    else out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

void Options::declare(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  SM_REQUIRE(!name.empty() && name[0] != '-',
             "option names are given without leading dashes: ", name);
  SM_REQUIRE(decls_.find(name) == decls_.end(),
             "option declared twice: ", name);
  decls_[name] = Decl{default_value, help};
}

void Options::parse(int argc, const char* const* argv) {
  // Environment defaults first, so CLI flags can override them.
  for (const auto& [name, decl] : decls_) {
    if (const char* env = std::getenv(env_name(name).c_str())) {
      values_[name] = env;
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    SM_REQUIRE(arg.rfind("--", 0) == 0, "expected --option, got: ", arg);
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = decls_.find(name);
      SM_REQUIRE(it != decls_.end(), "unknown option: --", name);
      // A bare flag is a boolean "true"; otherwise consume the next token.
      const bool is_flag = it->second.default_value == "false" ||
                           it->second.default_value == "true";
      if (is_flag) {
        value = "true";
      } else {
        SM_REQUIRE(i + 1 < argc, "option --", name, " expects a value");
        value = argv[++i];
      }
    }
    SM_REQUIRE(decls_.find(name) != decls_.end(), "unknown option: --", name);
    values_[name] = value;
  }
}

const Options::Decl& Options::find(const std::string& name) const {
  const auto it = decls_.find(name);
  SM_REQUIRE(it != decls_.end(), "option was never declared: ", name);
  return it->second;
}

std::string Options::get_string(const std::string& name) const {
  const Decl& decl = find(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : decl.default_value;
}

int Options::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    SM_REQUIRE(pos == s.size(), "trailing characters in integer: ", s);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument(detail::concat("option --", name,
                                         " is not an integer: ", s));
  }
}

double Options::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    SM_REQUIRE(pos == s.size(), "trailing characters in number: ", s);
    return v;
  } catch (const std::logic_error&) {
    throw InvalidArgument(detail::concat("option --", name,
                                         " is not a number: ", s));
  }
}

bool Options::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw InvalidArgument(detail::concat("option --", name,
                                       " is not a boolean: ", s));
}

bool Options::was_set(const std::string& name) const {
  find(name);  // validate declaration
  return values_.find(name) != values_.end();
}

bool Options::knows(const std::string& name) const {
  return decls_.find(name) != decls_.end();
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, decl] : decls_) {
    os << "  --" << name << " (default: " << decl.default_value << ")\n"
       << "      " << decl.help << '\n';
  }
  return os.str();
}

}  // namespace support
