// Minimal fixed-size thread pool and a parallel index loop.
//
// Used by the network batch runner (net/batch) and the bench harnesses to
// fan independent simulation runs across cores. Jobs must not throw out of
// the pool; wrap fallible work and record errors per job (parallel_for
// rethrows the first captured exception on the calling thread).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace support {

/// Number of worker threads to use for `requested`: positive values pass
/// through, zero/negative mean "all hardware threads" (at least 1).
int resolve_thread_count(int requested);

/// A classic condition-variable work queue with `threads` workers. Workers
/// start in the constructor and drain the queue until destruction.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs must be noexcept in effect: an escaping exception
  /// terminates the process (std::terminate from the worker loop). The
  /// submitting thread's obs::TraceContext is captured here and restored
  /// around the job on the worker, so traced work keeps its request tree
  /// across the pool hop.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0..n-1) on up to `threads` workers (serially when threads <= 1
/// or n == 1 — the fallback keeps single-thread runs allocation-free and
/// trivially deterministic). Exceptions thrown by fn are captured; the
/// first one (lowest index) is rethrown after all indices finish.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Same loop on an existing pool — the per-call thread spawn/join cost
/// disappears, which is what makes fine-grained inner loops (e.g. one
/// Bellman sweep per call, thousands of calls per solve) affordable.
/// Blocks until all indices finish. The pool must be private to the
/// caller for the duration of the call: wait_idle() synchronizes on the
/// whole pool, so unrelated concurrent submissions would be awaited too
/// (and would interleave with this loop's jobs).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace support
