// Wall-clock timing for runtime tables (paper Table 1) and solver stats.
#pragma once

#include <chrono>
#include <functional>
#include <utility>

namespace support {

/// Monotonic wall-clock stopwatch, running from construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: hands the elapsed seconds to `sink` when the scope
/// ends. The one timing helper shared by the bench harnesses and the obs
/// trace spans, so "how long did this block take" is measured the same
/// way (steady_clock) everywhere.
class ScopedTimer {
 public:
  using Sink = std::function<void(double seconds)>;

  explicit ScopedTimer(Sink sink) : sink_(std::move(sink)) {}
  ~ScopedTimer() {
    if (sink_) sink_(timer_.seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed seconds so far, without waiting for scope exit.
  double seconds() const { return timer_.seconds(); }

  /// Drops the sink; nothing fires at destruction.
  void cancel() { sink_ = nullptr; }

 private:
  Sink sink_;
  Timer timer_;
};

}  // namespace support
