// Wall-clock timing for runtime tables (paper Table 1) and solver stats.
#pragma once

#include <chrono>

namespace support {

/// Monotonic wall-clock stopwatch, running from construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace support
