#include "support/rng.hpp"

#include "support/check.hpp"

namespace support {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SM_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  SM_REQUIRE(!weights.empty(), "discrete requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    SM_REQUIRE(w >= 0.0, "discrete weights must be non-negative");
    total += w;
  }
  SM_REQUIRE(total > 0.0, "discrete weights must have a positive sum");
  double u = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t a = seed;
  std::uint64_t b = stream ^ 0x6a09e667f3bcc909ULL;  // decorrelate stream 0
  const std::uint64_t mixed_seed = splitmix64_next(a);
  const std::uint64_t mixed_stream = splitmix64_next(b);
  return Rng(mixed_seed ^ rotl(mixed_stream, 17));
}

}  // namespace support
