#include "support/csv.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace support {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  SM_REQUIRE(!wrote_header_ && !wrote_row_,
             "CSV header must be written exactly once, before data");
  wrote_header_ = true;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(columns[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  wrote_row_ = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format_double(v, precision));
  row(formatted);
}

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

}  // namespace support
