// 64-byte-aligned double buffers for the solver hot path.
//
// The Bellman kernel's sweep chunks are rounded to multiples of 8 doubles
// so every chunk boundary falls on a cache-line edge; for that to keep two
// workers' stores off the same line, the buffers themselves must start on
// a 64-byte boundary — std::vector<double> only guarantees 16. The buffer
// is also padded up to a multiple of 8 doubles so vector loads that run to
// the rounded chunk end never read past the allocation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <new>
#include <vector>

namespace support {

/// Doubles per 64-byte cache line (and per AVX-512 vector).
inline constexpr std::size_t kDoublesPerLine = 8;

/// A fixed-capacity array of doubles whose storage starts on a 64-byte
/// boundary and whose allocation is padded to a whole number of cache
/// lines. Grow-only: resize never shrinks the allocation, so reusing one
/// buffer across the solves of an analysis allocates once.
class AlignedDoubles {
 public:
  AlignedDoubles() = default;
  explicit AlignedDoubles(std::size_t size) { resize(size); }

  AlignedDoubles(const AlignedDoubles&) = delete;
  AlignedDoubles& operator=(const AlignedDoubles&) = delete;

  AlignedDoubles(AlignedDoubles&& other) noexcept { swap(other); }
  AlignedDoubles& operator=(AlignedDoubles&& other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedDoubles() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{64});
    }
  }

  void swap(AlignedDoubles& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

  /// Resizes to `size` logical elements. New storage (including the
  /// padding lane up to the next cache line) is zero-filled so reads past
  /// `size` up to padded_size() are defined.
  void resize(std::size_t size) {
    const std::size_t padded = pad(size);
    if (padded > capacity_) {
      double* grown = static_cast<double*>(
          ::operator new[](padded * sizeof(double), std::align_val_t{64}));
      std::memset(grown, 0, padded * sizeof(double));
      if (data_ != nullptr) {
        std::memcpy(grown, data_, size_ * sizeof(double));
        ::operator delete[](data_, std::align_val_t{64});
      }
      data_ = grown;
      capacity_ = padded;
    }
    size_ = size;
  }

  void assign(std::size_t size, double value) {
    resize(size);
    std::fill(data_, data_ + pad(size), value);
  }

  void assign(const std::vector<double>& source) {
    resize(source.size());
    std::memcpy(data_, source.data(), source.size() * sizeof(double));
    std::fill(data_ + source.size(), data_ + pad(source.size()), 0.0);
  }

  /// Copies the logical contents out to a plain vector (byte-exact).
  void copy_to(std::vector<double>* out) const {
    out->resize(size_);
    std::memcpy(out->data(), data_, size_ * sizeof(double));
  }

  double* data() { return data_; }
  const double* data() const { return data_; }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  /// Allocation length: size() rounded up to a multiple of 8 doubles.
  std::size_t padded_size() const { return pad(size_); }

 private:
  static std::size_t pad(std::size_t size) {
    return (size + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine;
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace support
