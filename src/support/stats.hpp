// Streaming sample statistics (Welford) for batch-run aggregation.
#pragma once

#include <cmath>
#include <cstdint>

namespace support {

/// Numerically stable running mean/variance accumulator. Merging two
/// accumulators (operator+=) is exact up to floating-point rounding, so
/// per-thread partials can be combined deterministically.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  RunningStat& operator+=(const RunningStat& other) {
    if (other.count_ == 0) return *this;
    if (count_ == 0) {
      *this = other;
      return *this;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    return *this;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 for fewer than two samples.
  double stderror() const {
    return count_ < 2 ? 0.0
                      : stddev() / std::sqrt(static_cast<double>(count_));
  }

  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (1.96 standard errors; adequate for the >= 8 seeds batches use).
  double ci95_halfwidth() const { return 1.96 * stderror(); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace support
