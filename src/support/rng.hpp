// Deterministic, fast pseudo-random number generation.
//
// We implement xoshiro256** seeded by splitmix64 rather than relying on
// std::mt19937_64 so that (a) simulation results are reproducible across
// standard-library implementations and (b) the per-draw cost is low enough
// for long Monte-Carlo chains.
#pragma once

#include <cstdint>
#include <vector>

namespace support {

/// splitmix64: used to expand a single 64-bit seed into a full state.
/// Advances `state` and returns the next output.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, passes BigCrush.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Samples an index from an unnormalized weight vector.
  /// Weights must be non-negative with a positive sum.
  std::size_t discrete(const std::vector<double>& weights);

  /// Splits off an independent generator (jump-free: reseed via output).
  Rng split();

  /// Deterministic stream derivation: the generator for logical stream
  /// `stream` under `seed`. Streams are pairwise independent for practical
  /// purposes (both inputs pass through splitmix64 before mixing), and the
  /// mapping is pure — the same (seed, stream) always yields the same
  /// generator, regardless of call order or thread. The network simulator
  /// gives every miner its own stream so event outcomes do not depend on
  /// how many draws other miners consumed.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
};

}  // namespace support
