// Content-addressed on-disk result store with a completion journal.
//
// Each finished job is persisted as one binary file named by its key hash
// (objects/<hh>/<hash16>.bin under the cache directory), written to a
// temporary path and renamed into place — so a killed sweep leaves either
// a complete, checksummed entry or nothing, never a half-written file, and
// a restarted sweep resumes exactly from the completed jobs. Entries embed
// the full canonical key (hash collisions are detected, not trusted) and a
// trailing FNV checksum; anything truncated, corrupted, or foreign loads
// as a miss and is recomputed. journal.log appends one line per completed
// job in completion order — an audit trail for long sweeps; resumption
// itself needs only the entries.
//
// The store is safe to share across *processes*, not just threads: entry
// writes are atomic renames, and journal appends go through one O_APPEND
// write() per record, which POSIX makes atomic with respect to other
// appenders — N serve replicas on one cache directory never interleave
// partial lines. read_journal() tolerates garbage lines regardless (a
// journal predating this guarantee, or a torn line from a crash).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "mdp/markov_chain.hpp"

namespace engine {

/// The persisted outcome of one analysis job. `seconds` is the wall-clock
/// of the original computation and is replayed verbatim on a cache hit, so
/// downstream reports don't mix solve times with cache-load times.
struct StoredResult {
  double errev_lower_bound = 0.0;
  double beta_lo = 0.0;
  double beta_hi = 1.0;
  double errev_of_policy = 0.0;  ///< NaN when exact evaluation was off.
  double seconds = 0.0;
  std::int32_t search_iterations = 0;
  std::int64_t solver_iterations = 0;
  std::uint64_t num_states = 0;
  mdp::Policy policy;
  /// Final value vector — the warm start of the next chain point. May be
  /// empty when the engine was told not to persist values.
  std::vector<double> values;
};

/// The persisted artifact of one *generic* (composite) job — see
/// engine/generic.hpp. The payload is an opaque byte string; `seconds` is
/// the wall-clock of the original computation, replayed on cache hits.
struct GenericResult {
  std::string payload;
  double seconds = 0.0;
};

class ResultStore {
 public:
  /// An empty `dir` disables the store (every load misses, stores are
  /// no-ops) — the engine then still parallelizes and warm-starts, it just
  /// cannot resume.
  explicit ResultStore(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// The entry path of `key` (exposed so tests can corrupt entries).
  std::string entry_path(const JobKey& key) const;

  /// Loads the entry of `key`. Returns nullopt on a miss *or* on any
  /// validation failure (bad magic/size/checksum, truncation, canonical
  /// key mismatch); invalid entries are deleted so the slot heals on the
  /// next store.
  std::optional<StoredResult> load(const JobKey& key) const;

  /// Atomically persists `result` under `key` and appends to the journal.
  /// Best effort: IO failures are swallowed (the sweep still completes
  /// from memory; only resumability suffers).
  void store(const JobKey& key, const StoredResult& result) const;

  /// Generic-artifact twins of load/store: same directory layout, framing,
  /// atomic-rename discipline, checksum, and canonical-key collision guard,
  /// but a distinct magic — an analysis entry never decodes as a generic
  /// artifact or vice versa.
  std::optional<GenericResult> load_generic(const JobKey& key) const;
  void store_generic(const JobKey& key, const GenericResult& result) const;

  /// Path of the completion journal.
  std::string journal_path() const;

  /// One journal line: the 16-hex entry name and the full canonical key.
  struct JournalRecord {
    std::string hex;
    std::string canonical;
  };

  /// Reads the journal back, skipping anything that is not a well-formed
  /// record (first token not 16 hex chars, no separating space): the
  /// journal is an audit trail, so a damaged line costs one record, never
  /// the read. Empty when the store is disabled or the journal absent.
  std::vector<JournalRecord> read_journal() const;

 private:
  std::string dir_;
};

}  // namespace engine
