#include "engine/job.hpp"

#include <cinttypes>
#include <cstdio>

namespace engine {

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t basis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = basis;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string canonical_double(double value) {
  // %.17g round-trips every finite double; the C locale of printf keeps
  // the rendering stable across environments.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JobKey::hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, hash);
  return buffer;
}

/// SolveOptions::threads, ::use_kernel, and the gather/prefetch tuning are
/// deliberately absent: the kernel is pinned bit-identical to the legacy
/// path at any thread count and gather mode (test_mdp_kernel), so none of
/// those knobs can change a stored result. The sweep mode IS rendered —
/// ordered and red-black Gauss–Seidel are distinct certified iterate
/// paths that converge to different (equally certified) numbers.
std::string solver_options_id(const analysis::AnalysisOptions& options) {
  std::string id = "eps=" + canonical_double(options.epsilon);
  id += "|solver=" + mdp::to_string(options.solver.method);
  id += "|sweep=" + std::string(mdp::to_string(options.solver.tuning.sweep_mode));
  id += "|tol=" + canonical_double(options.solver.mean_payoff.tol);
  id += "|maxit=" + std::to_string(options.solver.mean_payoff.max_iterations);
  id += "|tau=" + canonical_double(options.solver.mean_payoff.tau);
  id += "|exact=" + std::string(options.evaluate_exact_errev ? "1" : "0");
  return id;
}

std::string model_id_without_p(const selfish::AttackParams& params) {
  std::string id = "gamma=" + canonical_double(params.gamma);
  id += "|d=" + std::to_string(params.d);
  id += "|f=" + std::to_string(params.f);
  id += "|l=" + std::to_string(params.l);
  id += "|burn=" + std::string(params.burn_lost_races ? "1" : "0");
  return id;
}

std::string analysis_chain_id(const AnalysisJob& job) {
  return "analysis/v" + std::to_string(kCodeVersionSalt) + "|" +
         model_id_without_p(job.params) + "|" + solver_options_id(job.options);
}

JobKey analysis_job_key(const AnalysisJob& job, const JobKey* warm_parent) {
  JobKey key;
  key.canonical = analysis_chain_id(job);
  key.canonical += "|p=" + canonical_double(job.params.p);
  key.canonical +=
      "|warm=" + (warm_parent == nullptr ? std::string("cold")
                                         : warm_parent->hex());
  key.hash = fnv1a64(key.canonical.data(), key.canonical.size());
  return key;
}

}  // namespace engine
