#include "engine/kinds.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "analysis/render.hpp"
#include "analysis/sweep.hpp"
#include "engine/engine.hpp"
#include "net/batch.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"

namespace engine {

namespace {

/// Model identity *without* the fork cap l (the upper-bound series varies
/// l within one job).
std::string model_id_without_p_l(const selfish::AttackParams& params) {
  std::string id = "gamma=" + canonical_double(params.gamma);
  id += "|d=" + std::to_string(params.d);
  id += "|f=" + std::to_string(params.f);
  id += "|burn=" + std::string(params.burn_lost_races ? "1" : "0");
  return id;
}

template <typename Query>
GenericJob make_job(std::string kind, std::string options, Query query) {
  GenericJob job;
  job.kind = std::move(kind);
  job.options = std::move(options);
  job.typed = std::make_shared<const Query>(std::move(query));
  return job;
}

template <typename Query>
const Query& typed(const GenericJob& job) {
  SM_ENSURE(job.typed != nullptr, "generic job ", job.kind,
            " lost its typed options");
  return *static_cast<const Query*>(job.typed.get());
}

// ------------------------------------------------------------- executors
//
// Every executor may fan out on ctx.threads: the Bellman kernel, the
// engine's chain scheduler, and the batch runner are all pinned
// bit-identical at any thread count, so ctx affects wall-clock only.

GenericResult run_point(const GenericJob& job, const ExecContext& ctx) {
  const PointQuery& query = typed<PointQuery>(job);
  analysis::AnalysisOptions options = query.analysis;
  options.solver.threads = ctx.threads;
  const selfish::SelfishModel model = selfish::build_model(query.params);
  const analysis::AnalysisResult result = analysis::analyze(model, options);
  GenericResult out;
  out.payload =
      analysis::render_analysis_report(query.params, model, result,
                                       query.stats);
  return out;
}

GenericResult run_sweep(const GenericJob& job, const ExecContext& ctx) {
  const SweepQuery& query = typed<SweepQuery>(job);
  EngineOptions engine_options;
  engine_options.cache_dir = ctx.cache_dir;
  engine_options.threads = ctx.threads;
  Engine engine(engine_options);
  const analysis::SweepResult sweep = analysis::sweep_p(
      query.base,
      analysis::linspace_grid(query.p_min, query.p_max, query.step),
      query.analysis, engine);
  std::ostringstream csv;
  analysis::write_sweep_csv(sweep, csv);
  GenericResult out;
  out.payload = csv.str();
  return out;
}

GenericResult run_threshold(const GenericJob& job, const ExecContext& ctx) {
  const ThresholdQuery& query = typed<ThresholdQuery>(job);
  analysis::ThresholdOptions options = query.options;
  options.analysis.solver.threads = ctx.threads;
  const analysis::ThresholdResult result =
      analysis::fairness_threshold(query.base, options);
  GenericResult out;
  out.payload = analysis::render_threshold_report(query.options, result);
  return out;
}

GenericResult run_upper_bound(const GenericJob& job, const ExecContext& ctx) {
  const UpperBoundQuery& query = typed<UpperBoundQuery>(job);
  analysis::UpperBoundOptions options = query.options;
  options.analysis.solver.threads = ctx.threads;
  const analysis::UpperBoundResult result =
      analysis::bound_errev_in_l(query.base, options);
  GenericResult out;
  out.payload = analysis::render_upper_bound_report(query.options, result);
  return out;
}

GenericResult run_net_batch(const GenericJob& job, const ExecContext& ctx) {
  const NetBatchQuery& query = typed<NetBatchQuery>(job);
  net::BatchOptions batch_options;
  batch_options.runs_per_scenario = query.runs;
  batch_options.threads = ctx.threads;
  batch_options.base_seed = query.seed;
  batch_options.epsilon = query.epsilon;
  batch_options.cache_dir = ctx.cache_dir;
  const auto aggregates = net::run_batch(
      net::make_scenarios(query.scenario, query.options), batch_options);
  std::ostringstream csv;
  net::write_batch_csv(aggregates, csv);
  GenericResult out;
  out.payload = csv.str();
  return out;
}

}  // namespace

GenericJob make_point_job(const PointQuery& query) {
  query.params.validate();
  std::string options = model_id_without_p(query.params);
  options += "|p=" + canonical_double(query.params.p);
  options += "|" + solver_options_id(query.analysis);
  options += "|stats=" + std::string(query.stats ? "1" : "0");
  return make_job("point", std::move(options), query);
}

GenericJob make_sweep_job(const SweepQuery& query) {
  query.base.validate();
  SM_REQUIRE(query.step > 0.0, "sweep step must be positive");
  SM_REQUIRE(query.p_max >= query.p_min,
             "sweep upper bound below lower bound");
  std::string options = model_id_without_p(query.base);
  options += "|" + solver_options_id(query.analysis);
  options += "|pmin=" + canonical_double(query.p_min);
  options += "|pmax=" + canonical_double(query.p_max);
  options += "|pstep=" + canonical_double(query.step);
  return make_job("sweep", std::move(options), query);
}

GenericJob make_threshold_job(const ThresholdQuery& query) {
  query.base.validate();
  SM_REQUIRE(query.options.unfairness_margin > 0.0,
             "margin must be positive");
  SM_REQUIRE(query.options.p_tolerance > 0.0,
             "p tolerance must be positive");
  SM_REQUIRE(query.options.p_max > 0.0 && query.options.p_max < 1.0,
             "p_max out of (0,1): ", query.options.p_max);
  std::string options = model_id_without_p(query.base);
  options += "|" + solver_options_id(query.options.analysis);
  options += "|margin=" + canonical_double(query.options.unfairness_margin);
  options += "|ptol=" + canonical_double(query.options.p_tolerance);
  options += "|pmax=" + canonical_double(query.options.p_max);
  return make_job("threshold", std::move(options), query);
}

GenericJob make_upper_bound_job(const UpperBoundQuery& query) {
  query.base.validate();
  SM_REQUIRE(query.options.l_min >= 1, "l_min must be at least 1");
  SM_REQUIRE(query.options.l_max >= query.options.l_min + 1,
             "need at least two l values to extrapolate");
  SM_REQUIRE(query.options.l_max <= selfish::kMaxForkLength,
             "l_max exceeds the representable fork length");
  std::string options = model_id_without_p_l(query.base);
  options += "|p=" + canonical_double(query.base.p);
  options += "|" + solver_options_id(query.options.analysis);
  options += "|lmin=" + std::to_string(query.options.l_min);
  options += "|lmax=" + std::to_string(query.options.l_max);
  return make_job("upper-bound", std::move(options), query);
}

GenericJob make_net_batch_job(const NetBatchQuery& query) {
  const auto names = net::scenario_names();
  SM_REQUIRE(std::find(names.begin(), names.end(), query.scenario) !=
                 names.end(),
             "unknown scenario family ", query.scenario);
  SM_REQUIRE(query.runs > 0, "runs must be positive, got ", query.runs);
  SM_REQUIRE(query.options.blocks > 0, "blocks must be positive");
  SM_REQUIRE(query.epsilon > 0.0, "epsilon must be positive");
  // "file:<path>" strategies are CLI-only: a file's *contents* are not
  // part of the canonical key (the artifact would silently go stale when
  // the file changes), and jobs reach this builder from the network
  // protocol — client-chosen strings must never open server-side paths.
  SM_REQUIRE(query.options.strategy == "optimal" ||
                 query.options.strategy == "honest" ||
                 query.options.strategy == "never-release",
             "net-batch strategy must be optimal | honest | never-release "
             "(strategy files are not content-addressable)");
  const net::ScenarioOptions& o = query.options;
  std::string options = "scenario=" + query.scenario;
  options += "|p=" + canonical_double(o.p);
  options += "|gamma=" + canonical_double(o.gamma);
  options += "|delay=" + canonical_double(o.delay);
  options += "|interval=" + canonical_double(o.block_interval);
  options += "|blocks=" + std::to_string(o.blocks);
  options += "|honest=" + std::to_string(o.honest_miners);
  options += "|d=" + std::to_string(o.d);
  options += "|f=" + std::to_string(o.f);
  options += "|l=" + std::to_string(o.l);
  options += "|strategy=" + o.strategy;
  options += "|prop=" + std::string(net::to_string(o.propagation));
  options += "|pstart=" + canonical_double(o.partition_start);
  options += "|pstop=" + canonical_double(o.partition_stop);
  options += "|pfrac=" + canonical_double(o.partition_fraction);
  options += "|asym=" + canonical_double(o.asymmetry);
  options += "|runs=" + std::to_string(query.runs);
  options += "|seed=" + std::to_string(query.seed);
  options += "|eps=" + canonical_double(query.epsilon);
  return make_job("net-batch", std::move(options), query);
}

const ExecutorRegistry& builtin_executors() {
  static const ExecutorRegistry registry = [] {
    ExecutorRegistry r;
    r.add("point", run_point);
    r.add("sweep", run_sweep);
    r.add("threshold", run_threshold);
    r.add("upper-bound", run_upper_bound);
    r.add("net-batch", run_net_batch);
    return r;
  }();
  return registry;
}

}  // namespace engine
