#include "engine/generic.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace engine {

namespace {

struct GenericMetrics {
  obs::Counter& jobs = obs::counter(
      "selfish_engine_generic_jobs_total", "Generalized engine jobs run");
  obs::Counter& cache_hits = obs::counter(
      "selfish_engine_generic_cache_hits_total",
      "Generalized engine jobs satisfied from the result store");
};

GenericMetrics& generic_metrics() {
  static GenericMetrics metrics;
  return metrics;
}

[[maybe_unused]] const GenericMetrics& g_registered_generic_metrics =
    generic_metrics();

}  // namespace

JobKey generic_job_key(const GenericJob& job) {
  JobKey key;
  key.canonical = job.kind + "/v" + std::to_string(kCodeVersionSalt) + "|" +
                  job.options;
  key.hash = fnv1a64(key.canonical.data(), key.canonical.size());
  return key;
}

void ExecutorRegistry::add(const std::string& kind, Executor fn) {
  SM_REQUIRE(fn != nullptr, "null executor for kind ", kind);
  const bool inserted = executors_.emplace(kind, std::move(fn)).second;
  SM_REQUIRE(inserted, "duplicate executor kind ", kind);
}

const Executor* ExecutorRegistry::find(const std::string& kind) const {
  const auto it = executors_.find(kind);
  return it == executors_.end() ? nullptr : &it->second;
}

std::vector<std::string> ExecutorRegistry::kinds() const {
  std::vector<std::string> names;
  names.reserve(executors_.size());
  for (const auto& [kind, fn] : executors_) names.push_back(kind);
  return names;
}

GenericOutcome run_generic(const ExecutorRegistry& registry,
                           const ResultStore& store, const ExecContext& ctx,
                           const GenericJob& job) {
  const Executor* executor = registry.find(job.kind);
  SM_REQUIRE(executor != nullptr, "unknown job kind ", job.kind);

  const JobKey key = generic_job_key(job);
  generic_metrics().jobs.add(1);
  if (auto hit = store.load_generic(key)) {
    generic_metrics().cache_hits.add(1);
    GenericOutcome outcome;
    outcome.result = std::move(*hit);
    outcome.cached = true;
    return outcome;
  }

  obs::Span span("engine.generic");
  span.attr("kind", serve::Json(job.kind));
  const support::Timer timer;
  GenericOutcome outcome;
  outcome.result = (*executor)(job, ctx);
  outcome.result.seconds = timer.seconds();
  store.store_generic(key, outcome.result);
  return outcome;
}

}  // namespace engine
