// Content-addressed experiment jobs.
//
// Every solve the experiment engine runs is described by a canonical,
// human-readable key string that pins *all* inputs the result depends on:
// the attack parameters, the full solver configuration, a code-version
// salt (bumped whenever model-construction or solver semantics change in a
// result-affecting way), and — crucially — the warm-start lineage. A
// warm-started solve converges to slightly different (still ε-certified)
// numbers than a cold one, so a grid point seeded by its left neighbor is
// a *different job* than the same point solved cold. Keying the lineage
// makes a cache hit an exact promise: the stored result is bit-identical
// to what recomputation would produce.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/algorithm1.hpp"
#include "selfish/params.hpp"

namespace engine {

/// Bumped whenever a change anywhere in the model builder, Algorithm 1, or
/// the mean-payoff solvers can alter computed results: stale store entries
/// from older code then miss instead of serving wrong numbers.
/// v2: policies are captured during the final certified sweep (greedy
/// w.r.t. that sweep's input vector) instead of by an extra extraction
/// sweep — boundary states can pick a different ε-optimal action, so
/// errev_of_policy may shift within the ε band.
/// v3: the Gauss–Seidel solver grew a second certified iterate path
/// (SweepMode::kRedBlack, parallel two-phase colored sweeps) and job keys
/// grew a `sweep=` token; bumping the salt makes every pre-v3 entry miss
/// so cached artifacts never mix iterate paths. (Gather/prefetch tuning
/// is byte-identical and deliberately NOT keyed, like `threads`.)
inline constexpr std::uint32_t kCodeVersionSalt = 3;

/// One Algorithm 1 evaluation: build the model for `params`, analyze with
/// `options`. This is the unit of work behind `analysis::sweep_p`, the
/// p-sweep benches, and `net::prepare_scenario`'s "optimal" attackers.
struct AnalysisJob {
  selfish::AttackParams params;
  analysis::AnalysisOptions options;
};

/// The canonical identity of a job. `canonical` is the full key text (kept
/// in store entries so a hash collision is detected, not trusted); `hash`
/// is FNV-1a over it and addresses the entry on disk.
struct JobKey {
  std::string canonical;
  std::uint64_t hash = 0;

  /// 16-char lowercase hex of `hash` — the on-disk entry name.
  std::string hex() const;

  /// Deterministic RNG stream id for stochastic job kinds: jobs draw from
  /// support::Rng::for_stream(seed(), ...) so outcomes are a pure function
  /// of the job identity, never of scheduling order.
  std::uint64_t seed() const { return hash; }
};

/// FNV-1a 64-bit over `size` bytes starting at `data`.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t basis = 0xcbf29ce484222325ULL);

/// Exact decimal rendering of a double (round-trippable, locale-free) for
/// canonical key strings.
std::string canonical_double(double value);

/// The key of `job` when warm-started from the job identified by
/// `warm_parent` (null = cold start).
JobKey analysis_job_key(const AnalysisJob& job, const JobKey* warm_parent);

/// Canonical rendering of the solver-configuration slice of a job key
/// (method + tolerances; everything a solve's numbers depend on besides
/// the model). Shared by every job kind that runs Algorithm 1 probes.
std::string solver_options_id(const analysis::AnalysisOptions& options);

/// Canonical rendering of the model parameters except the resource p
/// (the warm-start chains vary p within one id).
std::string model_id_without_p(const selfish::AttackParams& params);

/// The part of an analysis job's identity that every point of one
/// warm-start chain shares: everything except the resource p. Grid points
/// with equal chain ids are ordered by p and seed each other's solves.
std::string analysis_chain_id(const AnalysisJob& job);

}  // namespace engine
