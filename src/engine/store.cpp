#include "engine/store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace engine {

namespace {

/// Store traffic + self-healing metrics, registered at static init so a
/// fresh `metrics` scrape lists the family before any job runs.
struct StoreMetrics {
  obs::Counter& read_bytes = obs::counter(
      "selfish_engine_store_read_bytes_total",
      "Bytes of framed entries read back from the result store");
  obs::Counter& written_bytes = obs::counter(
      "selfish_engine_store_written_bytes_total",
      "Bytes of framed entries written to the result store");
  obs::Counter& healed = obs::counter(
      "selfish_engine_store_healed_total",
      "Corrupt or stale store entries deleted for recompute");
};

StoreMetrics& store_metrics() {
  static StoreMetrics metrics;
  return metrics;
}

[[maybe_unused]] const StoreMetrics& g_registered_store_metrics =
    store_metrics();

constexpr std::uint64_t kMagic = 0x53454c5245533031ULL;     // "SELRES01"
constexpr std::uint64_t kMagicBlob = 0x53454c424c423031ULL;  // "SELBLB01"
constexpr std::uint64_t kMaxPayload = 1ULL << 32;            // sanity bound

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return in.good();
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool read_vector(std::istream& in, std::vector<T>& v) {
  std::uint64_t size = 0;
  if (!read_pod(in, size)) return false;
  // Never allocate more than the stream still holds (guards against a
  // crafted length field; random corruption is caught by the checksum).
  const std::streamsize avail = in.rdbuf()->in_avail();
  if (avail < 0 || size > static_cast<std::uint64_t>(avail) / sizeof(T)) {
    return false;
  }
  v.resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(T)));
    if (!in.good()) return false;
  }
  return true;
}

std::string encode_payload(const JobKey& key, const StoredResult& result) {
  std::ostringstream out(std::ios::binary);
  write_pod<std::uint64_t>(out, key.canonical.size());
  out.write(key.canonical.data(),
            static_cast<std::streamsize>(key.canonical.size()));
  write_pod(out, result.errev_lower_bound);
  write_pod(out, result.beta_lo);
  write_pod(out, result.beta_hi);
  write_pod(out, result.errev_of_policy);
  write_pod(out, result.seconds);
  write_pod(out, result.search_iterations);
  write_pod(out, result.solver_iterations);
  write_pod(out, result.num_states);
  write_vector(out, result.policy);
  write_vector(out, result.values);
  return out.str();
}

bool decode_payload(const std::string& payload, const JobKey& key,
                    StoredResult& result) {
  std::istringstream in(payload, std::ios::binary);
  std::uint64_t key_size = 0;
  if (!read_pod(in, key_size) || key_size > payload.size()) return false;
  std::string canonical(key_size, '\0');
  in.read(canonical.data(), static_cast<std::streamsize>(key_size));
  // The canonical key is the collision guard: a different key hashing to
  // the same entry must not be served.
  if (!in.good() || canonical != key.canonical) return false;
  return read_pod(in, result.errev_lower_bound) &&
         read_pod(in, result.beta_lo) && read_pod(in, result.beta_hi) &&
         read_pod(in, result.errev_of_policy) &&
         read_pod(in, result.seconds) &&
         read_pod(in, result.search_iterations) &&
         read_pod(in, result.solver_iterations) &&
         read_pod(in, result.num_states) &&
         read_vector(in, result.policy) && read_vector(in, result.values);
}

std::string encode_generic(const JobKey& key, const GenericResult& result) {
  std::ostringstream out(std::ios::binary);
  write_pod<std::uint64_t>(out, key.canonical.size());
  out.write(key.canonical.data(),
            static_cast<std::streamsize>(key.canonical.size()));
  write_pod(out, result.seconds);
  write_pod<std::uint64_t>(out, result.payload.size());
  out.write(result.payload.data(),
            static_cast<std::streamsize>(result.payload.size()));
  return out.str();
}

bool decode_generic(const std::string& payload, const JobKey& key,
                    GenericResult& result) {
  std::istringstream in(payload, std::ios::binary);
  std::uint64_t key_size = 0;
  if (!read_pod(in, key_size) || key_size > payload.size()) return false;
  std::string canonical(key_size, '\0');
  in.read(canonical.data(), static_cast<std::streamsize>(key_size));
  if (!in.good() || canonical != key.canonical) return false;
  if (!read_pod(in, result.seconds)) return false;
  std::uint64_t body_size = 0;
  if (!read_pod(in, body_size) || body_size > payload.size()) return false;
  result.payload.assign(body_size, '\0');
  if (body_size > 0) {
    in.read(result.payload.data(), static_cast<std::streamsize>(body_size));
    if (!in.good()) return false;
  }
  return true;
}

/// Reads one framed entry (magic + size + payload + FNV checksum) from
/// `path`; any validation failure deletes the entry (the slot heals on
/// the next store) and returns nullopt.
std::optional<std::string> read_frame(const std::string& path,
                                      std::uint64_t expected_magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;

  const auto reject = [&]() -> std::optional<std::string> {
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);  // heal: recompute overwrites
    store_metrics().healed.add(1);
    obs::log_warn("engine", "healed corrupt store entry (bad frame)",
                  {{"path", serve::Json(path)}});
    return std::nullopt;
  };

  // A corrupted size field must reject cheaply, never allocate: bound the
  // declared payload by what the file can actually hold (header 16 bytes
  // + trailing 8-byte checksum).
  std::error_code size_ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_ec);
  if (size_ec || file_size < 24 || file_size > kMaxPayload) return reject();

  std::uint64_t magic = 0, payload_size = 0;
  if (!read_pod(in, magic) || magic != expected_magic) return reject();
  if (!read_pod(in, payload_size) || payload_size > file_size - 24) {
    return reject();
  }
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (!in.good()) return reject();
  std::uint64_t checksum = 0;
  if (!read_pod(in, checksum) ||
      checksum != fnv1a64(payload.data(), payload.size())) {
    return reject();
  }
  // Frame = 16-byte header + payload + 8-byte checksum.
  store_metrics().read_bytes.add(payload.size() + 24);
  return payload;
}

/// Writes one framed entry to `path` via a unique temp file renamed into
/// place: concurrent writers (including separate processes sharing one
/// cache directory) and crashes leave complete entries or nothing.
/// Returns false on any IO failure (best effort; callers swallow it).
bool write_frame(const std::string& path, std::uint64_t magic,
                 const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return false;

  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << std::this_thread::get_id();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return false;
    write_pod(out, magic);
    write_pod<std::uint64_t>(out, payload.size());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    write_pod<std::uint64_t>(out, fnv1a64(payload.data(), payload.size()));
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  store_metrics().written_bytes.add(payload.size() + 24);
  return true;
}

/// Journal appends interleave from many worker threads of one process.
std::mutex& journal_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// Appends one journal record as a single O_APPEND write(). O_APPEND
/// makes the seek+write atomic against other appenders, and issuing the
/// whole line in one write() keeps records from *different processes*
/// sharing the cache directory from interleaving mid-line (the in-process
/// journal_mutex covers threads; it cannot cover replicas). Best effort,
/// like the entry write it follows.
void append_journal(const std::string& path, const JobKey& key) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  const std::string line = key.hex() + ' ' + key.canonical + '\n';
  [[maybe_unused]] const ssize_t written =
      ::write(fd, line.data(), line.size());
  ::close(fd);
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {}

std::string ResultStore::entry_path(const JobKey& key) const {
  const std::string hex = key.hex();
  return dir_ + "/objects/" + hex.substr(0, 2) + "/" + hex + ".bin";
}

std::string ResultStore::journal_path() const {
  return dir_ + "/journal.log";
}

std::optional<StoredResult> ResultStore::load(const JobKey& key) const {
  if (!enabled()) return std::nullopt;
  const std::string path = entry_path(key);
  const std::optional<std::string> payload = read_frame(path, kMagic);
  if (!payload.has_value()) return std::nullopt;

  StoredResult result;
  if (!decode_payload(*payload, key, result)) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // heal: recompute overwrites
    store_metrics().healed.add(1);
    obs::log_warn("engine", "healed corrupt store entry (bad payload)",
                  {{"path", serve::Json(path)}});
    return std::nullopt;
  }
  return result;
}

void ResultStore::store(const JobKey& key, const StoredResult& result) const {
  if (!enabled()) return;
  if (!write_frame(entry_path(key), kMagic, encode_payload(key, result))) {
    return;
  }

  const std::lock_guard<std::mutex> lock(journal_mutex());
  append_journal(journal_path(), key);
}

std::optional<GenericResult> ResultStore::load_generic(
    const JobKey& key) const {
  if (!enabled()) return std::nullopt;
  const std::string path = entry_path(key);
  const std::optional<std::string> payload = read_frame(path, kMagicBlob);
  if (!payload.has_value()) return std::nullopt;

  GenericResult result;
  if (!decode_generic(*payload, key, result)) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    store_metrics().healed.add(1);
    obs::log_warn("engine", "healed corrupt store entry (bad payload)",
                  {{"path", serve::Json(path)}});
    return std::nullopt;
  }
  return result;
}

void ResultStore::store_generic(const JobKey& key,
                                const GenericResult& result) const {
  if (!enabled()) return;
  if (!write_frame(entry_path(key), kMagicBlob,
                   encode_generic(key, result))) {
    return;
  }

  const std::lock_guard<std::mutex> lock(journal_mutex());
  append_journal(journal_path(), key);
}

std::vector<ResultStore::JournalRecord> ResultStore::read_journal() const {
  std::vector<JournalRecord> records;
  if (!enabled()) return records;
  std::ifstream in(journal_path());
  if (!in.good()) return records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t space = line.find(' ');
    if (space != 16 || line.size() <= 17) continue;  // malformed: skip
    const std::string hex = line.substr(0, 16);
    if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
      continue;
    }
    records.push_back(JournalRecord{hex, line.substr(17)});
  }
  return records;
}

}  // namespace engine
