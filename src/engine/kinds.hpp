// The built-in generalized job kinds (see engine/generic.hpp).
//
// Retires the "Algorithm 1 only" limitation of the experiment engine:
// every composite analysis the CLI offers — a point analysis, a p-sweep, a
// fairness-threshold search, an upper-bound series, a network scenario
// batch — is a deterministic function of its options, so each gets a typed
// query struct, a canonical job identity, and an executor that computes
// the rendered artifact. The artifacts are exactly the direct CLI outputs
// (shared renderers), which is what lets the serving layer promise
// byte-identical responses.
//
//   kind          artifact                        warm-start structure
//   point         `analyze` report                cold solve
//   sweep         `sweep` CSV                     engine warm-start chain
//   threshold     `threshold` report              probe-to-probe values
//   upper-bound   `upper-bound` report            per-l cold solves
//   net-batch     `network --csv` CSV             engine-prepared grid
//
// A sweep or net-batch executor nests a full engine::Engine run on the
// same cache directory, so the composite artifact *and* its per-point
// solves are persisted — a later narrower or wider query resumes from the
// point entries even when the composite key misses.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/algorithm1.hpp"
#include "analysis/threshold.hpp"
#include "analysis/upper_bound.hpp"
#include "engine/generic.hpp"
#include "net/scenario.hpp"
#include "selfish/params.hpp"

namespace engine {

/// One Algorithm 1 evaluation rendered as the `analyze` report.
struct PointQuery {
  selfish::AttackParams params;
  analysis::AnalysisOptions analysis;
  bool stats = true;  ///< Append the strategy's structural statistics.
};

/// A p-grid sweep rendered as the `sweep` CSV.
struct SweepQuery {
  selfish::AttackParams base;  ///< p field ignored (the grid provides it).
  analysis::AnalysisOptions analysis;
  double p_min = 0.0;
  double p_max = 0.3;
  double step = 0.05;
};

/// A fairness-threshold bisection rendered as the `threshold` report.
struct ThresholdQuery {
  selfish::AttackParams base;  ///< p field ignored.
  analysis::ThresholdOptions options;
};

/// An upper-bound series over fork caps rendered as the `upper-bound`
/// report.
struct UpperBoundQuery {
  selfish::AttackParams base;  ///< l field ignored.
  analysis::UpperBoundOptions options;
};

/// A network scenario batch rendered as the `network --csv` CSV.
struct NetBatchQuery {
  std::string scenario = "single-optimal";
  net::ScenarioOptions options;
  int runs = 8;
  std::uint64_t seed = 24141;
  double epsilon = 1e-3;  ///< Algorithm 1 precision for "optimal" agents.
};

/// Job builders: validate the query (throwing support::InvalidArgument on
/// out-of-range parameters or an unknown scenario) and derive the
/// canonical identity. The returned job carries the typed query for its
/// executor.
GenericJob make_point_job(const PointQuery& query);
GenericJob make_sweep_job(const SweepQuery& query);
GenericJob make_threshold_job(const ThresholdQuery& query);
GenericJob make_upper_bound_job(const UpperBoundQuery& query);
GenericJob make_net_batch_job(const NetBatchQuery& query);

/// The registry with every built-in kind registered (shared immutable
/// instance; first call constructs it).
const ExecutorRegistry& builtin_executors();

}  // namespace engine
