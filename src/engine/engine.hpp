// The experiment engine: parallel, cached, resumable execution of
// analysis-job batches.
//
// A batch goes through three stages:
//
//   1. Plan. Jobs are deduplicated and grouped into *warm-start chains*:
//      points that differ only in the resource p, ordered by ascending p.
//      Adjacent grid points have nearly identical value vectors, so each
//      point seeds the next one's value iteration (the same trick
//      analysis::sweep_p always used, now planned across an arbitrary
//      batch). The chain structure — and hence every job's key, which
//      records its warm-start lineage — is a pure function of the job
//      list: results never depend on thread count or scheduling order.
//   2. Execute. Chains fan out over a support::ThreadPool; each chain
//      runs sequentially so values flow point to point. Completed jobs
//      are persisted to the content-addressed ResultStore as they finish.
//   3. Resume / replay. A later run of the same batch (or any batch
//      sharing grid points *and* lineage) loads hits instead of solving —
//      a killed sweep restarted with the same arguments recomputes only
//      what is missing and reproduces the uninterrupted run's output
//      byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "engine/store.hpp"
#include "selfish/build.hpp"

namespace engine {

struct EngineOptions {
  /// Result-store directory; empty disables persistence (the batch still
  /// plans chains and runs in parallel, it just cannot resume).
  std::string cache_dir;
  /// Worker threads for chain fan-out; <= 0 means all hardware threads.
  int threads = 1;
  /// Persist final value vectors in store entries. Required for a resumed
  /// sweep to continue a chain bit-identically (the values are the next
  /// point's warm start); turn off only to shrink huge-model caches —
  /// points after a value-less hit are then transparently re-solved.
  bool store_values = true;
};

/// The outcome of one batch job, in input order.
struct JobOutcome {
  /// result.values is always empty here: value vectors are warm-start
  /// data internal to the engine (they stay in the store for resumes).
  StoredResult result;
  bool cached = false;  ///< Served from the store (not solved this run).
  /// The built model, when the caller asked keep_models (rebuilt
  /// deterministically on cache hits). Shared across duplicate jobs.
  std::shared_ptr<const selfish::SelfishModel> model;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Plans and executes `jobs`, returning outcomes in input order.
  /// Duplicate jobs are solved once and share an outcome. `keep_models`
  /// additionally returns each job's built SelfishModel (needed by
  /// callers that replay policies, e.g. the network batch runner).
  std::vector<JobOutcome> run(const std::vector<AnalysisJob>& jobs,
                              bool keep_models = false) const;

  const EngineOptions& options() const { return options_; }
  const ResultStore& store() const { return store_; }

 private:
  EngineOptions options_;
  ResultStore store_;
};

}  // namespace engine
