// Generalized content-addressed jobs: the polymorphic extension of the
// Algorithm-1-only experiment engine.
//
// A GenericJob is any deterministic computation identified by a kind tag
// (dispatched through an ExecutorRegistry) plus a canonical option string
// that pins *every* input the result depends on — the same contract
// AnalysisJob keys obey, extended to whole composite computations:
// threshold searches, upper-bound series, p-sweeps, and network scenario
// batches are pure functions of their options, so their finished artifacts
// round-trip through the same ResultStore as individual solves. The stored
// payload is an opaque byte string (for the serving layer: the rendered
// response artifact, byte-identical to the equivalent direct CLI output).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "engine/store.hpp"

namespace engine {

/// One generalized job. `typed` carries the kind-specific option struct
/// for the executor (the canonical string alone addresses the store; the
/// executor never re-parses it).
struct GenericJob {
  std::string kind;     ///< Registry dispatch tag, e.g. "threshold".
  std::string options;  ///< Canonical rendering of all result inputs.
  std::shared_ptr<const void> typed;  ///< Kind-specific options struct.
};

/// The key of a generic job: "<kind>/v<salt>|<options>". The code-version
/// salt is shared with analysis jobs — any result-affecting change to the
/// model builder or solvers invalidates composite artifacts too.
JobKey generic_job_key(const GenericJob& job);

struct GenericOutcome {
  GenericResult result;
  bool cached = false;  ///< Served from the store (not computed this run).
};

/// Execution context handed to every executor: where composite jobs may
/// nest their own engine runs (a sweep's per-point solves share the same
/// cache directory) and how many worker threads they may fan out on.
/// Neither field is part of any job key — both are pinned to not affect
/// result bytes.
struct ExecContext {
  std::string cache_dir;
  int threads = 1;
};

/// Computes a job's payload. Must be deterministic given (job, salt);
/// ctx affects speed only.
using Executor =
    std::function<GenericResult(const GenericJob&, const ExecContext&)>;

/// Kind tag -> executor. Registries are immutable after construction and
/// safe to share across threads.
class ExecutorRegistry {
 public:
  /// Registers `fn` for `kind`; throws on a duplicate kind.
  void add(const std::string& kind, Executor fn);

  /// Null when the kind is unknown.
  const Executor* find(const std::string& kind) const;

  /// Registered kinds, sorted (for error messages and discovery replies).
  std::vector<std::string> kinds() const;

 private:
  std::map<std::string, Executor> executors_;
};

/// Runs `job` through `store`: a valid stored entry is returned as a hit,
/// otherwise the registered executor computes the payload, which is
/// persisted before returning. Throws support::InvalidArgument on an
/// unregistered kind.
GenericOutcome run_generic(const ExecutorRegistry& registry,
                           const ResultStore& store, const ExecContext& ctx,
                           const GenericJob& job);

}  // namespace engine
