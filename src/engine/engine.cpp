#include "engine/engine.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "analysis/algorithm1.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/timer.hpp"

namespace engine {

namespace {

/// Job-lifecycle metrics, registered at static init so a fresh `metrics`
/// scrape lists the engine family before any job runs.
struct EngineMetrics {
  obs::Counter& planned = obs::counter(
      "selfish_engine_jobs_planned_total",
      "Deduplicated analysis slots planned for execution");
  obs::Counter& cache_hits = obs::counter(
      "selfish_engine_cache_hits_total",
      "Analysis slots satisfied from the result store");
  obs::Counter& executed = obs::counter(
      "selfish_engine_executed_total",
      "Analysis slots solved (store miss or values needed for warm start)");
  obs::Histogram& chain_depth = obs::histogram(
      "selfish_engine_chain_depth",
      "Points per planned warm-start chain",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128});
};

EngineMetrics& engine_metrics() {
  static EngineMetrics metrics;
  return metrics;
}

[[maybe_unused]] const EngineMetrics& g_registered_engine_metrics =
    engine_metrics();

/// One deduplicated execution slot of the plan.
struct Slot {
  AnalysisJob job;
  JobKey key;
  bool has_successor = false;  ///< A later chain point needs our values.
};

StoredResult to_stored(const analysis::AnalysisResult& analysis,
                       std::uint64_t num_states, double seconds,
                       bool store_values) {
  StoredResult stored;
  stored.errev_lower_bound = analysis.errev_lower_bound;
  stored.beta_lo = analysis.beta_lo;
  stored.beta_hi = analysis.beta_hi;
  stored.errev_of_policy = analysis.errev_of_policy;
  stored.seconds = seconds;
  stored.search_iterations = analysis.search_iterations;
  stored.solver_iterations = analysis.solver_iterations;
  stored.num_states = num_states;
  stored.policy = analysis.policy;
  if (store_values) stored.values = analysis.final_values;
  return stored;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), store_(options_.cache_dir) {}

std::vector<JobOutcome> Engine::run(const std::vector<AnalysisJob>& jobs,
                                    bool keep_models) const {
  // ---- Plan: group into warm-start chains, dedupe, derive keys. The
  // plan depends only on the job list (groups in chain-id order, points
  // in ascending p), never on thread count.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].params.validate();
    groups[analysis_chain_id(jobs[i])].push_back(i);
  }

  std::vector<Slot> slots;
  std::vector<std::vector<std::size_t>> chains;
  std::vector<std::size_t> slot_of_input(jobs.size(), 0);
  for (auto& [chain_id, inputs] : groups) {
    std::stable_sort(inputs.begin(), inputs.end(),
                     [&](std::size_t a, std::size_t b) {
                       return jobs[a].params.p < jobs[b].params.p;
                     });
    std::vector<std::size_t> chain;
    for (const std::size_t input : inputs) {
      if (!chain.empty() &&
          jobs[input].params.p == slots[chain.back()].job.params.p) {
        slot_of_input[input] = chain.back();  // exact duplicate job
        continue;
      }
      Slot slot;
      slot.job = jobs[input];
      slot.key = analysis_job_key(
          slot.job, chain.empty() ? nullptr : &slots[chain.back()].key);
      if (!chain.empty()) slots[chain.back()].has_successor = true;
      slot_of_input[input] = slots.size();
      chain.push_back(slots.size());
      slots.push_back(std::move(slot));
    }
    chains.push_back(std::move(chain));
  }

  if (obs::enabled()) {
    EngineMetrics& metrics = engine_metrics();
    metrics.planned.add(slots.size());
    for (const std::vector<std::size_t>& chain : chains) {
      metrics.chain_depth.observe(static_cast<double>(chain.size()));
    }
  }

  // ---- Execute: chains fan out on the pool; each chain runs its points
  // in order so final values seed the next solve.
  std::vector<JobOutcome> by_slot(slots.size());
  support::parallel_for(
      chains.size(), options_.threads, [&](std::size_t c) {
        std::vector<double> warm;
        for (const std::size_t s : chains[c]) {
          const Slot& slot = slots[s];
          JobOutcome& out = by_slot[s];
          std::optional<StoredResult> hit = store_.load(slot.key);
          std::shared_ptr<const selfish::SelfishModel> model;
          // A hit that lacks stored values cannot seed its successor; the
          // point is re-solved (determinism makes the numbers identical)
          // purely to regain the value vector — and counts as a miss.
          if (hit.has_value() &&
              (!slot.has_successor || !hit->values.empty())) {
            engine_metrics().cache_hits.add(1);
            out.result = std::move(*hit);
            out.cached = true;
            // Take the values as this chain's warm seed; outcomes carry
            // none (peak memory stays O(threads × state space), not
            // O(grid points)).
            warm = std::move(out.result.values);
            out.result.values = std::vector<double>();
          } else {
            engine_metrics().executed.add(1);
            obs::Span solve_span("engine.solve");
            solve_span.attr("p", serve::Json(slot.job.params.p));
            solve_span.attr("warm", serve::Json(!warm.empty()));
            const support::Timer timer;
            auto built = std::make_shared<selfish::SelfishModel>(
                selfish::build_model(slot.job.params));
            analysis::AnalysisResult analysis = analysis::analyze(
                *built, slot.job.options, warm.empty() ? nullptr : &warm);
            StoredResult stored =
                to_stored(analysis, built->mdp.num_states(), timer.seconds(),
                          options_.store_values);
            store_.store(slot.key, stored);
            model = std::move(built);
            warm = std::move(analysis.final_values);
            stored.values = std::vector<double>();  // persisted; not kept
            out.result = std::move(stored);
          }
          if (keep_models) {
            if (model == nullptr) {
              model = std::make_shared<selfish::SelfishModel>(
                  selfish::build_model(slot.job.params));
              // Guard the replayed policy against a store entry produced
              // by incompatible code (the salt should prevent this).
              mdp::validate_policy(model->mdp, out.result.policy);
            }
            out.model = std::move(model);
          }
        }
      });

  std::vector<JobOutcome> outcomes(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    outcomes[i] = by_slot[slot_of_input[i]];
  }
  return outcomes;
}

}  // namespace engine
