// Experiment-engine determinism (ISSUE acceptance criteria): cold-cache,
// warm-cache, and resumed-after-interrupt sweeps render identical CSV
// bytes at 1 and 8 threads; corrupted or truncated store entries are
// detected and recomputed, never trusted; job keys pin all inputs
// including warm-start lineage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/sweep.hpp"
#include "engine/engine.hpp"
#include "support/check.hpp"

namespace {

namespace fs = std::filesystem;

selfish::AttackParams base_params() {
  return selfish::AttackParams{.p = 0.0, .gamma = 0.5, .d = 2, .f = 1, .l = 4};
}

analysis::AnalysisOptions quick_options() {
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  return options;
}

std::vector<double> grid() { return {0.1, 0.2, 0.3}; }

/// A scratch cache directory, wiped on construction and destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::string sweep_csv(const std::string& cache_dir, int threads,
                      const std::vector<double>& ps = grid(),
                      bool store_values = true) {
  engine::EngineOptions options;
  options.cache_dir = cache_dir;
  options.threads = threads;
  options.store_values = store_values;
  engine::Engine engine(options);
  const auto sweep =
      analysis::sweep_p(base_params(), ps, quick_options(), engine);
  std::ostringstream out;
  analysis::write_sweep_csv(sweep, out);
  return out.str();
}

TEST(EngineKeys, PinAllInputsAndLineage) {
  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = 0.2;
  job.options = quick_options();

  const engine::JobKey cold = engine::analysis_job_key(job, nullptr);
  EXPECT_EQ(cold.hash, engine::analysis_job_key(job, nullptr).hash);
  EXPECT_NE(cold.canonical.find("warm=cold"), std::string::npos);

  engine::AnalysisJob parent = job;
  parent.params.p = 0.1;
  const engine::JobKey parent_key = engine::analysis_job_key(parent, nullptr);
  const engine::JobKey warm = engine::analysis_job_key(job, &parent_key);
  EXPECT_NE(cold.hash, warm.hash) << "lineage must be part of the identity";

  engine::AnalysisJob other = job;
  other.options.epsilon = 1e-4;
  EXPECT_NE(engine::analysis_job_key(other, nullptr).hash, cold.hash);
  other = job;
  other.params.gamma = 0.25;
  EXPECT_NE(engine::analysis_job_key(other, nullptr).hash, cold.hash);

  // Same chain regardless of p; different chain when anything else moves.
  EXPECT_EQ(engine::analysis_chain_id(job), engine::analysis_chain_id(parent));
  EXPECT_NE(engine::analysis_chain_id(job), engine::analysis_chain_id(other));
}

TEST(EngineKeys, SaltV3InvalidatesPreRedBlackCaches) {
  // The red-black Gauss–Seidel iterate path shipped with a salt bump
  // 2→3: every canonical key must carry the v3 prefix (so all pre-PR
  // store entries miss cleanly) and must never render the old one.
  EXPECT_EQ(engine::kCodeVersionSalt, 3u);
  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = 0.2;
  job.options = quick_options();
  const engine::JobKey key = engine::analysis_job_key(job, nullptr);
  EXPECT_EQ(key.canonical.rfind("analysis/v3|", 0), 0u) << key.canonical;
  EXPECT_EQ(key.canonical.find("analysis/v2"), std::string::npos);
}

TEST(EngineKeys, SweepModeIsPartOfTheIdentity) {
  // Ordered and red-black gs converge to different (equally certified)
  // numbers, so the sweep mode must split job identities — while the
  // byte-identical speed knobs (threads, use_kernel, gather, prefetch)
  // must NOT.
  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = 0.2;
  job.options = quick_options();
  job.options.solver.method = mdp::SolverMethod::kGaussSeidel;
  const engine::JobKey ordered = engine::analysis_job_key(job, nullptr);
  EXPECT_NE(ordered.canonical.find("|sweep=ordered|"), std::string::npos)
      << ordered.canonical;

  engine::AnalysisJob red = job;
  red.options.solver.tuning.sweep_mode = mdp::SweepMode::kRedBlack;
  const engine::JobKey redblack = engine::analysis_job_key(red, nullptr);
  EXPECT_NE(redblack.canonical.find("|sweep=redblack|"), std::string::npos)
      << redblack.canonical;
  EXPECT_NE(ordered.hash, redblack.hash);
  EXPECT_NE(engine::analysis_chain_id(job), engine::analysis_chain_id(red));

  engine::AnalysisJob tuned = job;
  tuned.options.solver.threads = 8;
  tuned.options.solver.use_kernel = false;
  tuned.options.solver.tuning.gather = mdp::GatherMode::kScalar;
  tuned.options.solver.tuning.prefetch_distance = 0;
  EXPECT_EQ(engine::analysis_job_key(tuned, nullptr).hash, ordered.hash)
      << "speed-only knobs must not change stored identities";
}

TEST(Engine, MatchesSequentialReferenceBitwise) {
  const auto reference =
      analysis::sweep_p_sequential(base_params(), grid(), quick_options());
  const auto engine_run =
      analysis::sweep_p(base_params(), grid(), quick_options());
  ASSERT_EQ(reference.points.size(), engine_run.points.size());
  for (std::size_t i = 0; i < reference.points.size(); ++i) {
    EXPECT_EQ(reference.points[i].errev, engine_run.points[i].errev);
    EXPECT_EQ(reference.points[i].errev_of_policy,
              engine_run.points[i].errev_of_policy);
    EXPECT_EQ(reference.points[i].solver_iterations,
              engine_run.points[i].solver_iterations);
  }
}

TEST(Engine, ColdWarmAndThreadCountsRenderIdenticalCsv) {
  ScratchDir dir("selfish-engine-test-coldwarm");
  const std::string cold_1 = sweep_csv(dir.path, 1);
  const std::string warm_1 = sweep_csv(dir.path, 1);
  const std::string warm_8 = sweep_csv(dir.path, 8);
  EXPECT_EQ(cold_1, warm_1);
  EXPECT_EQ(cold_1, warm_8);

  ScratchDir dir8("selfish-engine-test-coldwarm8");
  const std::string cold_8 = sweep_csv(dir8.path, 8);
  EXPECT_EQ(cold_1, cold_8);

  // No store at all: same bytes still.
  EXPECT_EQ(cold_1, sweep_csv("", 8));
}

TEST(Engine, ResumedAfterInterruptReproducesCsvByteForByte) {
  // The uninterrupted reference run.
  ScratchDir full_dir("selfish-engine-test-full");
  const std::string uninterrupted = sweep_csv(full_dir.path, 1);

  // "Killed" run: only the first two grid points completed. A prefix of
  // the grid is exactly what a killed sweep leaves behind — completed
  // jobs persist atomically, the in-flight one leaves nothing.
  ScratchDir resumed_dir("selfish-engine-test-resumed");
  sweep_csv(resumed_dir.path, 1, {0.1, 0.2});

  // Resume with the full grid, on a different thread count for good
  // measure: prefix served from the store, the rest computed warm-started
  // from the cached values.
  const std::string resumed = sweep_csv(resumed_dir.path, 8);
  EXPECT_EQ(uninterrupted, resumed);
}

TEST(Engine, CorruptedAndTruncatedEntriesAreRecomputed) {
  ScratchDir dir("selfish-engine-test-corrupt");
  const std::string cold = sweep_csv(dir.path, 1);

  // Locate every entry through the store's own addressing.
  engine::EngineOptions options;
  options.cache_dir = dir.path;
  engine::Engine engine(options);
  std::vector<std::string> entries;
  for (const auto& file :
       fs::recursive_directory_iterator(dir.path + "/objects")) {
    if (file.is_regular_file()) entries.push_back(file.path().string());
  }
  ASSERT_EQ(entries.size(), grid().size());

  // Truncate one entry, flip a payload byte in another, gut the third.
  fs::resize_file(entries[0], fs::file_size(entries[0]) / 2);
  {
    std::fstream f(entries[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);  // inside the payload (after magic + size)
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(24);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  { std::ofstream(entries[2], std::ios::trunc) << "not a store entry"; }

  // All three must be detected, recomputed, and the CSV unchanged.
  EXPECT_EQ(cold, sweep_csv(dir.path, 1));

  // The healed store now serves hits again.
  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = grid().front();
  job.options = quick_options();
  const auto outcome = engine.run({job});
  EXPECT_TRUE(outcome.front().cached);
}

TEST(Engine, StoreValuesOffProfileShrinksEntriesAndStaysIdentical) {
  // The huge-model sweep profile: entries skip the warm-start value
  // vectors. Chain points after a value-less hit are transparently
  // re-solved, so resumed CSV stays byte-identical to the value-storing
  // run — the trade is cache size for resume work.
  ScratchDir lean_dir("selfish-engine-test-novalues");
  ScratchDir full_dir("selfish-engine-test-withvalues");
  const std::string lean =
      sweep_csv(lean_dir.path, 1, grid(), /*store_values=*/false);
  const std::string full = sweep_csv(full_dir.path, 1);
  EXPECT_EQ(lean, full);

  // Rerun against the value-less store: hits cannot seed their chain
  // successors, so only the chain tail is served cached, and the CSV is
  // unchanged.
  const std::string rerun =
      sweep_csv(lean_dir.path, 1, grid(), /*store_values=*/false);
  EXPECT_EQ(lean, rerun);

  // The lean store is measurably smaller than the value-storing one.
  const auto store_bytes = [](const std::string& dir) {
    std::uintmax_t total = 0;
    for (const auto& file :
         fs::recursive_directory_iterator(dir + "/objects")) {
      if (file.is_regular_file()) total += file.file_size();
    }
    return total;
  };
  EXPECT_LT(store_bytes(lean_dir.path), store_bytes(full_dir.path) / 2);
}

TEST(Engine, DuplicateJobsShareOneSolve) {
  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = 0.3;
  job.options = quick_options();
  engine::Engine engine{engine::EngineOptions{}};
  const auto outcomes = engine.run({job, job, job});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].result.errev_of_policy,
            outcomes[1].result.errev_of_policy);
  EXPECT_EQ(outcomes[0].result.errev_of_policy,
            outcomes[2].result.errev_of_policy);
}

TEST(Engine, KeepModelsReturnsAValidatedModelOnHitAndMiss) {
  ScratchDir dir("selfish-engine-test-models");
  engine::EngineOptions options;
  options.cache_dir = dir.path;
  engine::Engine engine(options);

  engine::AnalysisJob job;
  job.params = base_params();
  job.params.p = 0.25;
  job.options = quick_options();

  const auto miss = engine.run({job}, /*keep_models=*/true);
  ASSERT_NE(miss.front().model, nullptr);
  EXPECT_FALSE(miss.front().cached);
  EXPECT_EQ(miss.front().model->mdp.num_states(),
            miss.front().result.num_states);

  const auto hit = engine.run({job}, /*keep_models=*/true);
  ASSERT_NE(hit.front().model, nullptr);
  EXPECT_TRUE(hit.front().cached);
  // The rebuilt model accepts the replayed policy (validate_policy ran);
  // the numbers match the miss exactly.
  EXPECT_EQ(hit.front().result.errev_of_policy,
            miss.front().result.errev_of_policy);
  EXPECT_EQ(hit.front().result.policy, miss.front().result.policy);
}

TEST(Engine, JournalRecordsCompletions) {
  ScratchDir dir("selfish-engine-test-journal");
  sweep_csv(dir.path, 1);
  engine::EngineOptions options;
  options.cache_dir = dir.path;
  engine::Engine engine(options);
  std::ifstream journal(engine.store().journal_path());
  ASSERT_TRUE(journal.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(journal, line)) {
    EXPECT_NE(line.find("analysis/v"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, grid().size());
}

}  // namespace
