// The formal analysis procedure (Algorithm 1): ε-tightness, consistency
// between the certified bound and the exact policy evaluation, and the
// monotone structure it relies on (Theorem 3.1).
#include <gtest/gtest.h>

#include "support/check.hpp"

#include <cmath>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "mdp/solve.hpp"
#include "selfish/build.hpp"

namespace {

selfish::SelfishModel small_model(double p = 0.3, double gamma = 0.5) {
  return selfish::build_model(
      selfish::AttackParams{.p = p, .gamma = gamma, .d = 2, .f = 1, .l = 4});
}

TEST(Algorithm1, BoundIsEpsilonTight) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  const auto result = analysis::analyze(model, options);
  EXPECT_LT(result.beta_hi - result.beta_lo, options.epsilon);
  EXPECT_EQ(result.errev_lower_bound, result.beta_lo);
  // The exact revenue of the returned strategy must lie within the band
  // certified by the search (allowing solver tolerance slack).
  EXPECT_GE(result.errev_of_policy, result.beta_lo - 1e-5);
  EXPECT_LE(result.errev_of_policy, result.beta_hi + 1e-5);
}

TEST(Algorithm1, SearchIterationsMatchEpsilon) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1.0 / 64.0;
  const auto result = analysis::analyze(model, options);
  // The loop keeps halving while β_hi − β_lo ≥ ε: widths 1, …, 2⁻⁶ all
  // trigger another step, so [0,1] takes 7 solves to get below 2⁻⁶.
  EXPECT_EQ(result.search_iterations, 7);
}

TEST(Algorithm1, TighterEpsilonNarrowsTheBand) {
  const auto model = small_model();
  analysis::AnalysisOptions coarse, fine;
  coarse.epsilon = 1e-2;
  fine.epsilon = 1e-4;
  const auto r_coarse = analysis::analyze(model, coarse);
  const auto r_fine = analysis::analyze(model, fine);
  // Both brackets must contain the same ERRev*.
  EXPECT_LE(r_coarse.beta_lo, r_fine.beta_hi + 1e-9);
  EXPECT_GE(r_coarse.beta_hi, r_fine.beta_lo - 1e-9);
  EXPECT_LT(r_fine.beta_hi - r_fine.beta_lo,
            r_coarse.beta_hi - r_coarse.beta_lo);
}

TEST(Algorithm1, MeanPayoffMonotoneInBeta) {
  // Theorem 3.1 rests on MP*_β decreasing in β; verify on the real model.
  const auto model = small_model();
  double previous = 1e100;
  for (double beta = 0.0; beta <= 1.0; beta += 0.2) {
    const auto solve =
        mdp::solve_mean_payoff(model.mdp, model.mdp.beta_rewards(beta));
    ASSERT_TRUE(solve.converged);
    EXPECT_LE(solve.gain, previous + 1e-7) << "beta=" << beta;
    previous = solve.gain;
  }
}

TEST(Algorithm1, RootOfMeanPayoffIsERRev) {
  // MP*_β = 0 exactly at β* = ERRev* (Theorem 3.1 part 1): the gain at the
  // returned β_lo must be ≈ 0 from above.
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1e-5;
  const auto result = analysis::analyze(model, options);
  const auto at_lo =
      mdp::solve_mean_payoff(model.mdp, model.mdp.beta_rewards(result.beta_lo));
  EXPECT_GE(at_lo.gain, -1e-6);
  EXPECT_LE(at_lo.gain, 1e-2);  // small: β_lo is within ε of the root
}

TEST(Algorithm1, PolicyIterationSolverAgrees) {
  const auto model = small_model();
  analysis::AnalysisOptions vi_options, pi_options;
  vi_options.epsilon = 1e-4;
  pi_options.epsilon = 1e-4;
  pi_options.solver.method = mdp::SolverMethod::kPolicyIteration;
  const auto vi = analysis::analyze(model, vi_options);
  const auto pi = analysis::analyze(model, pi_options);
  EXPECT_NEAR(vi.errev_of_policy, pi.errev_of_policy, 1e-6);
  EXPECT_NEAR(vi.errev_lower_bound, pi.errev_lower_bound, 2e-4);
}

TEST(Algorithm1, DenseSolverAgreesOnTinyModel) {
  const auto model = selfish::build_model(
      selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = 1, .f = 1, .l = 3});
  analysis::AnalysisOptions vi_options, dense_options;
  vi_options.epsilon = 1e-4;
  dense_options.epsilon = 1e-4;
  dense_options.solver.method = mdp::SolverMethod::kDensePolicyIteration;
  const auto vi = analysis::analyze(model, vi_options);
  const auto dense = analysis::analyze(model, dense_options);
  EXPECT_NEAR(vi.errev_of_policy, dense.errev_of_policy, 1e-6);
}

TEST(Algorithm1, WarmStartPreservesResult) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1e-4;
  const auto cold = analysis::analyze(model, options);
  const auto warm = analysis::analyze(model, options, &cold.final_values);
  EXPECT_DOUBLE_EQ(warm.errev_lower_bound, cold.errev_lower_bound);
  EXPECT_LE(warm.solver_iterations, cold.solver_iterations);
}

TEST(Algorithm1, SkippingExactEvaluationYieldsNaN) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1e-2;
  options.evaluate_exact_errev = false;
  const auto result = analysis::analyze(model, options);
  EXPECT_TRUE(std::isnan(result.errev_of_policy));
}

TEST(Algorithm1, RejectsBadEpsilon) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 0.0;
  EXPECT_THROW(analysis::analyze(model, options), support::InvalidArgument);
  options.epsilon = 1.0;
  EXPECT_THROW(analysis::analyze(model, options), support::InvalidArgument);
}

TEST(Algorithm1, ReportsTimings) {
  const auto model = small_model();
  analysis::AnalysisOptions options;
  options.epsilon = 1e-2;
  const auto result = analysis::analyze(model, options);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.solver_iterations, 0);
}

}  // namespace
