// Shared fixtures: small hand-checkable MDPs and random-model generators
// used across the solver test files.
#pragma once

#include <vector>

#include "mdp/builder.hpp"
#include "mdp/mdp.hpp"
#include "support/rng.hpp"

namespace test_helpers {

/// A two-state, purely deterministic cycle:
///   s0 --a--> s1 (adversary count 1), s1 --a--> s0 (honest count 1).
/// Gain of the only policy under reward (adv − β(adv+hon)) is 1/2 − β.
inline mdp::Mdp two_state_cycle() {
  mdp::MdpBuilder b;
  b.add_state();
  b.add_action();
  b.add_transition(1, 1.0, {1, 0});
  b.add_state();
  b.add_action();
  b.add_transition(0, 1.0, {0, 1});
  return b.build(0);
}

/// The textbook two-action chain:
///   s0: action "stay" self-loops with reward counts (1,1) — gain 0 for
///       β = 1/2; action "go" moves to s1 with counts (1,0);
///   s1: single action back to s0 with counts (1,0).
/// Optimal mean payoff under reward = adv − β·(adv+hon):
///   stay forever:    1 − 2β
///   cycle s0<->s1:   1 − β
/// so "go" is optimal for all β > 0.
inline mdp::Mdp two_action_choice() {
  mdp::MdpBuilder b;
  b.add_state();
  b.add_action(/*label=*/0);  // stay
  b.add_transition(0, 1.0, {1, 1});
  b.add_action(/*label=*/1);  // go
  b.add_transition(1, 1.0, {1, 0});
  b.add_state();
  b.add_action(/*label=*/2);
  b.add_transition(0, 1.0, {1, 0});
  return b.build(0);
}

/// A random strongly-connected-ish MDP: every action has a positive-
/// probability edge back to state 0, making every policy unichain.
inline mdp::Mdp random_unichain(support::Rng& rng, int num_states,
                                int max_actions, int max_branch) {
  mdp::MdpBuilder b;
  for (int s = 0; s < num_states; ++s) {
    b.add_state();
    const int actions = 1 + static_cast<int>(rng.next_below(max_actions));
    for (int a = 0; a < actions; ++a) {
      b.add_action();
      const int branch = 1 + static_cast<int>(rng.next_below(max_branch));
      std::vector<double> weights(branch + 1);
      for (double& w : weights) w = 0.05 + rng.next_double();
      double total = 0.0;
      for (double w : weights) total += w;
      // Last edge always returns to state 0 → unichain under any policy.
      for (int e = 0; e <= branch; ++e) {
        const auto target = static_cast<mdp::StateId>(
            e == branch ? 0 : rng.next_below(num_states));
        const mdp::RewardCounts counts{
            static_cast<std::uint16_t>(rng.next_below(3)),
            static_cast<std::uint16_t>(rng.next_below(3))};
        b.add_transition(target, weights[e] / total, counts);
      }
    }
  }
  return b.build(0);
}

}  // namespace test_helpers
