// Strategy serialization: round trips, validation, corruption handling.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/algorithm1.hpp"
#include "analysis/errev.hpp"
#include "analysis/strategy_io.hpp"
#include "support/check.hpp"

namespace {

selfish::SelfishModel make_model(double p = 0.3, double gamma = 0.5) {
  return selfish::build_model(
      selfish::AttackParams{.p = p, .gamma = gamma, .d = 2, .f = 1, .l = 4});
}

mdp::Policy optimal_policy(const selfish::SelfishModel& model) {
  analysis::AnalysisOptions options;
  options.epsilon = 1e-4;
  return analysis::analyze(model, options).policy;
}

TEST(StrategyIo, RoundTripPreservesPolicyBehavior) {
  const auto model = make_model();
  const auto policy = optimal_policy(model);
  const std::string text = analysis::strategy_to_string(model, policy);
  const auto loaded = analysis::strategy_from_string(model, text);
  // Decision states must match exactly; mining states are forced anyway.
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    if (model.space.state_of(s).type != selfish::StepType::kMining) {
      EXPECT_EQ(loaded[s], policy[s]) << "state " << s;
    }
  }
  EXPECT_NEAR(analysis::exact_errev(model, loaded),
              analysis::exact_errev(model, policy), 1e-12);
}

TEST(StrategyIo, HeaderMentionsParameters) {
  const auto model = make_model();
  const auto text = analysis::strategy_to_string(model, optimal_policy(model));
  EXPECT_NE(text.find("selfish-mining-strategy v1"), std::string::npos);
  EXPECT_NE(text.find("d=2"), std::string::npos);
  EXPECT_NE(text.find("f=1"), std::string::npos);
}

TEST(StrategyIo, RejectsWrongModelParameters) {
  const auto model = make_model(0.3, 0.5);
  const auto text = analysis::strategy_to_string(model, optimal_policy(model));
  const auto other = make_model(0.25, 0.5);
  EXPECT_THROW(analysis::strategy_from_string(other, text),
               support::InvalidArgument);
}

TEST(StrategyIo, RejectsBadMagic) {
  const auto model = make_model();
  EXPECT_THROW(analysis::strategy_from_string(model, "garbage\n"),
               support::InvalidArgument);
}

TEST(StrategyIo, RejectsTruncatedFile) {
  const auto model = make_model();
  auto text = analysis::strategy_to_string(model, optimal_policy(model));
  text.resize(text.size() / 2);
  // Either an entry count mismatch or a parse failure — both must throw.
  EXPECT_THROW(analysis::strategy_from_string(model, text), support::Error);
}

TEST(StrategyIo, RejectsForeignAction) {
  const auto model = make_model();
  auto text = analysis::strategy_to_string(model, optimal_policy(model));
  // Corrupt one entry's action label to an impossible release.
  const auto pos = text.rfind(' ');
  text = text.substr(0, pos + 1) + "4278124286\n";  // release(254,254,254)
  EXPECT_THROW(analysis::strategy_from_string(model, text), support::Error);
}

TEST(StrategyIo, SavedStrategyOmitsMiningStates) {
  const auto model = make_model();
  const auto text = analysis::strategy_to_string(model, optimal_policy(model));
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);  // magic
  std::getline(is, line);  // params
  std::getline(is, line);  // states N
  std::size_t advertised = 0;
  ASSERT_EQ(std::sscanf(line.c_str(), "states %zu", &advertised), 1);
  std::size_t decision = 0;
  for (mdp::StateId s = 0; s < model.mdp.num_states(); ++s) {
    if (model.space.state_of(s).type != selfish::StepType::kMining) {
      ++decision;
    }
  }
  EXPECT_EQ(advertised, decision);
  EXPECT_LT(decision, model.mdp.num_states());
}

}  // namespace
