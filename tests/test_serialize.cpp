// Binary model serialization: MDP round trips and the selfish-model cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "analysis/errev.hpp"
#include "mdp/serialize.hpp"
#include "mdp/value_iteration.hpp"
#include "selfish/cache.hpp"
#include "support/check.hpp"
#include "test_helpers.hpp"

namespace {

void expect_same_structure(const mdp::Mdp& a, const mdp::Mdp& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  ASSERT_EQ(a.num_actions(), b.num_actions());
  ASSERT_EQ(a.num_transitions(), b.num_transitions());
  EXPECT_EQ(a.initial_state(), b.initial_state());
  for (mdp::ActionId act = 0; act < a.num_actions(); ++act) {
    EXPECT_EQ(a.action_state(act), b.action_state(act));
    EXPECT_EQ(a.action_label(act), b.action_label(act));
    const auto ta = a.transitions(act);
    const auto tb = b.transitions(act);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].target, tb[i].target);
      EXPECT_DOUBLE_EQ(ta[i].prob, tb[i].prob);
      EXPECT_EQ(ta[i].counts, tb[i].counts);
    }
  }
}

TEST(MdpSerialize, RoundTripSmallModel) {
  const mdp::Mdp original = test_helpers::two_action_choice();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  mdp::save_binary(original, buffer);
  const mdp::Mdp loaded = mdp::load_binary(buffer);
  expect_same_structure(original, loaded);
}

TEST(MdpSerialize, RoundTripRandomModel) {
  support::Rng rng(606);
  const mdp::Mdp original = test_helpers::random_unichain(rng, 40, 3, 4);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  mdp::save_binary(original, buffer);
  const mdp::Mdp loaded = mdp::load_binary(buffer);
  expect_same_structure(original, loaded);
  // Behavior preserved, not just structure.
  const auto rewards = original.beta_rewards(0.3);
  const auto via_original = mdp::value_iteration(original, rewards);
  const auto via_loaded = mdp::value_iteration(loaded, rewards);
  EXPECT_NEAR(via_original.gain, via_loaded.gain, 1e-9);
}

TEST(MdpSerialize, RejectsGarbage) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  buffer << "not a model";
  EXPECT_THROW(mdp::load_binary(buffer), support::Error);
}

TEST(MdpSerialize, RejectsTruncation) {
  const mdp::Mdp original = test_helpers::two_state_cycle();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  mdp::save_binary(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(mdp::load_binary(truncated), support::Error);
}

TEST(ModelCache, RoundTripPreservesAnalysis) {
  const selfish::AttackParams params{.p = 0.3, .gamma = 0.5, .d = 2, .f = 1, .l = 4};
  const auto original = selfish::build_model(params);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  selfish::save_model(original, buffer);
  const auto loaded = selfish::load_model(buffer, params);

  expect_same_structure(original.mdp, loaded.mdp);
  for (mdp::StateId s = 0; s < original.mdp.num_states(); ++s) {
    EXPECT_EQ(original.space.state_of(s), loaded.space.state_of(s));
  }
}

TEST(ModelCache, RejectsParameterMismatch) {
  const selfish::AttackParams params{.p = 0.3, .gamma = 0.5, .d = 2, .f = 1, .l = 4};
  const auto model = selfish::build_model(params);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  selfish::save_model(model, buffer);
  selfish::AttackParams other = params;
  other.gamma = 0.75;
  EXPECT_THROW(selfish::load_model(buffer, other), support::InvalidArgument);
}

TEST(ModelCache, BuildOrLoadUsesAndRefreshesTheFile) {
  const selfish::AttackParams params{.p = 0.25, .gamma = 0.5, .d = 2, .f = 1, .l = 3};
  const std::string path = "model_cache_test.bin";
  std::remove(path.c_str());

  // First call builds and writes the cache.
  const auto first = selfish::build_or_load_model(params, path);
  // Second call must load the identical model from disk.
  const auto second = selfish::build_or_load_model(params, path);
  expect_same_structure(first.mdp, second.mdp);

  // A different configuration ignores the stale cache and rebuilds.
  selfish::AttackParams other = params;
  other.p = 0.3;
  const auto third = selfish::build_or_load_model(other, path);
  EXPECT_EQ(third.params.p, 0.3);
  std::remove(path.c_str());
}

}  // namespace
