// Single-tree selfish-mining baseline: closed forms and monotonicity.
#include <gtest/gtest.h>

#include "baselines/single_tree.hpp"
#include "support/check.hpp"

namespace {

using baselines::SingleTreeParams;
using baselines::analyze_single_tree;

TEST(SingleTree, ZeroResourceEarnsNothing) {
  const SingleTreeParams params{.p = 0.0, .gamma = 0.5};
  const auto result = analyze_single_tree(params);
  EXPECT_DOUBLE_EQ(result.errev, 0.0);
  EXPECT_DOUBLE_EQ(result.expected_adversary, 0.0);
  EXPECT_NEAR(result.expected_honest, 1.0, 1e-12);
}

TEST(SingleTree, DepthOneClosedForm) {
  // max_depth = max_width = 1: the adversary mines one private block on the
  // fork point. Round outcomes from the empty tree:
  //   honest first (prob 1−p): H += 1.             [absorb]
  //   adversary first (prob p): tree depth 1; next block is honest w.p. 1
  //   (σ = 0 targets left), giving the γ race: A=1 w.p. γ, H=1 w.p. 1−γ.
  // E[A] = p·γ, E[H] = (1−p) + p(1−γ).
  const double p = 0.3, gamma = 0.25;
  const SingleTreeParams params{.p = p, .gamma = gamma, .max_depth = 1,
                                .max_width = 1};
  const auto result = analyze_single_tree(params);
  const double ea = p * gamma;
  const double eh = (1 - p) + p * (1 - gamma);
  EXPECT_NEAR(result.expected_adversary, ea, 1e-12);
  EXPECT_NEAR(result.expected_honest, eh, 1e-12);
  EXPECT_NEAR(result.errev, ea / (ea + eh), 1e-12);
}

TEST(SingleTree, GammaZeroDepthOneIsWorseThanHonest) {
  // With γ = 0 the withheld block is always lost: ERRev < p.
  const SingleTreeParams params{.p = 0.3, .gamma = 0.0, .max_depth = 1,
                                .max_width = 1};
  EXPECT_LT(analyze_single_tree(params).errev, 0.3);
}

TEST(SingleTree, MonotoneInResource) {
  double previous = -1.0;
  for (double p = 0.0; p <= 0.45; p += 0.05) {
    const SingleTreeParams params{.p = p, .gamma = 0.5};
    const double errev = analyze_single_tree(params).errev;
    EXPECT_GE(errev, previous - 1e-12) << "p=" << p;
    previous = errev;
  }
}

TEST(SingleTree, MonotoneInGamma) {
  double previous = -1.0;
  for (double gamma = 0.0; gamma <= 1.0; gamma += 0.25) {
    const SingleTreeParams params{.p = 0.3, .gamma = gamma};
    const double errev = analyze_single_tree(params).errev;
    EXPECT_GE(errev, previous - 1e-12) << "gamma=" << gamma;
    previous = errev;
  }
}

TEST(SingleTree, WiderAndDeeperTreesHelp) {
  const SingleTreeParams narrow{.p = 0.3, .gamma = 0.5, .max_depth = 4,
                                .max_width = 1};
  const SingleTreeParams wide{.p = 0.3, .gamma = 0.5, .max_depth = 4,
                              .max_width = 5};
  const SingleTreeParams shallow{.p = 0.3, .gamma = 0.5, .max_depth = 2,
                                 .max_width = 5};
  const double narrow_errev = analyze_single_tree(narrow).errev;
  const double wide_errev = analyze_single_tree(wide).errev;
  const double shallow_errev = analyze_single_tree(shallow).errev;
  EXPECT_GT(wide_errev, narrow_errev);
  EXPECT_GE(wide_errev, shallow_errev - 1e-12);
}

TEST(SingleTree, BoundedByOne) {
  const SingleTreeParams params{.p = 0.45, .gamma = 1.0};
  const auto result = analyze_single_tree(params);
  EXPECT_GT(result.errev, 0.0);
  EXPECT_LT(result.errev, 1.0);
}

TEST(SingleTree, StateCountIsModest) {
  const SingleTreeParams params{.p = 0.3, .gamma = 0.5};
  const auto result = analyze_single_tree(params);
  EXPECT_GT(result.states_evaluated, 10u);
  EXPECT_LT(result.states_evaluated, 10000u);
}

TEST(SingleTree, ValidatesParameters) {
  SingleTreeParams params;
  params.p = 1.0;
  EXPECT_THROW(analyze_single_tree(params), support::InvalidArgument);
  params.p = 0.3;
  params.gamma = 2.0;
  EXPECT_THROW(analyze_single_tree(params), support::InvalidArgument);
  params.gamma = 0.5;
  params.max_depth = 0;
  EXPECT_THROW(analyze_single_tree(params), support::InvalidArgument);
  params.max_depth = 4;
  params.max_width = 0;
  EXPECT_THROW(analyze_single_tree(params), support::InvalidArgument);
}

}  // namespace
