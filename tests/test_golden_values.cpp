// Golden-value regression pins.
//
// The exact ERRev of the optimal strategy for a grid of configurations,
// as measured by this implementation (see EXPERIMENTS.md). These are not
// paper-derived truths — the paper's exact numbers depend on its
// under-specified tie semantics — but regression anchors: any future
// change to the transition semantics, reward accounting or solvers that
// moves these values is a behavioral change and must be deliberate.
#include <gtest/gtest.h>

#include "analysis/algorithm1.hpp"
#include "baselines/eyal_sirer.hpp"
#include "baselines/single_tree.hpp"
#include "selfish/build.hpp"

namespace {

struct GoldenCase {
  double p, gamma;
  int d, f;
  double errev;  // exact ERRev of the ε-optimal strategy, ε = 1e-4
};

class GoldenValues : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenValues, OptimalERRevIsStable) {
  const GoldenCase c = GetParam();
  const auto model = selfish::build_model(selfish::AttackParams{
      .p = c.p, .gamma = c.gamma, .d = c.d, .f = c.f, .l = 4});
  analysis::AnalysisOptions options;
  options.epsilon = 1e-4;
  const auto result = analysis::analyze(model, options);
  EXPECT_NEAR(result.errev_of_policy, c.errev, 5e-4)
      << "p=" << c.p << " gamma=" << c.gamma << " d=" << c.d
      << " f=" << c.f;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GoldenValues,
    ::testing::Values(
        // Figure 2 end points (p = 0.3) as measured; see EXPERIMENTS.md.
        GoldenCase{0.3, 0.0, 1, 1, 0.30000},
        GoldenCase{0.3, 0.5, 1, 1, 0.30000},
        GoldenCase{0.3, 1.0, 1, 1, 0.42019},
        GoldenCase{0.3, 0.0, 2, 1, 0.37734},
        GoldenCase{0.3, 0.5, 2, 1, 0.41051},
        GoldenCase{0.3, 1.0, 2, 1, 0.50900},
        GoldenCase{0.3, 0.0, 2, 2, 0.39685},
        GoldenCase{0.3, 0.5, 2, 2, 0.43927},
        GoldenCase{0.3, 0.75, 2, 2, 0.48127},
        // Mid-resource sanity points.
        GoldenCase{0.2, 0.5, 2, 2, 0.25277},
        GoldenCase{0.1, 0.5, 2, 1, 0.11482}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      const auto& c = info.param;
      return "d" + std::to_string(c.d) + "f" + std::to_string(c.f) + "g" +
             std::to_string(static_cast<int>(c.gamma * 100)) + "p" +
             std::to_string(static_cast<int>(c.p * 100));
    });

TEST(GoldenValues, SingleTreeBaseline) {
  const baselines::SingleTreeParams params{
      .p = 0.3, .gamma = 0.5, .max_depth = 4, .max_width = 5};
  EXPECT_NEAR(baselines::analyze_single_tree(params).errev, 0.21158, 5e-5);
}

TEST(GoldenValues, DeepConfigurationAtGammaHalf) {
  // The d=3, f=2 Figure-2 point at γ = 0.5 (the heaviest default config).
  const auto model = selfish::build_model(
      selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = 3, .f = 2, .l = 4});
  analysis::AnalysisOptions options;
  options.epsilon = 1e-3;
  const auto result = analysis::analyze(model, options);
  EXPECT_NEAR(result.errev_of_policy, 0.49616, 1e-3);
}

TEST(GoldenValues, EyalSirerReferencePoints) {
  // PoW selfish mining at the paper-relevant operating points.
  EXPECT_NEAR(baselines::eyal_sirer_revenue({0.3, 0.0}), 0.27314, 1e-4);
  EXPECT_NEAR(baselines::eyal_sirer_revenue({1.0 / 3.0, 0.0}), 1.0 / 3.0,
              1e-9);  // the γ=0 threshold is exactly p = 1/3
}

}  // namespace
