// BellmanKernel determinism contract (ISSUE acceptance criteria): the SoA
// kernel is bit-identical to the legacy AoS reference path — gain bounds,
// value vector, policy, iteration counts — for every solver method, and
// bit-identical to itself at any thread count (1 vs 8 byte-compared).
// Deliberately non-stochastic: it gates in the fast `ctest -LE stochastic`
// stage of every CI leg.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/algorithm1.hpp"
#include "mdp/solve.hpp"
#include "selfish/build.hpp"
#include "support/check.hpp"
#include "test_helpers.hpp"

namespace {

/// Byte-level equality of two double vectors (EXPECT_EQ would compare by
/// value and let -0.0 == 0.0 slip through).
bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_identical(const mdp::MeanPayoffResult& kernel,
                      const mdp::MeanPayoffResult& reference,
                      const std::string& label) {
  EXPECT_EQ(kernel.converged, reference.converged) << label;
  EXPECT_EQ(kernel.iterations, reference.iterations) << label;
  EXPECT_EQ(kernel.gain, reference.gain) << label;
  EXPECT_EQ(kernel.gain_lo, reference.gain_lo) << label;
  EXPECT_EQ(kernel.gain_hi, reference.gain_hi) << label;
  EXPECT_EQ(kernel.policy, reference.policy) << label;
  EXPECT_TRUE(same_bytes(kernel.values, reference.values)) << label;
}

selfish::SelfishModel build(int d, int f, int l = 4) {
  return selfish::build_model(
      selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = l});
}

TEST(BellmanKernel, FusedRewardMatchesBetaReward) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  for (const double beta : {0.0, 0.25, 0.41, 1.0}) {
    for (mdp::ActionId a = 0; a < model.mdp.num_actions(); a += 7) {
      ASSERT_EQ(kernel.reward(a, beta), model.mdp.beta_reward(a, beta))
          << "a=" << a << " beta=" << beta;
    }
  }
}

TEST(BellmanKernel, BitIdenticalToLegacyOnSelfishModels) {
  for (const auto& [d, f] : {std::pair{1, 1}, {2, 1}, {2, 2}}) {
    const auto model = build(d, f);
    const mdp::BellmanKernel kernel(model.mdp);
    for (const double beta : {0.2, 0.41, 0.8}) {
      const auto rewards = model.mdp.beta_rewards(beta);
      const std::string label = "d=" + std::to_string(d) +
                                " f=" + std::to_string(f) +
                                " beta=" + std::to_string(beta);
      expect_identical(kernel.value_iteration(beta),
                       mdp::value_iteration(model.mdp, rewards),
                       "vi " + label);
      expect_identical(kernel.gauss_seidel(beta),
                       mdp::gauss_seidel_value_iteration(model.mdp, rewards),
                       "gs " + label);
    }
  }
}

TEST(BellmanKernel, BitIdenticalToLegacyOnHandAndRandomModels) {
  support::Rng rng(4242);
  std::vector<mdp::Mdp> models;
  models.push_back(test_helpers::two_state_cycle());
  models.push_back(test_helpers::two_action_choice());
  models.push_back(test_helpers::random_unichain(rng, 60, 3, 4));
  for (std::size_t i = 0; i < models.size(); ++i) {
    const mdp::BellmanKernel kernel(models[i]);
    for (const double beta : {0.0, 0.4, 1.0}) {
      const auto rewards = models[i].beta_rewards(beta);
      const std::string label =
          "model=" + std::to_string(i) + " beta=" + std::to_string(beta);
      expect_identical(kernel.value_iteration(beta),
                       mdp::value_iteration(models[i], rewards),
                       "vi " + label);
      expect_identical(kernel.gauss_seidel(beta),
                       mdp::gauss_seidel_value_iteration(models[i], rewards),
                       "gs " + label);
    }
  }
}

TEST(BellmanKernel, FacadeBitIdenticalForAllSolverMethods) {
  // pi/dense fall back to the AoS path inside the kernel overload, so the
  // facade contract — solve_mean_payoff(kernel, β) ≡ solve_mean_payoff(m,
  // beta_rewards(β)) — holds for every method. Dense is O(n³): use the
  // small l=3 model for it.
  for (const auto method :
       {mdp::SolverMethod::kValueIteration, mdp::SolverMethod::kGaussSeidel,
        mdp::SolverMethod::kPolicyIteration,
        mdp::SolverMethod::kDensePolicyIteration}) {
    const bool dense = method == mdp::SolverMethod::kDensePolicyIteration;
    const auto model = dense ? build(1, 1, 3) : build(2, 1);
    const mdp::BellmanKernel kernel(model.mdp);
    mdp::SolveOptions options;
    options.method = method;
    const double beta = 0.41;
    expect_identical(
        mdp::solve_mean_payoff(kernel, beta, options),
        mdp::solve_mean_payoff(model.mdp, model.mdp.beta_rewards(beta),
                               options),
        "method=" + mdp::to_string(method));
  }
}

TEST(BellmanKernel, ThreadCountInvariantByteForByte) {
  // d=2,f=2 (1348 states) clears the kernel's per-worker floor, so the
  // 8-thread run genuinely takes the parallel path.
  const auto model = build(2, 2);
  ASSERT_GT(model.mdp.num_states(), 1024u);
  const mdp::BellmanKernel kernel(model.mdp);
  for (const double beta : {0.2, 0.43927}) {
    const auto vi_1 = kernel.value_iteration(beta, {}, nullptr, 1);
    const auto vi_8 = kernel.value_iteration(beta, {}, nullptr, 8);
    expect_identical(vi_8, vi_1, "vi beta=" + std::to_string(beta));
    const auto gs_1 = kernel.gauss_seidel(beta, {}, nullptr, 1);
    const auto gs_8 = kernel.gauss_seidel(beta, {}, nullptr, 8);
    expect_identical(gs_8, gs_1, "gs beta=" + std::to_string(beta));
  }
}

TEST(BellmanKernel, ThreadCountInvariantWithWarmStart) {
  const auto model = build(2, 2);
  const mdp::BellmanKernel kernel(model.mdp);
  const auto seed = kernel.value_iteration(0.40);
  const auto warm_1 = kernel.value_iteration(0.42, {}, &seed.values, 1);
  const auto warm_8 = kernel.value_iteration(0.42, {}, &seed.values, 8);
  expect_identical(warm_8, warm_1, "warm-started vi");
  EXPECT_LE(warm_1.iterations, seed.iterations);
}

TEST(BellmanKernel, AnalyzeKernelPathMatchesLegacyPath) {
  const auto model = build(2, 1);
  analysis::AnalysisOptions kernel_options, legacy_options;
  kernel_options.epsilon = 1e-3;
  legacy_options.epsilon = 1e-3;
  legacy_options.solver.use_kernel = false;
  for (const auto method : {mdp::SolverMethod::kValueIteration,
                            mdp::SolverMethod::kGaussSeidel}) {
    kernel_options.solver.method = method;
    legacy_options.solver.method = method;
    const auto via_kernel = analysis::analyze(model, kernel_options);
    const auto via_legacy = analysis::analyze(model, legacy_options);
    const std::string label = "method=" + mdp::to_string(method);
    EXPECT_EQ(via_kernel.errev_lower_bound, via_legacy.errev_lower_bound)
        << label;
    EXPECT_EQ(via_kernel.errev_of_policy, via_legacy.errev_of_policy)
        << label;
    EXPECT_EQ(via_kernel.policy, via_legacy.policy) << label;
    EXPECT_EQ(via_kernel.solver_iterations, via_legacy.solver_iterations)
        << label;
    EXPECT_TRUE(same_bytes(via_kernel.final_values, via_legacy.final_values))
        << label;
  }
}

TEST(BellmanKernel, AnalyzeThreadCountInvariant) {
  const auto model = build(2, 2);
  analysis::AnalysisOptions options_1, options_8;
  options_1.epsilon = 1e-3;
  options_8.epsilon = 1e-3;
  options_8.solver.threads = 8;
  const auto serial = analysis::analyze(model, options_1);
  const auto threaded = analysis::analyze(model, options_8);
  EXPECT_EQ(threaded.errev_lower_bound, serial.errev_lower_bound);
  EXPECT_EQ(threaded.errev_of_policy, serial.errev_of_policy);
  EXPECT_EQ(threaded.policy, serial.policy);
  EXPECT_TRUE(same_bytes(threaded.final_values, serial.final_values));
}

TEST(BellmanKernel, NonConvergedRunStillReturnsConsistentPolicy) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  mdp::MeanPayoffOptions options;
  options.max_iterations = 3;
  options.tol = 1e-15;
  const auto rewards = model.mdp.beta_rewards(0.41);
  for (const int threads : {1, 8}) {
    const auto vi = kernel.value_iteration(0.41, options, nullptr, threads);
    EXPECT_FALSE(vi.converged);
    expect_identical(vi, mdp::value_iteration(model.mdp, rewards, options),
                     "non-converged vi");
    const auto gs = kernel.gauss_seidel(0.41, options, nullptr, threads);
    EXPECT_FALSE(gs.converged);
    expect_identical(
        gs, mdp::gauss_seidel_value_iteration(model.mdp, rewards, options),
        "non-converged gs");
    // Every state got a real action even without convergence.
    for (const mdp::ActionId a : vi.policy) EXPECT_NE(a, mdp::kInvalidAction);
    for (const mdp::ActionId a : gs.policy) EXPECT_NE(a, mdp::kInvalidAction);
  }
}

TEST(BellmanKernel, RejectsBadArguments) {
  const mdp::Mdp m = test_helpers::two_state_cycle();
  const mdp::BellmanKernel kernel(m);
  mdp::MeanPayoffOptions options;
  options.tau = 0.0;
  EXPECT_THROW(kernel.value_iteration(0.0, options),
               support::InvalidArgument);
  options.tau = 0.5;
  options.tol = 0.0;
  EXPECT_THROW(kernel.gauss_seidel(0.0, options), support::InvalidArgument);
  options.tol = 1e-7;
  options.max_iterations = 0;
  EXPECT_THROW(kernel.value_iteration(0.0, options),
               support::InvalidArgument);
}

TEST(BellmanKernel, ReportsSoAFootprint) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  // targets (4 B) + probs (8 B) per transition, adv + tot per action.
  EXPECT_GE(kernel.memory_bytes(),
            model.mdp.num_transitions() * 12 +
                model.mdp.num_actions() * 16);
}

}  // namespace
