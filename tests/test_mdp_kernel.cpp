// BellmanKernel determinism contract (ISSUE acceptance criteria): the SoA
// kernel is bit-identical to the legacy AoS reference path — gain bounds,
// value vector, policy, iteration counts — for every solver method, and
// bit-identical to itself at any thread count (1 vs 8 byte-compared).
// Deliberately non-stochastic: it gates in the fast `ctest -LE stochastic`
// stage of every CI leg.
#include <gtest/gtest.h>

#include <cstring>

#include "analysis/algorithm1.hpp"
#include "mdp/bellman_gather.hpp"
#include "mdp/solve.hpp"
#include "selfish/build.hpp"
#include "support/aligned.hpp"
#include "support/check.hpp"
#include "test_helpers.hpp"

namespace {

/// Byte-level equality of two double vectors (EXPECT_EQ would compare by
/// value and let -0.0 == 0.0 slip through).
bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void expect_identical(const mdp::MeanPayoffResult& kernel,
                      const mdp::MeanPayoffResult& reference,
                      const std::string& label) {
  EXPECT_EQ(kernel.converged, reference.converged) << label;
  EXPECT_EQ(kernel.iterations, reference.iterations) << label;
  EXPECT_EQ(kernel.gain, reference.gain) << label;
  EXPECT_EQ(kernel.gain_lo, reference.gain_lo) << label;
  EXPECT_EQ(kernel.gain_hi, reference.gain_hi) << label;
  EXPECT_EQ(kernel.policy, reference.policy) << label;
  EXPECT_TRUE(same_bytes(kernel.values, reference.values)) << label;
}

selfish::SelfishModel build(int d, int f, int l = 4) {
  return selfish::build_model(
      selfish::AttackParams{.p = 0.3, .gamma = 0.5, .d = d, .f = f, .l = l});
}

TEST(BellmanKernel, FusedRewardMatchesBetaReward) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  for (const double beta : {0.0, 0.25, 0.41, 1.0}) {
    for (mdp::ActionId a = 0; a < model.mdp.num_actions(); a += 7) {
      ASSERT_EQ(kernel.reward(a, beta), model.mdp.beta_reward(a, beta))
          << "a=" << a << " beta=" << beta;
    }
  }
}

TEST(BellmanKernel, BitIdenticalToLegacyOnSelfishModels) {
  for (const auto& [d, f] : {std::pair{1, 1}, {2, 1}, {2, 2}}) {
    const auto model = build(d, f);
    const mdp::BellmanKernel kernel(model.mdp);
    for (const double beta : {0.2, 0.41, 0.8}) {
      const auto rewards = model.mdp.beta_rewards(beta);
      const std::string label = "d=" + std::to_string(d) +
                                " f=" + std::to_string(f) +
                                " beta=" + std::to_string(beta);
      expect_identical(kernel.value_iteration(beta),
                       mdp::value_iteration(model.mdp, rewards),
                       "vi " + label);
      expect_identical(kernel.gauss_seidel(beta),
                       mdp::gauss_seidel_value_iteration(model.mdp, rewards),
                       "gs " + label);
    }
  }
}

TEST(BellmanKernel, BitIdenticalToLegacyOnHandAndRandomModels) {
  support::Rng rng(4242);
  std::vector<mdp::Mdp> models;
  models.push_back(test_helpers::two_state_cycle());
  models.push_back(test_helpers::two_action_choice());
  models.push_back(test_helpers::random_unichain(rng, 60, 3, 4));
  for (std::size_t i = 0; i < models.size(); ++i) {
    const mdp::BellmanKernel kernel(models[i]);
    for (const double beta : {0.0, 0.4, 1.0}) {
      const auto rewards = models[i].beta_rewards(beta);
      const std::string label =
          "model=" + std::to_string(i) + " beta=" + std::to_string(beta);
      expect_identical(kernel.value_iteration(beta),
                       mdp::value_iteration(models[i], rewards),
                       "vi " + label);
      expect_identical(kernel.gauss_seidel(beta),
                       mdp::gauss_seidel_value_iteration(models[i], rewards),
                       "gs " + label);
    }
  }
}

TEST(BellmanKernel, FacadeBitIdenticalForAllSolverMethods) {
  // pi/dense fall back to the AoS path inside the kernel overload, so the
  // facade contract — solve_mean_payoff(kernel, β) ≡ solve_mean_payoff(m,
  // beta_rewards(β)) — holds for every method. Dense is O(n³): use the
  // small l=3 model for it.
  for (const auto method :
       {mdp::SolverMethod::kValueIteration, mdp::SolverMethod::kGaussSeidel,
        mdp::SolverMethod::kPolicyIteration,
        mdp::SolverMethod::kDensePolicyIteration}) {
    const bool dense = method == mdp::SolverMethod::kDensePolicyIteration;
    const auto model = dense ? build(1, 1, 3) : build(2, 1);
    const mdp::BellmanKernel kernel(model.mdp);
    mdp::SolveOptions options;
    options.method = method;
    const double beta = 0.41;
    expect_identical(
        mdp::solve_mean_payoff(kernel, beta, options),
        mdp::solve_mean_payoff(model.mdp, model.mdp.beta_rewards(beta),
                               options),
        "method=" + mdp::to_string(method));
  }
}

TEST(BellmanKernel, ThreadCountInvariantByteForByte) {
  // d=2,f=2 (1348 states) clears the kernel's per-worker floor, so the
  // 8-thread run genuinely takes the parallel path.
  const auto model = build(2, 2);
  ASSERT_GT(model.mdp.num_states(), 1024u);
  const mdp::BellmanKernel kernel(model.mdp);
  for (const double beta : {0.2, 0.43927}) {
    const auto vi_1 = kernel.value_iteration(beta, {}, nullptr, 1);
    const auto vi_8 = kernel.value_iteration(beta, {}, nullptr, 8);
    expect_identical(vi_8, vi_1, "vi beta=" + std::to_string(beta));
    const auto gs_1 = kernel.gauss_seidel(beta, {}, nullptr, 1);
    const auto gs_8 = kernel.gauss_seidel(beta, {}, nullptr, 8);
    expect_identical(gs_8, gs_1, "gs beta=" + std::to_string(beta));
  }
}

TEST(BellmanKernel, ThreadCountInvariantWithWarmStart) {
  const auto model = build(2, 2);
  const mdp::BellmanKernel kernel(model.mdp);
  const auto seed = kernel.value_iteration(0.40);
  const auto warm_1 = kernel.value_iteration(0.42, {}, &seed.values, 1);
  const auto warm_8 = kernel.value_iteration(0.42, {}, &seed.values, 8);
  expect_identical(warm_8, warm_1, "warm-started vi");
  EXPECT_LE(warm_1.iterations, seed.iterations);
}

TEST(BellmanKernel, AnalyzeKernelPathMatchesLegacyPath) {
  const auto model = build(2, 1);
  analysis::AnalysisOptions kernel_options, legacy_options;
  kernel_options.epsilon = 1e-3;
  legacy_options.epsilon = 1e-3;
  legacy_options.solver.use_kernel = false;
  for (const auto method : {mdp::SolverMethod::kValueIteration,
                            mdp::SolverMethod::kGaussSeidel}) {
    kernel_options.solver.method = method;
    legacy_options.solver.method = method;
    const auto via_kernel = analysis::analyze(model, kernel_options);
    const auto via_legacy = analysis::analyze(model, legacy_options);
    const std::string label = "method=" + mdp::to_string(method);
    EXPECT_EQ(via_kernel.errev_lower_bound, via_legacy.errev_lower_bound)
        << label;
    EXPECT_EQ(via_kernel.errev_of_policy, via_legacy.errev_of_policy)
        << label;
    EXPECT_EQ(via_kernel.policy, via_legacy.policy) << label;
    EXPECT_EQ(via_kernel.solver_iterations, via_legacy.solver_iterations)
        << label;
    EXPECT_TRUE(same_bytes(via_kernel.final_values, via_legacy.final_values))
        << label;
  }
}

TEST(BellmanKernel, AnalyzeThreadCountInvariant) {
  const auto model = build(2, 2);
  analysis::AnalysisOptions options_1, options_8;
  options_1.epsilon = 1e-3;
  options_8.epsilon = 1e-3;
  options_8.solver.threads = 8;
  const auto serial = analysis::analyze(model, options_1);
  const auto threaded = analysis::analyze(model, options_8);
  EXPECT_EQ(threaded.errev_lower_bound, serial.errev_lower_bound);
  EXPECT_EQ(threaded.errev_of_policy, serial.errev_of_policy);
  EXPECT_EQ(threaded.policy, serial.policy);
  EXPECT_TRUE(same_bytes(threaded.final_values, serial.final_values));
}

TEST(BellmanKernel, NonConvergedRunStillReturnsConsistentPolicy) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  mdp::MeanPayoffOptions options;
  options.max_iterations = 3;
  options.tol = 1e-15;
  const auto rewards = model.mdp.beta_rewards(0.41);
  for (const int threads : {1, 8}) {
    const auto vi = kernel.value_iteration(0.41, options, nullptr, threads);
    EXPECT_FALSE(vi.converged);
    expect_identical(vi, mdp::value_iteration(model.mdp, rewards, options),
                     "non-converged vi");
    const auto gs = kernel.gauss_seidel(0.41, options, nullptr, threads);
    EXPECT_FALSE(gs.converged);
    expect_identical(
        gs, mdp::gauss_seidel_value_iteration(model.mdp, rewards, options),
        "non-converged gs");
    // Every state got a real action even without convergence.
    for (const mdp::ActionId a : vi.policy) EXPECT_NE(a, mdp::kInvalidAction);
    for (const mdp::ActionId a : gs.policy) EXPECT_NE(a, mdp::kInvalidAction);
  }
}

TEST(BellmanKernel, RejectsBadArguments) {
  const mdp::Mdp m = test_helpers::two_state_cycle();
  const mdp::BellmanKernel kernel(m);
  mdp::MeanPayoffOptions options;
  options.tau = 0.0;
  EXPECT_THROW(kernel.value_iteration(0.0, options),
               support::InvalidArgument);
  options.tau = 0.5;
  options.tol = 0.0;
  EXPECT_THROW(kernel.gauss_seidel(0.0, options), support::InvalidArgument);
  options.tol = 1e-7;
  options.max_iterations = 0;
  EXPECT_THROW(kernel.value_iteration(0.0, options),
               support::InvalidArgument);
}

/// Every gather mode compiled in AND supported by this CPU, scalar first.
/// Hosts without AVX exercise just the scalar entry — the dispatch
/// contract (unavailable → gather_mode_available false) is still covered.
std::vector<mdp::GatherMode> available_gather_modes() {
  std::vector<mdp::GatherMode> modes{mdp::GatherMode::kScalar};
  for (const auto mode :
       {mdp::GatherMode::kAvx2, mdp::GatherMode::kAvx512}) {
    if (mdp::gather_mode_available(mode)) modes.push_back(mode);
  }
  return modes;
}

TEST(BellmanKernelGather, AllModesBitIdenticalAtEveryThreadCount) {
  // The ISSUE's acceptance bar: the scalar fallback (and every SIMD
  // gather path) is bit-identical to the plain path at every thread
  // count. Baseline = scalar, no prefetch, single thread — the exact
  // arithmetic of the legacy AoS path (pinned above).
  const auto model = build(2, 2);
  const mdp::BellmanKernel kernel(model.mdp);
  mdp::KernelTuning baseline;
  baseline.gather = mdp::GatherMode::kScalar;
  baseline.prefetch_distance = 0;
  const double beta = 0.43927;
  const auto vi_base = kernel.value_iteration(beta, {}, nullptr, 1, baseline);
  const auto gs_base = kernel.gauss_seidel(beta, {}, nullptr, 1, baseline);
  for (const auto mode : available_gather_modes()) {
    for (const int prefetch : {0, 8, 64}) {
      for (const int threads : {1, 2, 8}) {
        mdp::KernelTuning tuning;
        tuning.gather = mode;
        tuning.prefetch_distance = prefetch;
        const std::string label = std::string("gather=") +
                                  mdp::to_string(mode) +
                                  " prefetch=" + std::to_string(prefetch) +
                                  " threads=" + std::to_string(threads);
        expect_identical(
            kernel.value_iteration(beta, {}, nullptr, threads, tuning),
            vi_base, "vi " + label);
        expect_identical(
            kernel.gauss_seidel(beta, {}, nullptr, threads, tuning),
            gs_base, "gs " + label);
      }
    }
  }
}

TEST(BellmanKernelGather, AutoModeMatchesScalarByteForByte) {
  // kAuto dispatches to the widest available ISA (possibly scalar);
  // whatever it picks must reproduce the scalar bytes.
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  mdp::KernelTuning scalar;
  scalar.gather = mdp::GatherMode::kScalar;
  expect_identical(kernel.value_iteration(0.41, {}, nullptr, 1, {}),
                   kernel.value_iteration(0.41, {}, nullptr, 1, scalar),
                   "auto vs scalar vi");
  expect_identical(kernel.gauss_seidel(0.41, {}, nullptr, 1, {}),
                   kernel.gauss_seidel(0.41, {}, nullptr, 1, scalar),
                   "auto vs scalar gs");
}

TEST(BellmanKernelGather, HardwareGatherFunctionsMatchScalarReference) {
  // Direct contract check of the dispatched GatherProductsFn entries
  // against the scalar reference on an adversarial index pattern
  // (repeats, strides, tail shorter than a vector).
  support::Rng rng(99);
  constexpr std::uint32_t kCount = 1027;  // deliberately not a multiple of 8
  std::vector<double> values(513);
  for (double& v : values) v = rng.next_double() * 2.0 - 1.0;
  std::vector<mdp::StateId> targets(kCount);
  std::vector<double> probs(kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    targets[i] = static_cast<mdp::StateId>(
        rng.next_below(static_cast<std::uint64_t>(values.size())));
    probs[i] = rng.next_double();
  }
  support::AlignedDoubles expected(kCount), actual(kCount);
  mdp::detail::scalar_gather_products(probs.data(), targets.data(),
                                      values.data(), expected.data(), kCount,
                                      /*prefetch=*/8);
  const auto check = [&](mdp::detail::GatherProductsFn fn, const char* name) {
    if (fn == nullptr) {
      GTEST_LOG_(INFO) << name << " unavailable on this build/CPU; skipped";
      return;
    }
    fn(probs.data(), targets.data(), values.data(), actual.data(), kCount, 0);
    EXPECT_EQ(std::memcmp(actual.data(), expected.data(),
                          kCount * sizeof(double)),
              0)
        << name;
  };
  check(mdp::detail::avx2_gather_products(), "avx2");
  check(mdp::detail::avx512_gather_products(), "avx512");
}

TEST(BellmanKernelGather, ExplicitUnavailableModeRejects) {
  const mdp::Mdp m = test_helpers::two_state_cycle();
  const mdp::BellmanKernel kernel(m);
  for (const auto mode :
       {mdp::GatherMode::kAvx2, mdp::GatherMode::kAvx512}) {
    if (mdp::gather_mode_available(mode)) continue;
    mdp::KernelTuning tuning;
    tuning.gather = mode;
    EXPECT_THROW(kernel.value_iteration(0.0, {}, nullptr, 1, tuning),
                 support::InvalidArgument)
        << mdp::to_string(mode);
  }
  mdp::KernelTuning negative;
  negative.prefetch_distance = -1;
  EXPECT_THROW(kernel.value_iteration(0.0, {}, nullptr, 1, negative),
               support::InvalidArgument);
}

TEST(BellmanKernel, WarmStartSizeMismatchRejectsWithReason) {
  // The pre-PR kernel compared warm_start->size() (size_t) against the
  // 32-bit state count and silently cold-started on mismatch — masking
  // caller bugs AND breaking the job-key promise that a warm-keyed
  // result really was warm-started. Now it rejects loudly; the one
  // legitimate cross-model boundary (grid neighbors with different
  // reachable-state counts) is handled explicitly in analysis::analyze.
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  const std::vector<double> wrong_small(3, 0.0);
  const std::vector<double> wrong_big(model.mdp.num_states() + 1, 0.0);
  EXPECT_THROW(kernel.value_iteration(0.41, {}, &wrong_small),
               support::InvalidArgument);
  EXPECT_THROW(kernel.value_iteration(0.41, {}, &wrong_big),
               support::InvalidArgument);
  EXPECT_THROW(kernel.gauss_seidel(0.41, {}, &wrong_small),
               support::InvalidArgument);
  // Exact-size warm start still accepted.
  const auto seed = kernel.value_iteration(0.41);
  EXPECT_NO_THROW(kernel.value_iteration(0.42, {}, &seed.values));
}

TEST(BellmanKernelRedBlack, GoldenPinsOnDepthTwoAndThree) {
  // Red-black Gauss–Seidel is a different certified iterate path than
  // the ordered reference; these goldens pin it (any change to the
  // coloring, phase order, or commit discipline must show up here and
  // come with a kCodeVersionSalt bump). Generated at d∈{2,3}, f=1, l=4,
  // p=0.3, γ=0.5, β=0.41, single thread.
  struct Golden {
    int d;
    mdp::StateId states;
    double gain, gain_lo, gain_hi;
    int iterations;
    double v1, v_last;
  };
  const Golden goldens[] = {
      {2, 148, 0.00016246972773376056, 0.00016245659662839085,
       0.00016248285883913027, 145, 0.64088063559476904,
       3.6727625732759055},
      {3, 1496, 0.012378779205409529, 0.012378754874594833,
       0.012378803536224225, 187, 0.59414184315529683,
       4.5353658490651458},
  };
  mdp::KernelTuning rb;
  rb.sweep_mode = mdp::SweepMode::kRedBlack;
  for (const Golden& g : goldens) {
    const auto model = build(g.d, 1);
    ASSERT_EQ(model.mdp.num_states(), g.states);
    const mdp::BellmanKernel kernel(model.mdp);
    const auto r = kernel.gauss_seidel(0.41, {}, nullptr, 1, rb);
    const std::string label = "d=" + std::to_string(g.d);
    EXPECT_TRUE(r.converged) << label;
    EXPECT_EQ(r.gain, g.gain) << label;
    EXPECT_EQ(r.gain_lo, g.gain_lo) << label;
    EXPECT_EQ(r.gain_hi, g.gain_hi) << label;
    EXPECT_EQ(r.iterations, g.iterations) << label;
    EXPECT_EQ(r.values[1], g.v1) << label;
    EXPECT_EQ(r.values[g.states - 1], g.v_last) << label;
  }
}

TEST(BellmanKernelRedBlack, ThreadCountAndGatherInvariantByteForByte) {
  // The colored path must honor the same determinism contract as the
  // ordered one: identical bytes at any thread count and gather mode.
  const auto model = build(2, 2);
  const mdp::BellmanKernel kernel(model.mdp);
  mdp::KernelTuning base;
  base.sweep_mode = mdp::SweepMode::kRedBlack;
  base.gather = mdp::GatherMode::kScalar;
  base.prefetch_distance = 0;
  const auto reference = kernel.gauss_seidel(0.43927, {}, nullptr, 1, base);
  for (const auto mode : available_gather_modes()) {
    for (const int threads : {1, 8}) {
      mdp::KernelTuning tuning;
      tuning.sweep_mode = mdp::SweepMode::kRedBlack;
      tuning.gather = mode;
      expect_identical(
          kernel.gauss_seidel(0.43927, {}, nullptr, threads, tuning),
          reference,
          std::string("redblack gather=") + mdp::to_string(mode) +
              " threads=" + std::to_string(threads));
    }
  }
}

TEST(BellmanKernelRedBlack, AnalyzeAgreesWithOrderedWithinEpsilon) {
  // Both sweep modes certify against the same Odoni bounds, so the
  // bisections land within one ε grid step of each other; the exact
  // ERRev of the extracted policies agrees to solver tolerance.
  const auto model = build(2, 1);
  analysis::AnalysisOptions ordered, redblack;
  ordered.solver.method = mdp::SolverMethod::kGaussSeidel;
  redblack.solver.method = mdp::SolverMethod::kGaussSeidel;
  redblack.solver.tuning.sweep_mode = mdp::SweepMode::kRedBlack;
  const auto a = analysis::analyze(model, ordered);
  const auto b = analysis::analyze(model, redblack);
  EXPECT_NEAR(a.errev_lower_bound, b.errev_lower_bound, 2.0 * 1e-3);
  EXPECT_NEAR(a.errev_of_policy, b.errev_of_policy, 2.0 * 1e-3);
  // Pinned analyze-level goldens for the red-black path.
  EXPECT_EQ(b.errev_lower_bound, 0.41015625);
  EXPECT_EQ(b.errev_of_policy, 0.41050913021061791);
}

TEST(BellmanKernelRedBlack, LegacyPathRejectsRedBlack) {
  // The AoS reference implements only ordered sweeps; asking the legacy
  // facade for red-black must fail loudly instead of answering with the
  // wrong iterate path.
  const auto model = build(2, 1);
  mdp::SolveOptions options;
  options.method = mdp::SolverMethod::kGaussSeidel;
  options.tuning.sweep_mode = mdp::SweepMode::kRedBlack;
  const auto rewards = model.mdp.beta_rewards(0.41);
  EXPECT_THROW(mdp::solve_mean_payoff(model.mdp, rewards, options),
               support::InvalidArgument);
}

TEST(BellmanKernel, SweepAndGatherModeParsing) {
  EXPECT_EQ(mdp::parse_sweep_mode("ordered"), mdp::SweepMode::kOrdered);
  EXPECT_EQ(mdp::parse_sweep_mode("redblack"), mdp::SweepMode::kRedBlack);
  EXPECT_EQ(mdp::parse_sweep_mode("red-black"), mdp::SweepMode::kRedBlack);
  EXPECT_THROW(mdp::parse_sweep_mode("zigzag"), support::InvalidArgument);
  EXPECT_STREQ(mdp::to_string(mdp::SweepMode::kRedBlack), "redblack");
  EXPECT_EQ(mdp::parse_gather_mode("auto"), mdp::GatherMode::kAuto);
  EXPECT_EQ(mdp::parse_gather_mode("scalar"), mdp::GatherMode::kScalar);
  EXPECT_EQ(mdp::parse_gather_mode("avx2"), mdp::GatherMode::kAvx2);
  EXPECT_EQ(mdp::parse_gather_mode("avx512"), mdp::GatherMode::kAvx512);
  EXPECT_THROW(mdp::parse_gather_mode("sse9"), support::InvalidArgument);
  EXPECT_TRUE(mdp::gather_mode_available(mdp::GatherMode::kAuto));
  EXPECT_TRUE(mdp::gather_mode_available(mdp::GatherMode::kScalar));
}

TEST(BellmanKernel, ReportsSoAFootprint) {
  const auto model = build(2, 1);
  const mdp::BellmanKernel kernel(model.mdp);
  // targets (4 B) + probs (8 B) per transition, adv + tot per action.
  EXPECT_GE(kernel.memory_bytes(),
            model.mdp.num_transitions() * 12 +
                model.mdp.num_actions() * 16);
}

}  // namespace
