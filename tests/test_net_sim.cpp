// Behavioral tests of the network simulator: deterministic replay,
// honest-revenue proportionality, SM1 against the Eyal–Sirer closed form,
// effective-gamma measurement, and delay effects.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/eyal_sirer.hpp"
#include "net/network.hpp"
#include "net/scenario.hpp"

namespace {

net::NetworkResult run_family(const char* family,
                              const net::ScenarioOptions& options,
                              std::uint64_t seed, std::size_t point = 0) {
  const auto grid = net::make_scenarios(family, options);
  return net::run_scenario(net::prepare_scenario(grid[point]), seed);
}

TEST(NetworkSim, DeterministicForSameSeed) {
  net::ScenarioOptions options;
  options.blocks = 5'000;
  const auto a = run_family("single-sm1", options, 77);
  const auto b = run_family("single-sm1", options, 77);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.tip_height, b.tip_height);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.races, b.races);
  EXPECT_EQ(a.sim_time, b.sim_time);
}

TEST(NetworkSim, DifferentSeedsDiffer) {
  net::ScenarioOptions options;
  options.blocks = 5'000;
  const auto a = run_family("single-sm1", options, 1);
  const auto b = run_family("single-sm1", options, 2);
  EXPECT_NE(a.sim_time, b.sim_time);
}

TEST(NetworkSim, HonestOnlyRevenueTracksHashrate) {
  net::ScenarioOptions options;
  options.blocks = 60'000;
  options.honest_miners = 3;  // weights 3:2:1
  const auto result = run_family("honest-uniform", options, 5);
  ASSERT_EQ(result.canonical.size(), 3u);
  EXPECT_GT(result.counted, 50'000u);
  EXPECT_NEAR(result.share(0), 3.0 / 6.0, 0.01);
  EXPECT_NEAR(result.share(1), 2.0 / 6.0, 0.01);
  EXPECT_NEAR(result.share(2), 1.0 / 6.0, 0.01);
}

TEST(NetworkSim, HonestZeroDelayHasNoStaleBlocks) {
  net::ScenarioOptions options;
  options.blocks = 10'000;
  const auto result = run_family("honest-uniform", options, 9);
  // Sequential honest mining at zero delay orphans nothing.
  EXPECT_EQ(result.stale_rate(), 0.0);
  EXPECT_EQ(result.races, 0u);
}

TEST(NetworkSim, HonestDelayCreatesStaleBlocks) {
  net::ScenarioOptions options;
  options.blocks = 20'000;
  options.delay = 0.05 * options.block_interval;
  const auto result = run_family("honest-uniform", options, 9);
  EXPECT_GT(result.stale_rate(), 0.0);
  // Natural forks stay rare at a 5% delay-to-interval ratio.
  EXPECT_LT(result.stale_rate(), 0.2);
}

double sm1_network_share(double p, double gamma, std::uint64_t seed) {
  net::ScenarioOptions options;
  options.p = p;
  options.gamma = gamma;
  options.blocks = 150'000;
  const auto result = run_family("single-sm1", options, seed);
  return result.share(0);  // the attacker is miner 0
}

TEST(NetworkSim, Sm1MatchesEyalSirerClosedForm) {
  // Zero delay + per-miner gamma ties is exactly the ES race model, so
  // the network revenue must converge to the closed form.
  for (const double gamma : {0.0, 0.5, 1.0}) {
    const double closed = baselines::eyal_sirer_revenue({0.3, gamma});
    const double simulated = sm1_network_share(0.3, gamma, 4242);
    EXPECT_NEAR(simulated, closed, 0.012)
        << "gamma=" << gamma;
  }
}

TEST(NetworkSim, Sm1BelowThresholdEarnsLessThanHashrate) {
  // p = 0.15 < (1-gamma)/(3-2gamma) = 0.25 at gamma 0: selfish mining
  // strictly loses revenue.
  const double share = sm1_network_share(0.15, 0.0, 11);
  EXPECT_LT(share, 0.15);
  EXPECT_GT(share, 0.05);
}

TEST(NetworkSim, EffectiveGammaTracksConfiguredGamma) {
  for (const double gamma : {0.0, 0.25, 0.75}) {
    net::ScenarioOptions options;
    options.gamma = gamma;
    options.blocks = 120'000;
    const auto result = run_family("single-sm1", options, 31);
    if (gamma == 0.0) {
      EXPECT_EQ(result.races_challenger_won, 0u);
    } else {
      ASSERT_GT(result.races_resolved, 500u);
      EXPECT_NEAR(result.effective_gamma(), gamma, 0.05) << "gamma=" << gamma;
    }
  }
}

TEST(NetworkSim, StrategyMinerHonestStrategyEarnsHashrate) {
  net::ScenarioOptions options;
  options.blocks = 60'000;
  options.strategy = "honest";
  options.gamma = 0.5;
  const auto result = run_family("single-optimal", options, 17);
  EXPECT_NEAR(result.share(0), 0.3, 0.015);
}

TEST(NetworkSim, StrategyMinerNeverReleaseEarnsNothing) {
  net::ScenarioOptions options;
  options.blocks = 20'000;
  options.strategy = "never-release";
  const auto result = run_family("single-optimal", options, 17);
  EXPECT_EQ(result.share(0), 0.0);
  // It still wastes its hashrate mining private forks, and once every
  // fork is capped at l the surplus proofs are discarded outright.
  EXPECT_GT(result.mined[0], 4'000u);
  // Waste is modest: capped forks are pruned once the honest chain
  // outgrows the depth-d window, freeing the lane for a fresh fork.
  EXPECT_GT(result.wasted[0], 100u);
  EXPECT_EQ(result.wasted[1], 0u);  // honest miners never waste
}

TEST(NetworkSim, TwoAttackersSplitRevenue) {
  net::ScenarioOptions options;
  options.p = 0.2;
  options.blocks = 60'000;
  const auto result = run_family("two-sm1", options, 23);
  // Symmetric attackers: neither dominates.
  EXPECT_NEAR(result.share(0), result.share(1), 0.05);
}

TEST(NetworkSim, RejectsMismatchedTopology) {
  net::NetworkConfig config;
  config.topology = net::Topology::uniform(2, 0.0);
  std::vector<net::MinerSetup> miners;
  net::MinerSetup setup;
  setup.agent = net::make_honest_miner(net::TiePolicy::kFirstSeen, 0.0);
  setup.weight = 1.0;
  miners.push_back(std::move(setup));
  EXPECT_THROW(net::run_network(config, std::move(miners)),
               support::InvalidArgument);
}

TEST(ScenarioRegistry, AllFamiliesExpandAndRun) {
  net::ScenarioOptions options;
  options.p = 0.25;
  options.blocks = 2'000;
  for (const std::string& name : net::scenario_names()) {
    const auto grid = net::make_scenarios(name, options);
    ASSERT_FALSE(grid.empty()) << name;
    const auto result =
        net::run_scenario(net::prepare_scenario(grid[0]), 3);
    EXPECT_GT(result.tip_height, 0u) << name;
  }
}

TEST(ScenarioRegistry, UnknownNameThrows) {
  EXPECT_THROW(net::make_scenarios("no-such-scenario", {}),
               support::InvalidArgument);
}

}  // namespace
